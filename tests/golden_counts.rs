//! Golden-counts pin for the instrumented inference path.
//!
//! The values below were captured from the implementation *before* the
//! zero-allocation / precomputed-trace-plan refactor of the hot path.
//! They pin `Measurement` down to the bit level: the predicted class, every
//! `HpcCounts` event, and the exact f64 bit pattern of every `HpcSample`
//! event. Any change to the simulated trace order, the cache replacement
//! behaviour, the branch predictor accounting, or the noise stream shows
//! up here as a hard failure.
//!
//! Two fixtures cover the op zoo: `small` is a conv/relu/flatten/linear
//! stack, `zoo` routes through all sixteen graph ops (batchnorm, silu,
//! dwconv, leaky_relu, tanh, add, max/avg pool, concat, global_avgpool,
//! sigmoid, scale_channels, ...).

use advhunter_exec::TraceEngine;
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::Tensor;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_model() -> Graph {
    let mut rng = StdRng::seed_from_u64(3);
    let mut b = GraphBuilder::new(&[1, 8, 8]);
    let input = b.input();
    let c1 = b.conv2d("c1", input, 8, 3, 1, 1, &mut rng);
    let r1 = b.relu("r1", c1);
    let c2 = b.conv2d("c2", r1, 8, 3, 1, 1, &mut rng);
    let r2 = b.relu("r2", c2);
    let f = b.flatten("f", r2);
    b.linear("fc", f, 4, &mut rng);
    b.build()
}

fn zoo_model() -> Graph {
    let mut rng = StdRng::seed_from_u64(17);
    let mut b = GraphBuilder::new(&[2, 8, 8]);
    let input = b.input();
    let c1 = b.conv2d("c1", input, 8, 3, 1, 1, &mut rng);
    let bn = b.batchnorm("bn", c1);
    let s1 = b.silu("silu", bn);
    let dw = b.dwconv2d("dw", s1, 3, 1, 1, &mut rng);
    let lr = b.leaky_relu("lrelu", dw, 0.1);
    let th = b.tanh("tanh", lr);
    let ad = b.add("add", th, s1);
    let mp = b.maxpool("mp", ad, 2, 2);
    let ap = b.avgpool("ap", ad, 2, 2);
    let cc = b.concat("cat", mp, ap);
    let rr = b.relu("relu", cc);
    let gp = b.global_avgpool("gap", rr);
    let se = b.linear("se", gp, 16, &mut rng);
    let sg = b.sigmoid("sig", se);
    let sc = b.scale_channels("scale", rr, sg);
    let fl = b.flatten("flat", sc);
    b.linear("fc", fl, 5, &mut rng);
    b.build()
}

fn image(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    advhunter_tensor::init::uniform(&mut rng, dims, 0.0, 1.0)
}

/// One pinned measurement: predicted class, counts in `HpcEvent::ALL`
/// order, and sample f64 bit patterns in the same order.
struct Golden {
    seed: u64,
    predicted: usize,
    counts: [u64; 9],
    sample_bits: [u64; 9],
}

const SMALL_GOLDEN: [Golden; 3] = [
    Golden {
        seed: 0,
        predicted: 2,
        counts: [13558, 366, 11, 336, 336, 80, 192, 272, 64],
        sample_bits: [
            0x40cee4a1e4faf7ae,
            0x408367b46b9161b3,
            0x403adb7c47e41eed,
            0x407b162073ba221a,
            0x407645a912f9c5c9,
            0x40649dfa0d58d5da,
            0x406bad7c371647a0,
            0x407253f8202e2ea0,
            0x40522fa6b8bd981e,
        ],
    },
    Golden {
        seed: 1,
        predicted: 2,
        counts: [13558, 366, 11, 343, 343, 87, 192, 279, 64],
        sample_bits: [
            0x40ccb35c94442503,
            0x4083842bc5e8eda4,
            0x403d80bb646e67b3,
            0x407d5c2763b54c1b,
            0x4076e4cae179965f,
            0x40650e9d6aa64ba2,
            0x406b69e46f68efad,
            0x4071f0c4b611747a,
            0x4052a255963eee88,
        ],
    },
    Golden {
        seed: 2,
        predicted: 3,
        counts: [13558, 366, 11, 350, 350, 94, 192, 286, 64],
        sample_bits: [
            0x40ce491bf339fe3d,
            0x408591f75cffef01,
            0x4043c7ce534a938c,
            0x407cbc358bc9618e,
            0x4076f03d1dc31674,
            0x4063d9b90ec8f392,
            0x40697ed64d198b42,
            0x4073002036b9c192,
            0x405301d8dac42fd3,
        ],
    },
];

const ZOO_GOLDEN: [Golden; 3] = [
    Golden {
        seed: 0,
        predicted: 0,
        counts: [12094, 514, 24, 1107, 1107, 51, 960, 1011, 96],
        sample_bits: [
            0x40cc0671c46e2c12,
            0x408808838aa95376,
            0x404412b6caeb6311,
            0x4092b7c6d97a16b2,
            0x40919ffcee1660db,
            0x4060f5b4bb5107d8,
            0x408dfd0999f0118e,
            0x40902551d60ad3b4,
            0x405a11f70197ab6d,
        ],
    },
    Golden {
        seed: 1,
        predicted: 3,
        counts: [12094, 514, 24, 1109, 1109, 53, 960, 1013, 96],
        sample_bits: [
            0x40c9d720853b517d,
            0x408820b403a7d3d8,
            0x40451866717ee7ce,
            0x4093646060f8f4ae,
            0x4091bec4898502f1,
            0x4060cfc577155f9a,
            0x408e80401b26fe33,
            0x408fe1c70e31b068,
            0x405a9df7b6678ca3,
        ],
    },
    Golden {
        seed: 2,
        predicted: 3,
        counts: [12094, 514, 24, 1110, 1110, 54, 960, 1014, 96],
        sample_bits: [
            0x40cb6efd2d9cc6be,
            0x408a2d38d8f6b02a,
            0x404a1f6b59f464d8,
            0x4092f50f4166138b,
            0x4091a4ddef3c47f2,
            0x405dfcf8997853f3,
            0x408d8da6c4383fa8,
            0x409024f5c8d2a092,
            0x405b1340b49c780d,
        ],
    },
];

fn check(name: &str, g: &Graph, dims: &[usize], golden: &[Golden; 3]) {
    let e = TraceEngine::new(g);
    for gold in golden {
        let img = image(dims, gold.seed);
        let m = e.measure_indexed(g, &img, 42, gold.seed);
        assert_eq!(
            m.predicted, gold.predicted,
            "{name} seed {}: predicted class drifted",
            gold.seed
        );
        for (slot, ev) in HpcEvent::ALL.into_iter().enumerate() {
            assert_eq!(
                m.counts.get(ev),
                gold.counts[slot],
                "{name} seed {}: count for {ev:?} drifted",
                gold.seed
            );
            assert_eq!(
                m.sample.get(ev).to_bits(),
                gold.sample_bits[slot],
                "{name} seed {}: sample bits for {ev:?} drifted (got {})",
                gold.seed,
                m.sample.get(ev)
            );
        }
    }
}

#[test]
fn small_model_measurements_match_pre_refactor_golden() {
    check("small", &small_model(), &[1, 8, 8], &SMALL_GOLDEN);
}

#[test]
fn zoo_model_measurements_match_pre_refactor_golden() {
    check("zoo", &zoo_model(), &[2, 8, 8], &ZOO_GOLDEN);
}

#[test]
fn repeated_measurements_reuse_state_without_drift() {
    // The engine may pool scratch memory across calls; re-measuring the
    // same image three times must keep returning the golden values.
    let g = small_model();
    let e = TraceEngine::new(&g);
    let img = image(&[1, 8, 8], 0);
    let first = e.measure_indexed(&g, &img, 42, 0);
    for _ in 0..3 {
        let again = e.measure_indexed(&g, &img, 42, 0);
        assert_eq!(first.predicted, again.predicted);
        assert_eq!(first.counts, again.counts);
        assert_eq!(first.sample, again.sample);
    }
}
