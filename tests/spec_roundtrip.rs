//! The graph-spec (`.ahg`) contract: canonical serialization round-trips
//! bit-identically (so the content digest is stable), the four scenario
//! specs address the store exactly like the pre-redesign hardcoded
//! builders did, and spec-compiled models are trace-for-trace identical
//! to the builders they replaced.

use std::sync::Arc;

use advhunter::scenario::ScenarioId;
use advhunter::{GraphSpec, PipelineConfig, Stage};
use advhunter_exec::TraceEngine;
use advhunter_nn::spec::{SpecNode, SpecOp, SpecSrc};
use advhunter_nn::{models, Graph};
use advhunter_tensor::init;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_checked_in_spec_roundtrips_bit_identically() {
    let mut count = 0;
    for entry in std::fs::read_dir("specs").expect("specs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("ahg") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read spec");
        let spec = GraphSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let canon = spec.to_canonical_string();
        let reparsed = GraphSpec::parse(&canon).expect("canonical text reparses");
        assert_eq!(reparsed, spec, "{}: reparse drifted", path.display());
        assert_eq!(
            reparsed.to_canonical_string(),
            canon,
            "{}: canonicalization is not a fixed point",
            path.display()
        );
        assert_eq!(reparsed.digest(), spec.digest(), "{}", path.display());
        count += 1;
    }
    assert!(count >= 16, "expected the full spec library, found {count}");
}

/// A small conv net with a residual add, parameterized enough to exercise
/// every serialization branch (explicit refs, default previous-node
/// inputs, unary chains).
fn synthetic_spec(w1: usize, w2: usize, fc: usize, classes: usize, seed: u64) -> GraphSpec {
    let conv = |out| SpecOp::Conv2d {
        out_channels: out,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let node = |name: &str, op: SpecOp, inputs: Vec<SpecSrc>| SpecNode {
        name: name.to_string(),
        op,
        inputs,
    };
    GraphSpec {
        name: format!("prop-{w1}-{w2}-{fc}-{classes}-{seed}"),
        model: "PropNet".to_string(),
        dataset: "cifar10-like".to_string(),
        input: [3, 16, 16],
        classes,
        target_class: classes - 1,
        dataset_seed: seed,
        model_seed: seed ^ 0xABCD,
        sizes: Default::default(),
        train: Default::default(),
        nodes: vec![
            node("c1", conv(w1), vec![SpecSrc::Input]),
            node("r1", SpecOp::ReLU, vec![SpecSrc::Node(0)]),
            node("c2", conv(w1), vec![SpecSrc::Node(1)]),
            node(
                "skip",
                SpecOp::Add,
                vec![SpecSrc::Node(2), SpecSrc::Node(1)],
            ),
            node(
                "pool",
                SpecOp::MaxPool2d { k: 2, s: 2 },
                vec![SpecSrc::Node(3)],
            ),
            node("c3", conv(w2), vec![SpecSrc::Node(4)]),
            node("r3", SpecOp::ReLU, vec![SpecSrc::Node(5)]),
            node("gap", SpecOp::GlobalAvgPool, vec![SpecSrc::Node(6)]),
            node(
                "fc1",
                SpecOp::Linear { out_features: fc },
                vec![SpecSrc::Node(7)],
            ),
            node("r4", SpecOp::ReLU, vec![SpecSrc::Node(8)]),
            node(
                "fc2",
                SpecOp::Linear {
                    out_features: classes,
                },
                vec![SpecSrc::Node(9)],
            ),
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// parse(canonicalize(spec)) == spec, and the digest survives the trip.
    #[test]
    fn random_specs_roundtrip_through_canonical_text(
        w1 in 4usize..24,
        w2 in 4usize..24,
        fc in 8usize..64,
        classes in 2usize..12,
        seed in 0u64..1000,
    ) {
        let spec = synthetic_spec(w1, w2, fc, classes, seed);
        spec.validate().expect("generated spec is valid");
        let canon = spec.to_canonical_string();
        let reparsed = GraphSpec::parse(&canon).expect("canonical text reparses");
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.to_canonical_string(), canon);
        prop_assert_eq!(reparsed.digest(), spec.digest());
    }
}

#[test]
fn scenario_stage_fingerprints_are_golden() {
    // These literals pin the spec-addressed store layout for all four
    // canonical scenarios. The TrainModel row is the same recipe the
    // pre-redesign ScenarioId-keyed builders produced, so warm stores
    // survive the 0.8 API break; any drift here silently orphans every
    // cached artifact and must be deliberate.
    let expected: [(ScenarioId, [&str; 4]); 4] = [
        (
            ScenarioId::S1,
            [
                "1da6e6d5f4da8970",
                "79170799c8db3c83",
                "71e19f1295e3aa39",
                "e381b2153dc4543d",
            ],
        ),
        (
            ScenarioId::S2,
            [
                "5ba556749989bd0d",
                "4bb70bef1f0ba3fa",
                "ceb7c4d2247c4c6c",
                "73bcd772108ae428",
            ],
        ),
        (
            ScenarioId::S3,
            [
                "baab7d8d6f531419",
                "3fad6ba4e20867bc",
                "42454d323d8bd36f",
                "617ea72e1b3e5ab7",
            ],
        ),
        (
            ScenarioId::CaseStudy,
            [
                "9990407ccef04e52",
                "9970edffc4a23da1",
                "4cc87e0150697026",
                "2e674c5ad8b784ef",
            ],
        ),
    ];
    for (id, want) in expected {
        let config = PipelineConfig::for_spec(Arc::clone(id.spec()));
        let got: Vec<String> = Stage::ALL
            .iter()
            .map(|&s| config.fingerprint(s).to_string())
            .collect();
        assert_eq!(got, want, "{} fingerprints drifted", id.label());
    }
}

#[test]
#[allow(deprecated)]
fn spec_compiled_models_trace_identically_to_the_retired_builders() {
    type Builder = fn(&[usize], usize, &mut StdRng) -> Graph;
    let builders: [(ScenarioId, Builder); 4] = [
        (ScenarioId::S1, models::efficientnet_micro),
        (ScenarioId::S2, models::resnet_micro),
        (ScenarioId::S3, models::densenet_micro),
        (ScenarioId::CaseStudy, models::case_study_cnn),
    ];
    for (id, builder) in builders {
        let spec = id.spec();
        let from_spec = spec
            .build_graph(&mut StdRng::seed_from_u64(spec.model_seed))
            .expect("spec compiles");
        let from_builder = builder(
            &spec.input,
            spec.classes,
            &mut StdRng::seed_from_u64(spec.model_seed),
        );
        let image = init::uniform(&mut StdRng::seed_from_u64(11), &spec.input, 0.0, 1.0);
        let a = TraceEngine::new(&from_spec).true_counts(&from_spec, &image);
        let b = TraceEngine::new(&from_builder).true_counts(&from_builder, &image);
        assert_eq!(a, b, "{}: spec model traces diverged", id.label());
    }
}
