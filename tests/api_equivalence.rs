//! The unified, `ExecOptions`-driven entry points (`collect_template`,
//! `Detector::fit`, `measure_dataset`, `measure_examples`) are
//! thread-count invariant: the sequential path and the worker-pool path
//! at 2 and 4 threads produce bit-identical results. This is exactly the
//! guarantee the retired seq/`_par` API split used to encode in two
//! function names — now it is one function and a property test.

use advhunter::experiment::{measure_dataset, measure_examples};
use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioArtifacts, ScenarioId};
use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate, Verdict};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_monitor::{
    FingerprintConfig, FusionPolicy, MonitorBuilder, MonitorRequest, OverloadPolicy,
};
use advhunter_uarch::{HpcEvent, HpcSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sequential baseline plus the pool sizes the results must agree across.
const THREAD_COUNTS: [usize; 2] = [2, 4];

fn tiny_scenario() -> ScenarioArtifacts {
    let sizes = SplitSizes {
        train: 12,
        val: 10,
        test: 8,
    };
    build_scenario(ScenarioId::CaseStudy, Some(sizes))
}

fn synthetic_template() -> OfflineTemplate {
    let mut rng = StdRng::seed_from_u64(11);
    let per_class: Vec<Vec<HpcSample>> = (0..4)
        .map(|c| {
            (0..40)
                .map(|_| {
                    let mut s = HpcSample::default();
                    for (slot, event) in HpcEvent::ALL.into_iter().enumerate() {
                        s.set(
                            event,
                            5_000.0 * (c + 1) as f64
                                + 250.0 * slot as f64
                                + rng.gen_range(-60.0..60.0),
                        );
                    }
                    s
                })
                .collect()
        })
        .collect();
    OfflineTemplate::from_samples(per_class)
}

#[test]
fn collect_template_matches_sequential_at_any_thread_count() {
    let art = tiny_scenario();
    let baseline = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &ExecOptions::sequential(41),
    );
    for threads in THREAD_COUNTS {
        let pooled = collect_template(
            &art.engine,
            &art.model,
            &art.split.val,
            None,
            &ExecOptions::seeded(41).with_threads(threads),
        );
        assert_eq!(
            baseline, pooled,
            "collect_template diverged at {threads} threads"
        );
    }
}

#[test]
fn detector_fit_matches_sequential_at_any_thread_count() {
    let template = synthetic_template();
    let config = DetectorConfig::default();
    let baseline = Detector::fit(&template, &config, &ExecOptions::sequential(42)).unwrap();
    for threads in THREAD_COUNTS {
        let pooled = Detector::fit(
            &template,
            &config,
            &ExecOptions::seeded(42).with_threads(threads),
        )
        .unwrap();
        // Detector equality covers every GMM parameter and threshold.
        assert_eq!(
            baseline, pooled,
            "Detector::fit diverged at {threads} threads"
        );
    }
}

#[test]
fn measure_dataset_matches_sequential_at_any_thread_count() {
    let art = tiny_scenario();
    let baseline = measure_dataset(&art, &art.split.test, Some(3), &ExecOptions::sequential(43));
    assert!(!baseline.is_empty());
    for threads in THREAD_COUNTS {
        let pooled = measure_dataset(
            &art,
            &art.split.test,
            Some(3),
            &ExecOptions::seeded(43).with_threads(threads),
        );
        assert_eq!(
            baseline, pooled,
            "measure_dataset diverged at {threads} threads"
        );
    }
}

#[test]
fn measure_examples_matches_sequential_at_any_thread_count() {
    let art = tiny_scenario();
    let mut rng = StdRng::seed_from_u64(0xEA);
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Untargeted,
        Some(6),
        &mut rng,
    );
    assert!(!report.examples.is_empty(), "attack produced no examples");
    let baseline = measure_examples(&art, &report.examples, &ExecOptions::sequential(44));
    for threads in THREAD_COUNTS {
        let pooled = measure_examples(
            &art,
            &report.examples,
            &ExecOptions::seeded(44).with_threads(threads),
        );
        assert_eq!(
            baseline, pooled,
            "measure_examples diverged at {threads} threads"
        );
    }
}

/// The deterministic slice of one fused verdict.
type FusedOutcome = (u64, u64, Verdict, bool, bool, bool);

/// A fingerprint stage tuned to the tiny scenario's images.
fn fused_fp_config() -> FingerprintConfig {
    let mut fp = FingerprintConfig::default().with_window(16);
    fp.probe_window = 8;
    fp.stride = 2;
    fp
}

/// The deterministic multi-tenant query stream every fused run replays:
/// each test image is submitted twice (so the fingerprint stage has real
/// matches to make), alternating between two tenants.
fn fused_stream(art: &ScenarioArtifacts) -> Vec<(u64, advhunter_tensor::Tensor)> {
    let mut stream = Vec::new();
    for (i, image) in art.split.test.images().iter().enumerate() {
        let tenant = (i % 2) as u64;
        stream.push((tenant, image.clone()));
        stream.push((tenant, image.clone()));
    }
    stream
}

/// Runs the fused monitor over the canonical stream and returns every
/// deterministic field of every verdict, in admission order.
fn run_fused(threads: usize, overload: OverloadPolicy, trickle: bool) -> Vec<FusedOutcome> {
    let art = tiny_scenario();
    // Group validation measurements by *true* label (the tiny model may
    // never predict some classes, which would leave prediction-grouped
    // template categories empty).
    let opts = ExecOptions::sequential(41);
    let measurements = art.engine.measure_batch(
        &art.model,
        art.split.val.images(),
        opts.seed,
        &opts.parallelism,
    );
    let labels = art.split.val.labels();
    let num_classes = labels.iter().max().copied().unwrap_or(0) + 1;
    let mut per_class = vec![Vec::new(); num_classes];
    for (m, &label) in measurements.iter().zip(labels) {
        per_class[label].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1)).unwrap();
    let stream = fused_stream(&art);
    let monitor = MonitorBuilder::new(ExecOptions::seeded(46).with_threads(threads))
        .queue_capacity(stream.len().max(1))
        .micro_batch(3)
        .overload(overload)
        .fingerprint(fused_fp_config())
        .fusion(FusionPolicy::Or)
        .spawn(art.engine, art.model, detector)
        .unwrap();
    let mut out = Vec::new();
    for (tenant, image) in stream {
        monitor
            .submit(MonitorRequest::new(image).tenant(tenant))
            .unwrap();
        if trickle {
            // Consume each verdict before the next submission — the
            // maximally different arrival pattern.
            let v = monitor.recv().unwrap();
            out.push((
                v.request_id,
                v.tenant,
                v.verdict,
                v.hpc_anomalous,
                v.query_correlated,
                v.flagged,
            ));
        }
    }
    monitor.close();
    while let Some(v) = monitor.recv() {
        out.push((
            v.request_id,
            v.tenant,
            v.verdict,
            v.hpc_anomalous,
            v.query_correlated,
            v.flagged,
        ));
    }
    out
}

#[test]
fn fused_verdicts_match_sequential_at_any_thread_count() {
    let baseline = run_fused(1, OverloadPolicy::Block, false);
    assert!(
        baseline
            .iter()
            .any(|(_, _, _, _, correlated, _)| *correlated),
        "the duplicated stream must trip query correlation somewhere"
    );
    for threads in THREAD_COUNTS {
        let pooled = run_fused(threads, OverloadPolicy::Block, false);
        assert_eq!(
            baseline, pooled,
            "fused verdicts diverged at {threads} threads"
        );
    }
}

#[test]
fn fused_verdicts_are_invariant_to_overload_policy_and_arrival() {
    let baseline = run_fused(2, OverloadPolicy::Block, false);
    // Same admissions under the shed policy (the queue is sized to never
    // actually shed) and under a one-by-one trickle: identical verdicts.
    assert_eq!(
        baseline,
        run_fused(2, OverloadPolicy::Shed, false),
        "overload policy changed fused verdicts"
    );
    assert_eq!(
        baseline,
        run_fused(2, OverloadPolicy::Shed, true),
        "arrival batching changed fused verdicts"
    );
}

#[test]
fn stage_seeds_are_independent() {
    // Two stages of the same ExecOptions must not share a noise stream:
    // measuring the same dataset under stage(0) and stage(1) yields
    // different samples, while repeating a stage reproduces it exactly.
    let art = tiny_scenario();
    let opts = ExecOptions::seeded(45);
    let a = measure_dataset(&art, &art.split.test, Some(2), &opts.stage(0));
    let b = measure_dataset(&art, &art.split.test, Some(2), &opts.stage(0));
    let c = measure_dataset(&art, &art.split.test, Some(2), &opts.stage(1));
    assert_eq!(a, b, "same stage must reproduce bit-identically");
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.sample != y.sample),
        "different stages must draw different measurement noise"
    );
}
