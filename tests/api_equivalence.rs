//! The unified, `ExecOptions`-driven entry points (`collect_template`,
//! `Detector::fit`, `measure_dataset`, `measure_examples`) are
//! thread-count invariant: the sequential path and the worker-pool path
//! at 2 and 4 threads produce bit-identical results. This is exactly the
//! guarantee the retired seq/`_par` API split used to encode in two
//! function names — now it is one function and a property test.

use advhunter::experiment::{measure_dataset, measure_examples};
use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioArtifacts, ScenarioId};
use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_uarch::{HpcEvent, HpcSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sequential baseline plus the pool sizes the results must agree across.
const THREAD_COUNTS: [usize; 2] = [2, 4];

fn tiny_scenario() -> ScenarioArtifacts {
    let sizes = SplitSizes {
        train: 12,
        val: 10,
        test: 8,
    };
    build_scenario(ScenarioId::CaseStudy, Some(sizes))
}

fn synthetic_template() -> OfflineTemplate {
    let mut rng = StdRng::seed_from_u64(11);
    let per_class: Vec<Vec<HpcSample>> = (0..4)
        .map(|c| {
            (0..40)
                .map(|_| {
                    let mut s = HpcSample::default();
                    for (slot, event) in HpcEvent::ALL.into_iter().enumerate() {
                        s.set(
                            event,
                            5_000.0 * (c + 1) as f64
                                + 250.0 * slot as f64
                                + rng.gen_range(-60.0..60.0),
                        );
                    }
                    s
                })
                .collect()
        })
        .collect();
    OfflineTemplate::from_samples(per_class)
}

#[test]
fn collect_template_matches_sequential_at_any_thread_count() {
    let art = tiny_scenario();
    let baseline = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &ExecOptions::sequential(41),
    );
    for threads in THREAD_COUNTS {
        let pooled = collect_template(
            &art.engine,
            &art.model,
            &art.split.val,
            None,
            &ExecOptions::seeded(41).with_threads(threads),
        );
        assert_eq!(
            baseline, pooled,
            "collect_template diverged at {threads} threads"
        );
    }
}

#[test]
fn detector_fit_matches_sequential_at_any_thread_count() {
    let template = synthetic_template();
    let config = DetectorConfig::default();
    let baseline = Detector::fit(&template, &config, &ExecOptions::sequential(42)).unwrap();
    for threads in THREAD_COUNTS {
        let pooled = Detector::fit(
            &template,
            &config,
            &ExecOptions::seeded(42).with_threads(threads),
        )
        .unwrap();
        // Detector equality covers every GMM parameter and threshold.
        assert_eq!(
            baseline, pooled,
            "Detector::fit diverged at {threads} threads"
        );
    }
}

#[test]
fn measure_dataset_matches_sequential_at_any_thread_count() {
    let art = tiny_scenario();
    let baseline = measure_dataset(&art, &art.split.test, Some(3), &ExecOptions::sequential(43));
    assert!(!baseline.is_empty());
    for threads in THREAD_COUNTS {
        let pooled = measure_dataset(
            &art,
            &art.split.test,
            Some(3),
            &ExecOptions::seeded(43).with_threads(threads),
        );
        assert_eq!(
            baseline, pooled,
            "measure_dataset diverged at {threads} threads"
        );
    }
}

#[test]
fn measure_examples_matches_sequential_at_any_thread_count() {
    let art = tiny_scenario();
    let mut rng = StdRng::seed_from_u64(0xEA);
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Untargeted,
        Some(6),
        &mut rng,
    );
    assert!(!report.examples.is_empty(), "attack produced no examples");
    let baseline = measure_examples(&art, &report.examples, &ExecOptions::sequential(44));
    for threads in THREAD_COUNTS {
        let pooled = measure_examples(
            &art,
            &report.examples,
            &ExecOptions::seeded(44).with_threads(threads),
        );
        assert_eq!(
            baseline, pooled,
            "measure_examples diverged at {threads} threads"
        );
    }
}

#[test]
fn stage_seeds_are_independent() {
    // Two stages of the same ExecOptions must not share a noise stream:
    // measuring the same dataset under stage(0) and stage(1) yields
    // different samples, while repeating a stage reproduces it exactly.
    let art = tiny_scenario();
    let opts = ExecOptions::seeded(45);
    let a = measure_dataset(&art, &art.split.test, Some(2), &opts.stage(0));
    let b = measure_dataset(&art, &art.split.test, Some(2), &opts.stage(0));
    let c = measure_dataset(&art, &art.split.test, Some(2), &opts.stage(1));
    assert_eq!(a, b, "same stage must reproduce bit-identically");
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.sample != y.sample),
        "different stages must draw different measurement noise"
    );
}
