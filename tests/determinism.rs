//! Cross-crate integration: everything in the pipeline is reproducible
//! from seeds — datasets, models, traces, measurements, and detectors.

use advhunter::offline::collect_template;
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions, Parallelism};
use advhunter_data::{scenarios, SplitSizes};
use advhunter_exec::TraceEngine;
use advhunter_nn::Graph;
use advhunter_uarch::{HpcEvent, HpcSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thread counts every parallel stage must agree across.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn tiny_sizes() -> SplitSizes {
    SplitSizes {
        train: 4,
        val: 6,
        test: 4,
    }
}

fn tiny_model(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    ScenarioId::CaseStudy
        .spec()
        .build_graph(&mut rng)
        .expect("checked-in spec compiles")
}

#[test]
fn datasets_are_seed_deterministic() {
    let a = scenarios::cifar10_like(9, &tiny_sizes());
    let b = scenarios::cifar10_like(9, &tiny_sizes());
    assert_eq!(a.train, b.train);
    assert_eq!(a.val, b.val);
    assert_eq!(a.test, b.test);
    let c = scenarios::cifar10_like(10, &tiny_sizes());
    assert_ne!(a.train, c.train);
}

#[test]
fn traces_are_deterministic_for_identical_models_and_inputs() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine_a = TraceEngine::new(&model);
    let engine_b = TraceEngine::new(&model);
    for (img, _) in (0..split.test.len()).map(|i| split.test.item(i)) {
        assert_eq!(
            engine_a.true_counts(&model, img),
            engine_b.true_counts(&model, img)
        );
    }
}

#[test]
fn measurements_are_rng_deterministic() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let (img, _) = split.test.item(0);
    let a = engine.measure(&model, img, &mut StdRng::seed_from_u64(5));
    let b = engine.measure(&model, img, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
    let c = engine.measure(&model, img, &mut StdRng::seed_from_u64(6));
    assert_eq!(a.counts, c.counts, "truth is measurement-noise independent");
    assert_ne!(a.sample, c.sample, "noise differs across seeds");
}

#[test]
fn measure_batch_is_identical_across_thread_counts() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let images = split.test.images();
    let sequential = engine.measure_batch(&model, images, 77, &Parallelism::sequential());
    for threads in THREAD_COUNTS {
        let parallel = engine.measure_batch(&model, images, 77, &Parallelism::new(threads));
        assert_eq!(
            sequential, parallel,
            "measure_batch diverged at {threads} threads"
        );
    }
    // Bit-for-bit means the HpcSamples too, not just predictions.
    let again = engine.measure_batch(&model, images, 77, &Parallelism::new(4));
    for (a, b) in sequential.iter().zip(&again) {
        assert_eq!(a.sample, b.sample);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.predicted, b.predicted);
    }
}

#[test]
fn collect_template_is_identical_across_thread_counts() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let sequential = collect_template(
        &engine,
        &model,
        &split.val,
        None,
        &ExecOptions::sequential(5),
    );
    for threads in THREAD_COUNTS {
        let parallel = collect_template(
            &engine,
            &model,
            &split.val,
            None,
            &ExecOptions::seeded(5).with_threads(threads),
        );
        assert_eq!(
            sequential, parallel,
            "collect_template diverged at {threads} threads"
        );
    }
}

#[test]
fn gmm_bank_fit_is_identical_across_thread_counts() {
    // A well-populated synthetic template so every (class, event) fits.
    let mut rng = StdRng::seed_from_u64(4);
    let per_class: Vec<Vec<HpcSample>> = (0..3)
        .map(|c| {
            (0..50)
                .map(|_| {
                    let mut s = HpcSample::default();
                    for (slot, event) in HpcEvent::ALL.into_iter().enumerate() {
                        s.set(
                            event,
                            1_000.0 * (c + 1) as f64
                                + 100.0 * slot as f64
                                + rng.gen_range(-25.0..25.0),
                        );
                    }
                    s
                })
                .collect()
        })
        .collect();
    let template = advhunter::OfflineTemplate::from_samples(per_class);
    let config = DetectorConfig::default();
    let sequential = Detector::fit(&template, &config, &ExecOptions::sequential(13)).unwrap();
    for threads in THREAD_COUNTS {
        let parallel = Detector::fit(
            &template,
            &config,
            &ExecOptions::seeded(13).with_threads(threads),
        )
        .unwrap();
        // Detector equality covers every GMM parameter and threshold.
        assert_eq!(sequential, parallel, "fit diverged at {threads} threads");
    }
}

#[test]
fn end_to_end_parallel_pipeline_is_identical_across_thread_counts() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let run = |threads: usize| {
        let parallelism = Parallelism::new(threads);
        let opts = ExecOptions::new(21, parallelism);
        let template = collect_template(&engine, &model, &split.val, None, &opts.stage(0));
        let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1));
        let measurements = engine.measure_batch(&model, split.test.images(), 23, &parallelism);
        let queries: Vec<(usize, HpcSample)> = measurements
            .iter()
            .map(|m| (m.predicted, m.sample))
            .collect();
        let scores = detector.as_ref().ok().map(|d| {
            d.score_batch(&queries, HpcEvent::CacheMisses, &parallelism)
                .into_iter()
                .map(|s| s.map(|sc| (sc.nll, sc.threshold)))
                .collect::<Vec<_>>()
        });
        (template, detector.err(), measurements, scores)
    };
    let baseline = run(1);
    for threads in [2, 4] {
        assert_eq!(
            baseline,
            run(threads),
            "pipeline diverged at {threads} threads"
        );
    }
}

#[test]
fn detectors_are_seed_deterministic() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let fit_once = |seed: u64| {
        let opts = ExecOptions::seeded(seed);
        let template = collect_template(&engine, &model, &split.val, None, &opts.stage(0));
        Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))
    };
    // With an untrained model many classes may be empty; accept either
    // outcome, but demand it is the *same* outcome.
    match (fit_once(3), fit_once(3)) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(a), Err(b)) => assert_eq!(a, b),
        _ => panic!("fit determinism violated"),
    }
}
