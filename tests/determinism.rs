//! Cross-crate integration: everything in the pipeline is reproducible
//! from seeds — datasets, models, traces, measurements, and detectors.

use advhunter::offline::collect_template;
use advhunter::{Detector, DetectorConfig};
use advhunter_data::{scenarios, SplitSizes};
use advhunter_exec::TraceEngine;
use advhunter_nn::{models, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_sizes() -> SplitSizes {
    SplitSizes {
        train: 4,
        val: 6,
        test: 4,
    }
}

fn tiny_model(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    models::case_study_cnn(&[3, 32, 32], 10, &mut rng)
}

#[test]
fn datasets_are_seed_deterministic() {
    let a = scenarios::cifar10_like(9, &tiny_sizes());
    let b = scenarios::cifar10_like(9, &tiny_sizes());
    assert_eq!(a.train, b.train);
    assert_eq!(a.val, b.val);
    assert_eq!(a.test, b.test);
    let c = scenarios::cifar10_like(10, &tiny_sizes());
    assert_ne!(a.train, c.train);
}

#[test]
fn traces_are_deterministic_for_identical_models_and_inputs() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine_a = TraceEngine::new(&model);
    let engine_b = TraceEngine::new(&model);
    for (img, _) in (0..split.test.len()).map(|i| split.test.item(i)) {
        assert_eq!(
            engine_a.true_counts(&model, img),
            engine_b.true_counts(&model, img)
        );
    }
}

#[test]
fn measurements_are_rng_deterministic() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let (img, _) = split.test.item(0);
    let a = engine.measure(&model, img, &mut StdRng::seed_from_u64(5));
    let b = engine.measure(&model, img, &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
    let c = engine.measure(&model, img, &mut StdRng::seed_from_u64(6));
    assert_eq!(a.counts, c.counts, "truth is measurement-noise independent");
    assert_ne!(a.sample, c.sample, "noise differs across seeds");
}

#[test]
fn detectors_are_seed_deterministic() {
    let split = scenarios::cifar10_like(9, &tiny_sizes());
    let model = tiny_model(1);
    let engine = TraceEngine::new(&model);
    let fit_once = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let template = collect_template(&engine, &model, &split.val, None, &mut rng);
        Detector::fit(&template, &DetectorConfig::default(), &mut rng)
    };
    // With an untrained model many classes may be empty; accept either
    // outcome, but demand it is the *same* outcome.
    match (fit_once(3), fit_once(3)) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(a), Err(b)) => assert_eq!(a, b),
        _ => panic!("fit determinism violated"),
    }
}
