//! The staged offline pipeline and its content-addressed artifact store:
//! fingerprints are golden (stable across runs and thread counts, and
//! every knob re-addresses exactly its downstream stages), cached bytes
//! are bit-identical to freshly computed ones, corruption is healed by
//! recomputation, and a warm run is an order of magnitude faster than a
//! cold one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use advhunter::persist::{detector_to_bytes, model_to_bytes, template_to_bytes};
use advhunter::scenario::ScenarioId;
use advhunter::{
    ArtifactStore, Parallelism, Pipeline, PipelineArtifacts, PipelineConfig, PipelineReport, Stage,
    StageOutcome,
};
use advhunter_data::SplitSizes;

/// A fresh, unique store root under the system temp dir.
fn scratch_store() -> (ArtifactStore, PathBuf) {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "advhunter-pipeline-test-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let store = ArtifactStore::open(&root).expect("open scratch store");
    (store, root)
}

fn tiny_config() -> PipelineConfig {
    PipelineConfig::for_scenario(ScenarioId::CaseStudy).with_sizes(SplitSizes {
        train: 30,
        val: 40,
        test: 10,
    })
}

/// Serialized payload bytes of every artifact a run produced.
fn artifact_bytes(art: &PipelineArtifacts) -> [Vec<u8>; 3] {
    [
        model_to_bytes(&art.model),
        template_to_bytes(&art.template),
        detector_to_bytes(&art.detector),
    ]
}

/// On-disk store file for each stage of `config`.
fn stage_files(store: &ArtifactStore, config: &PipelineConfig) -> Vec<PathBuf> {
    Stage::ALL
        .iter()
        .map(|&s| store.path_for(s.artifact_kind(), config.fingerprint(s)))
        .collect()
}

#[test]
fn golden_fingerprints_pin_the_addressing_scheme() {
    // These literals pin the fingerprint recipe: any change to the hash
    // function, the field order, or the canonical seeds re-addresses every
    // stored artifact and must be deliberate (bump the domain-tag version
    // and update these values).
    let config = PipelineConfig::for_scenario(ScenarioId::CaseStudy);
    let got: Vec<String> = Stage::ALL
        .iter()
        .map(|&s| config.fingerprint(s).to_string())
        .collect();
    let expected = [
        "9990407ccef04e52",
        "9970edffc4a23da1",
        "4cc87e0150697026",
        "2e674c5ad8b784ef",
    ];
    assert_eq!(got, expected, "fingerprint recipe changed");
}

#[test]
fn each_knob_re_addresses_exactly_its_downstream_stages() {
    let base = tiny_config();
    let fps = |c: &PipelineConfig| Stage::ALL.map(|s| c.fingerprint(s));
    let base_fps = fps(&base);

    // Upstream training knobs re-address everything.
    for variant in [
        base.clone().with_train_seed(123),
        base.clone().with_sizes(SplitSizes {
            train: 31,
            val: 40,
            test: 10,
        }),
    ] {
        let v = fps(&variant);
        for i in 0..4 {
            assert_ne!(base_fps[i], v[i], "stage {} must be re-addressed", i);
        }
    }

    // Measurement knobs leave the trained model alone.
    for variant in [
        base.clone().with_seed(99),
        base.clone().with_repeats(3),
        base.clone().with_per_class_cap(Some(5)),
    ] {
        let v = fps(&variant);
        assert_eq!(base_fps[0], v[0], "TrainModel must keep its address");
        for i in 1..4 {
            assert_ne!(base_fps[i], v[i], "stage {} must be re-addressed", i);
        }
    }

    // The sigma factor affects only threshold calibration.
    let mut detector = base.detector.clone();
    detector.sigma_factor = 2.5;
    let v = fps(&base.with_detector(detector));
    assert_eq!(base_fps[..3], v[..3], "sigma must not touch fit or earlier");
    assert_ne!(base_fps[3], v[3], "sigma must re-address Calibrate");
}

#[test]
fn defense_knobs_never_invalidate_offline_artifacts() {
    // The online defense (query fingerprinting) is configured on the same
    // PipelineConfig but is deliberately outside every offline stage's
    // input closure: flipping any defense knob must leave all four golden
    // addresses — and therefore every cached artifact — untouched.
    let base = tiny_config();
    let base_fps = Stage::ALL.map(|s| base.fingerprint(s));

    let tuned = advhunter::FingerprintConfig {
        window: 512,
        probes: 64,
        salt: 0xDEAD_BEEF,
        ..Default::default()
    };
    for variant in [
        base.clone()
            .with_defense(advhunter::FingerprintConfig::default()),
        base.clone().with_defense(tuned),
    ] {
        assert_eq!(
            base_fps,
            Stage::ALL.map(|s| variant.fingerprint(s)),
            "defense knobs must not re-address offline stages"
        );
    }

    // The defense itself *is* addressed — under its own sibling
    // fingerprint, so deployments can tell defense configurations apart
    // without churning the offline cache.
    let a = base.defense_fingerprint();
    let b = base
        .clone()
        .with_defense(advhunter::FingerprintConfig::default())
        .defense_fingerprint();
    let c = base.with_defense(tuned).defense_fingerprint();
    assert_ne!(a, b, "enabling the defense must change its address");
    assert_ne!(b, c, "each defense knob must change the defense address");
}

#[test]
fn cold_warm_forced_and_rebuilt_artifacts_are_bit_identical() {
    let (store, root) = scratch_store();
    let config = tiny_config();
    let run = |force: bool| -> (PipelineArtifacts, PipelineReport) {
        Pipeline::new(config.clone(), store.clone())
            .force(force)
            .run()
            .expect("pipeline run")
    };

    // Cold: every stage computes and stores.
    let (cold_art, cold_report) = run(false);
    assert!(
        cold_report
            .stages
            .iter()
            .all(|s| s.outcome == StageOutcome::Miss),
        "cold run must miss everywhere, got {:?}",
        cold_report
    );
    let cold_bytes = artifact_bytes(&cold_art);
    let files = stage_files(&store, &config);
    let cold_files: Vec<Vec<u8>> = files
        .iter()
        .map(|p| std::fs::read(p).expect("stage artifact on disk"))
        .collect();

    // Warm: pure cache hits, identical artifacts.
    let (warm_art, warm_report) = run(false);
    assert!(warm_report.all_hits(), "warm run must hit everywhere");
    assert_eq!(cold_bytes, artifact_bytes(&warm_art));

    // Forced: recomputes everything, rewrites the same bytes.
    let (forced_art, forced_report) = run(true);
    assert!(
        forced_report
            .stages
            .iter()
            .all(|s| s.outcome == StageOutcome::Forced),
        "forced run must recompute everywhere"
    );
    assert_eq!(cold_bytes, artifact_bytes(&forced_art));
    for (path, before) in files.iter().zip(&cold_files) {
        assert_eq!(
            &std::fs::read(path).expect("stage artifact on disk"),
            before,
            "forced rewrite must be bit-identical"
        );
    }

    // Corruption: flip one payload byte of the calibrated detector and
    // truncate the template. Both stages must evict and recompute, the
    // pipeline must return the original artifacts, and the store must be
    // healed to the original bytes.
    let calibrate_file = &files[3];
    let mut corrupt = cold_files[3].clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    std::fs::write(calibrate_file, &corrupt).unwrap();
    let template_file = &files[1];
    std::fs::write(template_file, &cold_files[1][..10]).unwrap();

    let (healed_art, healed_report) = run(false);
    let outcomes: Vec<StageOutcome> = healed_report.stages.iter().map(|s| s.outcome).collect();
    assert_eq!(
        outcomes,
        vec![
            StageOutcome::Hit,
            StageOutcome::Rebuilt,
            StageOutcome::Hit,
            StageOutcome::Rebuilt
        ],
        "corrupt stages rebuild, intact stages keep hitting"
    );
    assert_eq!(cold_bytes, artifact_bytes(&healed_art));
    for (path, before) in files.iter().zip(&cold_files) {
        assert_eq!(
            &std::fs::read(path).expect("stage artifact on disk"),
            before,
            "store must be healed to the original bytes"
        );
    }

    std::fs::remove_dir_all(root).ok();
}

#[test]
fn artifacts_are_bit_identical_across_thread_counts() {
    let config = tiny_config();
    let mut baseline: Option<[Vec<u8>; 3]> = None;
    for threads in [1usize, 2, 4] {
        // A fresh store per thread count: every run is cold, so the bytes
        // compared are genuinely recomputed, not replayed from a cache.
        let (store, root) = scratch_store();
        let (art, report) = Pipeline::new(config.clone(), store)
            .with_parallelism(Parallelism::new(threads))
            .run()
            .expect("pipeline run");
        assert_eq!(report.recomputed(), 4);
        let bytes = artifact_bytes(&art);
        match &baseline {
            None => baseline = Some(bytes),
            Some(expected) => assert_eq!(
                expected, &bytes,
                "artifacts must be bit-identical at {threads} threads"
            ),
        }
        std::fs::remove_dir_all(root).ok();
    }
}

/// Filename → file bytes of every autotune verdict in the store, sorted.
fn tune_artifacts(store: &ArtifactStore) -> Vec<(String, Vec<u8>)> {
    let dir = store.root().join("tune");
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .expect("tune dir exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn tune_verdicts_are_cached_and_byte_stable() {
    // The autotuner's decision table is content-addressed like every other
    // artifact: a cold run populates it, and warm + forced runs (at any
    // thread count) leave every byte untouched. Verdict files are
    // per-geometry and keyed outside the offline stage closures, so the
    // four stage fingerprints never move when tuning state changes.
    let config = tiny_config();
    let mut baseline: Option<Vec<(String, Vec<u8>)>> = None;
    for threads in [1usize, 2, 4] {
        let (store, root) = scratch_store();
        let run = |force: bool| {
            Pipeline::new(config.clone(), store.clone())
                .with_parallelism(Parallelism::new(threads))
                .force(force)
                .run()
                .expect("pipeline run")
        };

        run(false);
        let cold = tune_artifacts(&store);
        assert!(
            !cold.is_empty(),
            "a cold run must persist autotune verdicts"
        );
        for (name, bytes) in &cold {
            // AHS1 envelope (29 bytes) + 1-byte kernel-variant tag.
            assert_eq!(bytes.len(), 30, "{name}: tune payload is one tag byte");
        }

        run(false);
        assert_eq!(cold, tune_artifacts(&store), "warm run changed verdicts");
        run(true);
        assert_eq!(cold, tune_artifacts(&store), "forced run changed verdicts");

        // Tuning state must never re-address the offline stages.
        for path in stage_files(&store, &config) {
            assert!(path.exists(), "offline artifact missing: {path:?}");
        }

        match &baseline {
            None => baseline = Some(cold),
            Some(expected) => assert_eq!(
                expected, &cold,
                "tune artifacts must be byte-identical at {threads} threads"
            ),
        }
        std::fs::remove_dir_all(root).ok();
    }
}

#[test]
fn warm_run_is_an_order_of_magnitude_faster_than_cold() {
    let (store, root) = scratch_store();
    let config = tiny_config();

    let t0 = std::time::Instant::now();
    let (_, cold) = Pipeline::new(config.clone(), store.clone())
        .run()
        .expect("cold run");
    let cold_time = t0.elapsed();
    assert_eq!(cold.recomputed(), 4);

    let t1 = std::time::Instant::now();
    let (_, warm) = Pipeline::new(config, store).run().expect("warm run");
    let warm_time = t1.elapsed();
    assert!(warm.all_hits());

    assert!(
        warm_time * 10 <= cold_time,
        "warm run must be >= 10x faster: cold {:?}, warm {:?}",
        cold_time,
        warm_time
    );
    std::fs::remove_dir_all(root).ok();
}
