//! Cross-crate integration: properties of the instrumented-inference traces
//! on real model architectures (compiled from the checked-in graph specs).

use advhunter::scenario::ScenarioId;
use advhunter_exec::{TraceEngine, ACTIVE_TILE_THRESHOLD};
use advhunter_nn::Graph;
use advhunter_tensor::{init, Tensor};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn image(seed: u64, dims: &[usize]) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    init::uniform(&mut rng, dims, 0.0, 1.0)
}

fn compile(id: ScenarioId, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    id.spec()
        .build_graph(&mut rng)
        .expect("checked-in spec compiles")
}

#[test]
fn every_architecture_traces_consistently() {
    let zoo: Vec<(Graph, Vec<usize>)> = ScenarioId::ALL
        .iter()
        .map(|&id| (compile(id, 0), id.input_dims().to_vec()))
        .collect();
    for (model, dims) in &zoo {
        let engine = TraceEngine::new(model);
        let a = engine.true_counts(model, &image(1, dims));
        let b = engine.true_counts(model, &image(2, dims));

        // Control flow is input-independent.
        for ev in [
            HpcEvent::Instructions,
            HpcEvent::Branches,
            HpcEvent::BranchMisses,
            HpcEvent::L1iLoadMisses,
        ] {
            assert_eq!(a.get(ev), b.get(ev), "{ev} varied across inputs");
        }
        // Data flow is input-dependent (two random images virtually never
        // touch the same number of weight lines).
        assert_ne!(
            a.get(HpcEvent::CacheMisses),
            b.get(HpcEvent::CacheMisses),
            "cache misses should reflect activations"
        );
        // perf identities.
        for counts in [&a, &b] {
            assert!(counts.get(HpcEvent::CacheMisses) <= counts.get(HpcEvent::CacheReferences));
            assert_eq!(
                counts.get(HpcEvent::CacheMisses),
                counts.get(HpcEvent::LlcLoadMisses) + counts.get(HpcEvent::LlcStoreMisses)
            );
            assert!(counts.get(HpcEvent::BranchMisses) <= counts.get(HpcEvent::Branches));
            assert!(counts.get(HpcEvent::Branches) <= counts.get(HpcEvent::Instructions));
        }
    }
}

#[test]
fn sparser_activations_touch_fewer_lines() {
    let model = compile(ScenarioId::CaseStudy, 3);
    let engine = TraceEngine::new(&model);
    // A black image keeps most activations below the tile threshold.
    let dark = Tensor::full(&[3, 32, 32], ACTIVE_TILE_THRESHOLD / 10.0);
    let bright = image(4, &[3, 32, 32]);
    let dark_misses = engine.true_counts(&model, &dark).get(HpcEvent::CacheMisses);
    let bright_misses = engine
        .true_counts(&model, &bright)
        .get(HpcEvent::CacheMisses);
    assert!(
        dark_misses < bright_misses,
        "dark {dark_misses} !< bright {bright_misses}"
    );
}

#[test]
fn trace_prediction_agrees_with_forward_pass() {
    let model = compile(ScenarioId::S2, 5);
    let engine = TraceEngine::new(&model);
    let mut noise_rng = StdRng::seed_from_u64(6);
    for s in 0..8 {
        let img = image(100 + s, &[3, 32, 32]);
        let m = engine.measure(&model, &img, &mut noise_rng);
        let batch = Tensor::stack(std::slice::from_ref(&img));
        assert_eq!(m.predicted, model.predict(&batch)[0]);
    }
}

#[test]
fn arena_reuse_keeps_activation_footprint_bounded() {
    // DenseNet has the longest chain of live buffers (concatenations).
    let model = compile(ScenarioId::S3, 7);
    let engine = TraceEngine::new(&model);
    let act_bytes = engine.layout().total_activation_bytes();
    // Sum of all per-node buffers without reuse would be far larger.
    let naive: u64 = model
        .single_image_shapes()
        .iter()
        .map(|s| s.iter().product::<usize>() as u64 * 4)
        .sum();
    assert!(
        act_bytes < naive,
        "arena ({act_bytes} B) should beat naive allocation ({naive} B)"
    );
}
