//! Cross-crate integration: the full AdvHunter pipeline on a small
//! configuration — train a victim, run the offline phase, attack, and
//! verify the paper's headline invariant: the cache side channel detects
//! adversarial examples while control-flow events do not.

use advhunter::experiment::{detection_confusion, measure_dataset, measure_examples};
use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_sizes() -> SplitSizes {
    SplitSizes {
        train: 60,
        val: 60,
        test: 20,
    }
}

#[test]
fn cache_misses_detect_what_branches_cannot() {
    // S1 (EfficientNet-micro on the FashionMNIST stand-in) shows the
    // paper's headline split robustly even at these toy split sizes; the
    // S2 case-study CNN on the much noisier CIFAR-10 stand-in needs the
    // full-scale Table 2 harness (its within-class cache-footprint spread
    // at toy sizes swallows the AE shift).
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let art = build_scenario(ScenarioId::S1, Some(small_sizes()));
    assert!(
        art.clean_accuracy > 0.5,
        "victim must be usable, got {:.1}%",
        art.clean_accuracy * 100.0
    );

    // Offline phase.
    let opts = ExecOptions::seeded(0xE2E);
    let template = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &opts.stage(0),
    );
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))
        .expect("detector fits on the validation template");

    // A strong targeted attack (the paper's Table 2 setting).
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(60),
        &mut rng,
    );
    assert!(
        report.examples.len() >= 10,
        "attack produced too few AEs: {}",
        report.examples.len()
    );

    let adv = measure_examples(&art, &report.examples, &opts.stage(2));
    let clean = measure_dataset(&art, &art.split.test, None, &opts.stage(3));
    let clean_target: Vec<_> = clean
        .into_iter()
        .filter(|s| s.true_class == target)
        .collect();

    let cache = detection_confusion(&detector, HpcEvent::CacheMisses, &clean_target, &adv);
    let branches = detection_confusion(&detector, HpcEvent::Branches, &clean_target, &adv);
    let instructions = detection_confusion(&detector, HpcEvent::Instructions, &clean_target, &adv);

    assert!(
        cache.f1() > 0.6,
        "cache-misses should detect AEs, F1 = {:.3}",
        cache.f1()
    );
    assert!(
        branches.f1() < 0.4 && instructions.f1() < 0.4,
        "control-flow events must not carry the signal: branches {:.3}, instructions {:.3}",
        branches.f1(),
        instructions.f1()
    );
    assert!(
        cache.f1() > branches.f1() + 0.3,
        "cache-misses must clearly dominate branches"
    );
}

#[test]
fn detector_keeps_false_positives_low_on_clean_traffic() {
    let art = build_scenario(ScenarioId::CaseStudy, Some(small_sizes()));
    let opts = ExecOptions::seeded(0xE2F);
    let template = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &opts.stage(0),
    );
    let detector =
        Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1)).expect("detector fit");

    let clean = measure_dataset(&art, &art.split.test, None, &opts.stage(2));
    let mut flagged = 0usize;
    let mut scored = 0usize;
    for s in &clean {
        if s.predicted != s.true_class {
            continue;
        }
        if let Some(true) = detector.is_adversarial(s.predicted, HpcEvent::CacheMisses, &s.sample) {
            flagged += 1;
        }
        scored += 1;
    }
    let fpr = flagged as f64 / scored.max(1) as f64;
    assert!(
        fpr < 0.25,
        "three-sigma thresholds should rarely flag clean inferences, FPR = {fpr:.2}"
    );
}
