//! Cross-crate integration: attack guarantees hold against real (trained)
//! models on the synthetic datasets.

use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn artifacts() -> advhunter::scenario::ScenarioArtifacts {
    build_scenario(
        ScenarioId::CaseStudy,
        Some(SplitSizes {
            train: 40,
            val: 10,
            test: 12,
        }),
    )
}

#[test]
fn linf_attacks_respect_epsilon_and_pixel_range() {
    let art = artifacts();
    let mut rng = StdRng::seed_from_u64(1);
    for attack in [Attack::fgsm(0.07), Attack::pgd(0.07)] {
        for i in 0..6 {
            let (img, label) = art.split.test.item(i);
            let adv = attack.perturb(&art.model, img, label, AttackGoal::Untargeted, &mut rng);
            assert!(
                (&adv - img).linf_norm() <= 0.07 + 1e-5,
                "{} exceeded its L∞ budget",
                attack.name()
            );
            assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

#[test]
fn stronger_attacks_fool_more() {
    let art = artifacts();
    let mut rng = StdRng::seed_from_u64(2);
    let weak = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::pgd(0.02),
        AttackGoal::Untargeted,
        None,
        &mut rng,
    );
    let strong = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::pgd(0.3),
        AttackGoal::Untargeted,
        None,
        &mut rng,
    );
    assert!(strong.adversarial_accuracy <= weak.adversarial_accuracy);
    assert!(strong.success_rate() >= weak.success_rate());
    assert!(
        strong.adversarial_accuracy < 0.5,
        "PGD ε=0.3 should fool a small CNN, adv accuracy {:.2}",
        strong.adversarial_accuracy
    );
}

#[test]
fn successful_examples_really_fool_the_model() {
    let art = artifacts();
    let mut rng = StdRng::seed_from_u64(3);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::pgd(0.4),
        AttackGoal::Targeted(target),
        Some(40),
        &mut rng,
    );
    for ex in &report.examples {
        let batch = Tensor::stack(std::slice::from_ref(&ex.image));
        assert_eq!(art.model.predict(&batch)[0], target);
        assert_eq!(ex.predicted, target);
        assert_ne!(ex.original_label, target);
    }
}

#[test]
fn deepfool_finds_smaller_perturbations_than_fgsm() {
    let art = artifacts();
    let mut rng = StdRng::seed_from_u64(4);
    let df = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::deepfool(),
        AttackGoal::Untargeted,
        Some(10),
        &mut rng,
    );
    assert!(!df.examples.is_empty(), "DeepFool should succeed somewhere");
    // Compare mean L2 against FGSM at a strength with similar success.
    let fg = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.3),
        AttackGoal::Untargeted,
        Some(10),
        &mut rng,
    );
    let mean_l2 = |examples: &[advhunter_attacks::AdversarialExample],
                   base: &advhunter_data::Dataset| {
        let mut total = 0.0f32;
        let mut n = 0;
        for ex in examples {
            // Locate the source image by label order scan.
            for i in 0..base.len() {
                let (img, label) = base.item(i);
                if label == ex.original_label {
                    total += (&ex.image - img).l2_norm();
                    n += 1;
                    break;
                }
            }
        }
        total / n.max(1) as f32
    };
    let df_l2 = mean_l2(&df.examples, &art.split.test);
    let fg_l2 = mean_l2(&fg.examples, &art.split.test);
    assert!(
        df_l2 < fg_l2 * 1.5,
        "DeepFool perturbations should not be larger: {df_l2} vs {fg_l2}"
    );
}
