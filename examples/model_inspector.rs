//! Model and dataset inspector: print every scenario model's per-layer
//! summary, the address-space footprint the trace engine assigns it, and
//! the synthetic dataset's class-separability statistics.
//!
//! ```text
//! cargo run --release --example model_inspector
//! ```

use advhunter::scenario::ScenarioId;
use advhunter_data::stats::DatasetStats;
use advhunter_data::SplitSizes;
use advhunter_exec::MemoryLayout;
use advhunter_nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let zoo: Vec<(&str, advhunter_nn::Graph)> = vec![
        (
            "CaseStudyCNN (3x32x32)",
            models::case_study_cnn(&[3, 32, 32], 10, &mut rng),
        ),
        (
            "ResNet18-micro (3x32x32)",
            models::resnet_micro(&[3, 32, 32], 10, &mut rng),
        ),
        (
            "EfficientNet-micro (1x28x28)",
            models::efficientnet_micro(&[1, 28, 28], 10, &mut rng),
        ),
        (
            "DenseNet-micro (3x32x32, 43 cls)",
            models::densenet_micro(&[3, 32, 32], 43, &mut rng),
        ),
    ];
    for (name, model) in &zoo {
        println!("=== {name} ===");
        print!("{}", model.summary());
        let layout = MemoryLayout::new(model);
        println!(
            "address space: {:.1} KiB weights, {:.1} KiB activations (arena)\n",
            layout.total_weight_bytes() as f64 / 1024.0,
            layout.total_activation_bytes() as f64 / 1024.0,
        );
    }

    println!("=== dataset separability (train split, 12 images/class) ===");
    let sizes = SplitSizes {
        train: 12,
        val: 1,
        test: 1,
    };
    for id in ScenarioId::TABLE1 {
        let split = match id {
            ScenarioId::S1 => advhunter_data::scenarios::fashion_mnist_like(101, &sizes),
            ScenarioId::S3 => advhunter_data::scenarios::gtsrb_like(103, &sizes),
            _ => advhunter_data::scenarios::cifar10_like(102, &sizes),
        };
        let stats = DatasetStats::compute(&split.train);
        let (a, b, s) = stats.most_confusable_pair();
        println!(
            "{}: {} classes, hardest pair ({a}, {b}) separability {s:.2}",
            id.label(),
            stats.num_classes(),
        );
    }
}
