//! Model and dataset inspector: compile every checked-in scenario spec,
//! print its per-layer summary, the address-space footprint the trace
//! engine assigns it, and the synthetic dataset's class-separability
//! statistics.
//!
//! ```text
//! cargo run --release --example model_inspector
//! ```

use advhunter::scenario::ScenarioId;
use advhunter_data::stats::DatasetStats;
use advhunter_data::SplitSizes;
use advhunter_exec::MemoryLayout;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    for id in ScenarioId::ALL {
        let spec = id.spec();
        let [c, h, w] = spec.input;
        println!(
            "=== {} ({c}x{h}x{w}, {} cls) — digest {:016x} ===",
            spec.model,
            spec.classes,
            spec.digest()
        );
        let mut rng = StdRng::seed_from_u64(spec.model_seed);
        let model = spec
            .build_graph(&mut rng)
            .expect("checked-in spec compiles");
        print!("{}", model.summary());
        let layout = MemoryLayout::new(&model);
        println!(
            "address space: {:.1} KiB weights, {:.1} KiB activations (arena)\n",
            layout.total_weight_bytes() as f64 / 1024.0,
            layout.total_activation_bytes() as f64 / 1024.0,
        );
    }

    println!("=== dataset separability (train split, 12 images/class) ===");
    let sizes = SplitSizes {
        train: 12,
        val: 1,
        test: 1,
    };
    for id in ScenarioId::TABLE1 {
        let spec = id.spec();
        let split =
            id.dataset_family()
                .generate(spec.input, spec.classes, spec.dataset_seed, &sizes);
        let stats = DatasetStats::compute(&split.train);
        let (a, b, s) = stats.most_confusable_pair();
        println!(
            "{}: {} classes, hardest pair ({a}, {b}) separability {s:.2}",
            id.label(),
            stats.num_classes(),
        );
    }
}
