//! Traffic-sign guard (paper scenario S3): a GTSRB-style classifier behind
//! an AdvHunter monitor processes a mixed stream of clean and PGD-perturbed
//! sign images; every inference is screened via its `cache-misses` reading.
//!
//! ```text
//! cargo run --release --example traffic_sign_guard
//! ```

use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter::{BinaryConfusion, Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_tensor::Tensor;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(33);
    let art = build_scenario(ScenarioId::S3, None);
    let names = art.class_names();
    println!(
        "guarding {} on {} — {} sign classes, clean accuracy {:.1}%",
        art.model_name(),
        art.dataset_name(),
        art.num_classes(),
        art.clean_accuracy * 100.0
    );

    let opts = ExecOptions::seeded(33);
    let template = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &opts.stage(0),
    );
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))?;

    // A stream of 40 inferences: each is either a clean test sign or a
    // PGD-perturbed one (untargeted, ε = 0.2).
    let attack = Attack::pgd(0.2);
    let mut confusion = BinaryConfusion::default();
    let mut shown = 0;
    for i in 0..art.split.test.len() {
        if shown >= 40 {
            break;
        }
        let (image, label) = art.split.test.item(i);
        // Only start from signs the model reads correctly.
        let batch = Tensor::stack(std::slice::from_ref(image));
        if art.model.predict(&batch)[0] != label {
            continue;
        }
        let attack_this = rng.gen_bool(0.5);
        let input = if attack_this {
            attack.perturb(&art.model, image, label, AttackGoal::Untargeted, &mut rng)
        } else {
            image.clone()
        };
        let m = art.engine.measure(&art.model, &input, &mut rng);
        // An unsuccessful attack leaves the prediction intact; the stream
        // item is then effectively clean.
        let is_adversarial = attack_this && m.predicted != label;
        let flagged = detector
            .is_adversarial(m.predicted, HpcEvent::CacheMisses, &m.sample)
            .unwrap_or(false);
        confusion.record(is_adversarial, flagged);
        shown += 1;
        println!(
            "[{shown:>2}] true '{}' -> predicted '{}' | {} | monitor: {}",
            names[label],
            names[m.predicted],
            if is_adversarial {
                "ADVERSARIAL"
            } else {
                "clean     "
            },
            if flagged { "FLAG" } else { "pass" },
        );
    }
    println!(
        "\nstream summary: accuracy {:.1}%, F1 {:.3} ({} decisions)",
        confusion.accuracy() * 100.0,
        confusion.f1(),
        confusion.total()
    );
    Ok(())
}
