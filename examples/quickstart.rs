//! Quickstart: the whole AdvHunter pipeline in one file.
//!
//! Trains (or loads) a small CNN victim, runs the offline phase on clean
//! validation images, crafts one adversarial example, and asks the detector
//! about both a clean and the adversarial inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter::{Detector, DetectorConfig};
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The victim: a CNN the defender can only query for hard labels.
    //    (Small split sizes keep the first run under a minute; the trained
    //    model is cached under target/advhunter-cache.)
    let sizes = SplitSizes { train: 60, val: 40, test: 20 };
    let art = build_scenario(ScenarioId::CaseStudy, Some(sizes), &mut rng);
    println!(
        "victim: {} on {} — clean accuracy {:.1}%",
        art.id.model_name(),
        art.id.dataset_name(),
        art.clean_accuracy * 100.0
    );

    // 2. Offline phase: measure HPCs for clean validation images and fit
    //    one GMM per (category, event) with a three-sigma threshold.
    let template = collect_template(&art.engine, &art.model, &art.split.val, None, &mut rng);
    let detector = Detector::fit(&template, &DetectorConfig::default(), &mut rng)?;
    println!(
        "offline phase done: {} categories, {} events, M ≥ {} images/category",
        detector.num_classes(),
        detector.events().len(),
        template.min_samples_per_class()
    );

    // 3. Online phase, clean input: measure an inference and score it.
    let (clean_image, label) = art.split.test.item(0);
    let m = art.engine.measure(&art.model, clean_image, &mut rng);
    let clean_flagged = detector
        .is_adversarial(m.predicted, HpcEvent::CacheMisses, &m.sample)
        .unwrap_or(false);
    println!(
        "clean image (class {label}): predicted {}, cache-misses {:.0}, flagged: {clean_flagged}",
        m.predicted,
        m.sample.get(HpcEvent::CacheMisses)
    );

    // 4. Online phase, adversarial input: craft an FGSM example and score
    //    its inference the same way.
    let attack = Attack::fgsm(0.3);
    let adv_image = attack.perturb(&art.model, clean_image, label, AttackGoal::Untargeted, &mut rng);
    let m = art.engine.measure(&art.model, &adv_image, &mut rng);
    let scores = detector.score_all(m.predicted, &m.sample);
    println!(
        "adversarial image: predicted {} (was {label}), per-event verdicts:",
        m.predicted
    );
    for s in scores {
        println!(
            "  {:>22}: NLL {:>8.2} vs threshold {:>8.2} -> {}",
            s.event.perf_name(),
            s.nll,
            s.threshold,
            if s.is_adversarial() { "ADVERSARIAL" } else { "clean" }
        );
    }
    Ok(())
}
