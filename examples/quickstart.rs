//! Quickstart: the whole AdvHunter pipeline in one file.
//!
//! Trains (or loads) a small CNN victim, runs the offline phase on clean
//! validation images, crafts one adversarial example, and asks the detector
//! about both a clean and the adversarial inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use advhunter::scenario::ScenarioId;
use advhunter::{ArtifactStore, ExecOptions, Pipeline, PipelineConfig};
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // One ExecOptions drives every deterministic online stage: the seed
    // fixes the noise streams, the parallelism picks the worker count
    // (available cores, or the ADVHUNTER_THREADS override). Results are
    // identical at any thread count.
    let opts = ExecOptions::seeded(42);
    println!(
        "parallel runtime: {} worker thread(s)",
        opts.parallelism.threads()
    );

    // 1+2. The whole offline phase as one staged pipeline: train the CNN
    //    victim (hard-label black box), measure HPCs for clean validation
    //    images, fit one GMM per (category, event), and calibrate the
    //    three-sigma thresholds. Every stage persists its artifact in the
    //    content-addressed store under target/advhunter-cache, so a second
    //    run is pure cache hits. (Small split sizes keep the first run
    //    under a minute.)
    let sizes = SplitSizes {
        train: 60,
        val: 40,
        test: 20,
    };
    let config = PipelineConfig::for_scenario(ScenarioId::CaseStudy).with_sizes(sizes);
    let (art, report) = Pipeline::new(config, ArtifactStore::shared()?).run()?;
    println!(
        "victim: {} on {} — clean accuracy {:.1}%",
        art.model_name(),
        art.dataset_name(),
        art.clean_accuracy * 100.0
    );
    let (template, detector) = (&art.template, &art.detector);
    println!(
        "offline phase done ({} of 4 stages from cache): {} categories, {} events, M ≥ {} images/category",
        report.hits(),
        detector.num_classes(),
        detector.events().len(),
        template.min_samples_per_class()
    );

    // 3. Online phase, clean inputs: measure a small batch of inferences
    //    and score them together through the batched online API.
    let batch_len = art.split.test.len().min(4);
    let clean_images = &art.split.test.images()[..batch_len];
    let measurements = art
        .engine
        .measure_batch(&art.model, clean_images, 44, &opts.parallelism);
    let queries: Vec<(usize, _)> = measurements
        .iter()
        .map(|m| (m.predicted, m.sample))
        .collect();
    let verdicts = detector.detect_batch(&queries, HpcEvent::CacheMisses, &opts.parallelism);
    for (i, (m, verdict)) in measurements.iter().zip(&verdicts).enumerate() {
        let label = art.split.test.labels()[i];
        println!(
            "clean image {i} (class {label}): predicted {}, cache-misses {:.0}, flagged: {}",
            m.predicted,
            m.sample.get(HpcEvent::CacheMisses),
            verdict.unwrap_or(false)
        );
    }
    let (clean_image, label) = art.split.test.item(0);

    // 4. Online phase, adversarial input: craft an FGSM example and score
    //    its inference the same way.
    let attack = Attack::fgsm(0.3);
    let adv_image = attack.perturb(
        &art.model,
        clean_image,
        label,
        AttackGoal::Untargeted,
        &mut rng,
    );
    let m = art.engine.measure(&art.model, &adv_image, &mut rng);
    let scores = detector.score_all(m.predicted, &m.sample);
    println!(
        "adversarial image: predicted {} (was {label}), per-event verdicts:",
        m.predicted
    );
    for s in scores {
        println!(
            "  {:>22}: NLL {:>8.2} vs threshold {:>8.2} -> {}",
            s.event.perf_name(),
            s.nll,
            s.threshold,
            if s.is_adversarial() {
                "ADVERSARIAL"
            } else {
                "clean"
            }
        );
    }
    Ok(())
}
