//! Quickstart: the whole AdvHunter pipeline in one file.
//!
//! Trains (or loads) a small CNN victim, runs the offline phase on clean
//! validation images, crafts one adversarial example, and asks the detector
//! about both a clean and the adversarial inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // One ExecOptions drives every deterministic stage: the seed fixes the
    // noise streams, the parallelism picks the worker count (available
    // cores, or the ADVHUNTER_THREADS override). Results are identical at
    // any thread count.
    let opts = ExecOptions::seeded(42);
    println!(
        "parallel runtime: {} worker thread(s)",
        opts.parallelism.threads()
    );

    // 1. The victim: a CNN the defender can only query for hard labels.
    //    (Small split sizes keep the first run under a minute; the trained
    //    model is cached under target/advhunter-cache.)
    let sizes = SplitSizes {
        train: 60,
        val: 40,
        test: 20,
    };
    let art = build_scenario(ScenarioId::CaseStudy, Some(sizes), &mut rng);
    println!(
        "victim: {} on {} — clean accuracy {:.1}%",
        art.id.model_name(),
        art.id.dataset_name(),
        art.clean_accuracy * 100.0
    );

    // 2. Offline phase: measure HPCs for clean validation images and fit
    //    one GMM per (category, event) with a three-sigma threshold. Both
    //    stages fan out over the worker pool; seeds make them bit-for-bit
    //    reproducible at any thread count.
    let template = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &opts.stage(0),
    );
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))?;
    println!(
        "offline phase done: {} categories, {} events, M ≥ {} images/category",
        detector.num_classes(),
        detector.events().len(),
        template.min_samples_per_class()
    );

    // 3. Online phase, clean inputs: measure a small batch of inferences
    //    and score them together through the batched online API.
    let batch_len = art.split.test.len().min(4);
    let clean_images = &art.split.test.images()[..batch_len];
    let measurements = art
        .engine
        .measure_batch(&art.model, clean_images, 44, &opts.parallelism);
    let queries: Vec<(usize, _)> = measurements
        .iter()
        .map(|m| (m.predicted, m.sample))
        .collect();
    let verdicts = detector.detect_batch(&queries, HpcEvent::CacheMisses, &opts.parallelism);
    for (i, (m, verdict)) in measurements.iter().zip(&verdicts).enumerate() {
        let label = art.split.test.labels()[i];
        println!(
            "clean image {i} (class {label}): predicted {}, cache-misses {:.0}, flagged: {}",
            m.predicted,
            m.sample.get(HpcEvent::CacheMisses),
            verdict.unwrap_or(false)
        );
    }
    let (clean_image, label) = art.split.test.item(0);

    // 4. Online phase, adversarial input: craft an FGSM example and score
    //    its inference the same way.
    let attack = Attack::fgsm(0.3);
    let adv_image = attack.perturb(
        &art.model,
        clean_image,
        label,
        AttackGoal::Untargeted,
        &mut rng,
    );
    let m = art.engine.measure(&art.model, &adv_image, &mut rng);
    let scores = detector.score_all(m.predicted, &m.sample);
    println!(
        "adversarial image: predicted {} (was {label}), per-event verdicts:",
        m.predicted
    );
    for s in scores {
        println!(
            "  {:>22}: NLL {:>8.2} vs threshold {:>8.2} -> {}",
            s.event.perf_name(),
            s.nll,
            s.threshold,
            if s.is_adversarial() {
                "ADVERSARIAL"
            } else {
                "clean"
            }
        );
    }
    Ok(())
}
