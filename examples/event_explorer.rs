//! Event explorer: print the clean-vs-adversarial distribution of any HPC
//! event as an ASCII histogram (the data behind the paper's Figures 3/5).
//!
//! ```text
//! cargo run --release --example event_explorer -- cache-misses
//! cargo run --release --example event_explorer -- branches
//! ```

use advhunter::experiment::{measure_dataset, measure_examples};
use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter::ExecOptions;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let event_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cache-misses".to_string());
    let Some(event) = HpcEvent::ALL
        .iter()
        .find(|e| e.perf_name() == event_name)
        .copied()
    else {
        eprintln!("unknown event '{event_name}'; available:");
        for e in HpcEvent::ALL {
            eprintln!("  {}", e.perf_name());
        }
        std::process::exit(2);
    };

    let mut rng = StdRng::seed_from_u64(5);
    let art = build_scenario(ScenarioId::S2, None);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(120),
        &mut rng,
    );
    let opts = ExecOptions::seeded(5);
    let adv = measure_examples(&art, &report.examples, &opts.stage(0));
    let clean = measure_dataset(&art, &art.split.test, Some(15), &opts.stage(1));
    let clean_target: Vec<f64> = clean
        .iter()
        .filter(|s| s.true_class == target && s.predicted == target)
        .map(|s| s.sample.get(event))
        .collect();
    let adv_vals: Vec<f64> = adv.iter().map(|s| s.sample.get(event)).collect();

    println!(
        "distribution of '{}' (S2, targeted FGSM ε=0.5):",
        event.perf_name()
    );
    print_histogram("clean", &clean_target, "adversarial", &adv_vals);
    Ok(())
}

fn print_histogram(la: &str, a: &[f64], lb: &str, b: &[f64]) {
    let lo = a.iter().chain(b).copied().fold(f64::INFINITY, f64::min);
    let hi = a.iter().chain(b).copied().fold(f64::NEG_INFINITY, f64::max);
    let bins = 14;
    let width = (hi - lo).max(1e-9);
    let hist = |xs: &[f64]| {
        let mut h = vec![0usize; bins];
        for &x in xs {
            let i = (((x - lo) / width) * bins as f64) as usize;
            h[i.min(bins - 1)] += 1;
        }
        h
    };
    let ha = hist(a);
    let hb = hist(b);
    let max = ha
        .iter()
        .chain(hb.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    println!(
        "  {la}: '#' ({} samples)   {lb}: 'o' ({} samples)",
        a.len(),
        b.len()
    );
    for i in 0..bins {
        println!(
            "  {:>10.0} |{}",
            lo + (i as f64 + 0.5) / bins as f64 * width,
            "#".repeat(ha[i] * 36 / max)
        );
        println!("             |{}", "o".repeat(hb[i] * 36 / max));
    }
}
