//! CIFAR-style monitoring scenario (paper scenario S2): a defender guards a
//! ResNet image classifier against targeted FGSM, comparing how well each
//! HPC event separates clean from adversarial inferences.
//!
//! ```text
//! cargo run --release --example cifar_fgsm_monitor
//! ```

use advhunter::experiment::{detection_confusion, measure_dataset, measure_examples};
use advhunter::offline::collect_template;
use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let art = build_scenario(ScenarioId::S2, None);
    let names = art.class_names();
    let target = art.target_class();
    println!(
        "victim: {} on {} (clean accuracy {:.1}%), target class '{}'",
        art.model_name(),
        art.dataset_name(),
        art.clean_accuracy * 100.0,
        names[target]
    );

    // Offline phase.
    let opts = ExecOptions::seeded(7);
    let template = collect_template(
        &art.engine,
        &art.model,
        &art.split.val,
        None,
        &opts.stage(0),
    );
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))?;

    // The adversary: targeted FGSM pushing every category toward 'frog'.
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(120),
        &mut rng,
    );
    println!(
        "attack: targeted FGSM ε=0.5 — {:.1}% of attacked images now classify as '{}'",
        report.targeted_accuracy * 100.0,
        names[target]
    );

    // Measure both populations and score every event.
    let adv = measure_examples(&art, &report.examples, &opts.stage(2));
    let clean = measure_dataset(&art, &art.split.test, Some(20), &opts.stage(3));
    let clean_target: Vec<_> = clean
        .into_iter()
        .filter(|s| s.true_class == target)
        .collect();

    println!(
        "\nper-event detection quality (clean '{}' vs AEs):",
        names[target]
    );
    println!("{:>24} {:>10} {:>8}", "event", "accuracy", "F1");
    for event in HpcEvent::ALL {
        let c = detection_confusion(&detector, event, &clean_target, &adv);
        println!(
            "{:>24} {:>9.1}% {:>8.4}",
            event.perf_name(),
            c.accuracy() * 100.0,
            c.f1()
        );
    }
    println!("\ncache-misses should dominate — that is AdvHunter's headline result.");
    Ok(())
}
