//! Online monitoring: the paper's deployment story as a running service.
//!
//! A [`Monitor`] owns the instrumented engine, the victim model, and a
//! fitted detector. This example spawns one, feeds it a mixed stream of
//! clean and FGSM-perturbed images, and reads back one structured verdict
//! per request — predicted class, per-event NLL scores, flagged bit, and
//! queue/latency telemetry.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use advhunter::scenario::ScenarioId;
use advhunter::{ArtifactStore, ExecOptions, Pipeline, PipelineConfig};
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_data::SplitSizes;
use advhunter_monitor::{MonitorBuilder, OverloadPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0x0411);
    let opts = ExecOptions::seeded(0x0411);

    // 1. Victim model + offline phase through the staged pipeline; every
    //    stage artifact lands in the shared content-addressed store. We
    //    run it once here to get the data split and model for crafting
    //    the request stream.
    let sizes = SplitSizes {
        train: 60,
        val: 40,
        test: 20,
    };
    let pipeline = PipelineConfig::for_scenario(ScenarioId::CaseStudy).with_sizes(sizes);
    let store = ArtifactStore::shared()?;
    let (art, _) = Pipeline::new(pipeline.clone(), store.clone()).run()?;
    println!(
        "victim: {} on {} (clean accuracy {:.1}%), detector over {} events",
        art.model_name(),
        art.dataset_name(),
        art.clean_accuracy * 100.0,
        art.detector.events().len(),
    );

    // 2. Spawn the service straight from the store: the monitor replays
    //    the same pipeline (all cache hits now) and takes ownership of
    //    the engine, model, and detector it yields. `opts.stage(2)` seeds
    //    every request's noise stream (request i is measured with
    //    derive_seed(seed, i), so the verdict stream is bit-identical at
    //    any thread count or batching).
    let monitor = MonitorBuilder::new(opts.stage(2))
        .queue_capacity(32)
        .micro_batch(8)
        .overload(OverloadPolicy::Block)
        .spawn_from_store(pipeline, store)?;

    // 3. The request stream: alternate clean test images with untargeted
    //    FGSM perturbations of the same images.
    let attack = Attack::fgsm(0.3);
    let mut truth = Vec::new();
    for i in 0..art.split.test.len().min(8) {
        let (image, label) = art.split.test.item(i);
        monitor.submit(image.clone())?;
        truth.push((false, label));
        let adv = attack.perturb(&art.model, image, label, AttackGoal::Untargeted, &mut rng);
        monitor.submit(adv)?;
        truth.push((true, label));
    }
    monitor.close();

    // 4. Verdicts come back in admission order, one per request.
    println!("\n  id  truth        predicted  flagged  queue  batch   latency");
    while let Some(v) = monitor.recv() {
        let (adversarial, label) = truth[v.request_id as usize];
        println!(
            "  {:>2}  {}  {:>9}  {:>7}  {:>5}  {:>5}  {:>7.1}µs",
            v.request_id,
            if adversarial {
                "ADVERSARIAL"
            } else {
                "clean      "
            },
            format!("{} ({label})", v.verdict.predicted()),
            if v.flagged { "FLAG" } else { "pass" },
            v.telemetry.depth_at_admission,
            v.telemetry.batch_size,
            v.telemetry.measure.as_secs_f64() * 1e6,
        );
    }

    // 5. Operational counters survive the stream.
    let stats = monitor.shutdown();
    println!(
        "\nprocessed {} requests in {} micro-batches (max queue depth {}, shed {})",
        stats.completed, stats.batches, stats.max_queue_depth, stats.shed,
    );
    for (class, s) in stats.per_class.iter().enumerate() {
        if s.screened > 0 {
            println!(
                "  class {class}: {} screened, {} flagged ({:.0}%)",
                s.screened,
                s.flagged,
                s.flag_rate() * 100.0
            );
        }
    }
    Ok(())
}
