//! Remote monitoring: drive a serving monitor over the `AHP1` wire
//! protocol instead of in-process.
//!
//! Start a server in one terminal and point this client at it:
//!
//! ```text
//! cargo run --release -p advhunter-cli -- serve CASE --tiny --addr 127.0.0.1:9471
//! cargo run --release --example remote_client -- --addr 127.0.0.1:9471 -n 8
//! ```
//!
//! The client submits `-n` random images shaped `--dims` (the serving
//! scenario's input shape), tags each with a caller correlation id, and
//! prints one line per reply — including the `config_epoch` the verdict
//! was scored under, which bumps when `advhunter deploy` hot-swaps the
//! detector mid-stream. `--stats` round-trips the service counters and
//! `--shutdown` asks the server to drain and exit when done.

use advhunter_tensor::{init, Tensor};
use advhunter_wire::{ControlOp, MonitorClient, MonitorRequest, ServerReply};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    addr: String,
    n: usize,
    dims: Vec<usize>,
    tenant: u64,
    seed: u64,
    stats: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        addr: "127.0.0.1:9471".to_string(),
        n: 8,
        dims: vec![3, 32, 32],
        tenant: 0,
        seed: 7,
        stats: false,
        shutdown: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                opts.addr = args.get(i + 1).ok_or("--addr needs host:port")?.clone();
                i += 2;
            }
            "-n" => {
                opts.n = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("-n needs a number")?;
                i += 2;
            }
            "--dims" => {
                let spec = args.get(i + 1).ok_or("--dims needs C,H,W")?;
                opts.dims = spec
                    .split(',')
                    .map(|d| d.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --dims {spec:?} (expected e.g. 3,32,32)"))?;
                i += 2;
            }
            "--tenant" => {
                opts.tenant = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tenant needs a number")?;
                i += 2;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
                i += 2;
            }
            "--stats" => {
                opts.stats = true;
                i += 1;
            }
            "--shutdown" => {
                opts.shutdown = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args()?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut client = MonitorClient::connect(&*opts.addr)?;
    println!("connected to {}", opts.addr);

    // Pipeline the whole stream: submissions only write, replies are
    // read back afterwards in submission order.
    for corr in 0..opts.n as u64 {
        let image: Tensor = init::uniform(&mut rng, &opts.dims, 0.0, 1.0);
        let request = MonitorRequest::new(image)
            .tenant(opts.tenant)
            .request_id(corr);
        client.submit(&request)?;
    }
    let mut scored = 0u64;
    let mut rejected = 0u64;
    for _ in 0..opts.n {
        match client.recv_reply()? {
            ServerReply::Verdict(v) => {
                scored += 1;
                println!(
                    "verdict id={} corr={} predicted={} flagged={} epoch={}",
                    v.request_id,
                    v.correlation_id.map_or("-".to_string(), |c| c.to_string()),
                    v.verdict.predicted(),
                    v.flagged,
                    v.config_epoch,
                );
            }
            ServerReply::Rejected(r) => {
                rejected += 1;
                println!(
                    "rejected corr={} code={:?}: {}",
                    r.correlation_id.map_or("-".to_string(), |c| c.to_string()),
                    r.code,
                    r.message,
                );
            }
        }
    }
    println!("replies: {scored} scored, {rejected} rejected");

    if opts.stats {
        let s = client.stats()?;
        println!(
            "stats: submitted={} completed={} shed={} drained={} swaps={} drift={} epoch={}",
            s.submitted,
            s.completed,
            s.shed,
            s.drained,
            s.detector_swaps,
            s.drift_events,
            s.config_epoch,
        );
    }
    if opts.shutdown {
        let epoch = client.control(ControlOp::Shutdown)?;
        println!("shutdown acknowledged at epoch {epoch}");
    }
    Ok(())
}
