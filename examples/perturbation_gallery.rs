//! Perturbation gallery: render a clean image, its adversarial versions
//! under each attack, and the (amplified) perturbations as PPM files under
//! `target/gallery/`.
//!
//! ```text
//! cargo run --release --example perturbation_gallery
//! ```

use advhunter::scenario::{build_scenario, ScenarioId};
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_data::export::{write_difference, write_image};
use advhunter_data::SplitSizes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(21);
    let sizes = SplitSizes {
        train: 60,
        val: 40,
        test: 20,
    };
    let art = build_scenario(ScenarioId::CaseStudy, Some(sizes));
    let out = PathBuf::from("target").join("gallery");

    let (image, label) = art.split.test.item(3);
    write_image(image, &out.join("clean.ppm"))?;
    println!(
        "clean image (class {label}) -> {}",
        out.join("clean.ppm").display()
    );

    for attack in [
        Attack::fgsm(0.1),
        Attack::pgd(0.1),
        Attack::mi_fgsm(0.1),
        Attack::deepfool(),
    ] {
        let adv = attack.perturb(&art.model, image, label, AttackGoal::Untargeted, &mut rng);
        let name = attack.name().to_lowercase().replace('-', "");
        write_image(&adv, &out.join(format!("{name}.ppm")))?;
        // Perturbations are tiny; amplify 5x around mid-gray.
        write_difference(&adv, image, 5.0, &out.join(format!("{name}_delta.ppm")))?;
        let batch = advhunter_tensor::Tensor::stack(std::slice::from_ref(&adv));
        println!(
            "{:>8}: prediction {} -> {}, L∞ {:.3}, L2 {:.3}  ({} + _delta.ppm)",
            attack.name(),
            label,
            art.model.predict(&batch)[0],
            (&adv - image).linf_norm(),
            (&adv - image).l2_norm(),
            out.join(format!("{name}.ppm")).display(),
        );
    }
    Ok(())
}
