//! Activation-tile activity analysis: the only data-dependent input to the
//! trace kernels.
//!
//! The per-op trace emission itself is dimension-static and lives in
//! [`plan`](crate::plan); at measure time the engine pairs each node's
//! precomputed [`TracePlan`](crate::plan::TracePlan) with the tile-activity
//! counts computed here from the actual activations.

use advhunter_tensor::Tensor;

use crate::{ACTIVE_TILE_THRESHOLD, FLOATS_PER_LINE};

/// Activity of each 16-float tile of a tensor's flat buffer: `true` when
/// any element's magnitude exceeds [`ACTIVE_TILE_THRESHOLD`].
pub fn tile_activity(t: &Tensor) -> Vec<bool> {
    t.data()
        .chunks(FLOATS_PER_LINE)
        .map(|tile| tile.iter().any(|v| v.abs() > ACTIVE_TILE_THRESHOLD))
        .collect()
}

/// Number of active elements in each 16-float tile (the quantity the
/// sparsity-aware kernels use to size their weight-tile fetches).
pub fn tile_active_counts(t: &Tensor) -> Vec<u8> {
    let mut out = Vec::new();
    tile_active_counts_into(t.data(), &mut out);
    out
}

/// [`tile_active_counts`] into a reusable buffer — the allocation-free form
/// the measurement hot path uses. `out` is cleared first; its capacity is
/// retained across calls.
pub fn tile_active_counts_into(data: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.extend(data.chunks(FLOATS_PER_LINE).map(|tile| {
        tile.iter()
            .filter(|v| v.abs() > ACTIVE_TILE_THRESHOLD)
            .count() as u8
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_activity_detects_sparse_tiles() {
        let mut v = vec![0.0f32; 48];
        v[20] = 1.0; // tile 1 active
        let t = Tensor::from_vec(v, &[48]).unwrap();
        assert_eq!(tile_activity(&t), vec![false, true, false]);
    }

    #[test]
    fn tile_activity_ignores_subthreshold_values() {
        let v = vec![ACTIVE_TILE_THRESHOLD / 2.0; 16];
        let t = Tensor::from_vec(v, &[16]).unwrap();
        assert_eq!(tile_activity(&t), vec![false]);
    }

    #[test]
    fn tile_activity_handles_partial_last_tile() {
        let mut v = vec![0.0f32; 20];
        v[19] = 5.0;
        let t = Tensor::from_vec(v, &[20]).unwrap();
        assert_eq!(tile_activity(&t), vec![false, true]);
    }

    #[test]
    fn active_counts_match_activity_flags() {
        let mut v = vec![0.0f32; 40];
        v[0] = 1.0;
        v[1] = -2.0;
        v[17] = ACTIVE_TILE_THRESHOLD; // exactly at threshold: inactive
        v[33] = 0.5;
        let t = Tensor::from_vec(v, &[40]).unwrap();
        let counts = tile_active_counts(&t);
        assert_eq!(counts, vec![2, 0, 1]);
        let flags: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
        assert_eq!(flags, tile_activity(&t));
    }

    #[test]
    fn into_variant_clears_previous_contents() {
        let mut buf = vec![9u8; 5];
        tile_active_counts_into(&[1.0; 16], &mut buf);
        assert_eq!(buf, vec![16]);
        tile_active_counts_into(&[], &mut buf);
        assert!(buf.is_empty());
    }
}
