//! Per-op trace kernels: how each layer's execution appears to the memory
//! system and branch predictor.

use advhunter_nn::{Node, Op};
use advhunter_tensor::Tensor;
use advhunter_uarch::CounterGroup;

use crate::layout::{MemoryLayout, Region};
use crate::{ACTIVE_TILE_THRESHOLD, FLOATS_PER_LINE};

/// Emits the trace of one node given its single-image input/output
/// activations.
pub(crate) fn trace_node(
    group: &mut CounterGroup,
    node: &Node,
    node_idx: usize,
    layout: &MemoryLayout,
    inputs: &[&Tensor],
    output: &Tensor,
) {
    let code = layout.node_code[node_idx];
    let out_region = layout.node_outputs[node_idx];
    match &node.op {
        Op::Conv2d(l) => {
            let x = inputs[0];
            let (_, h, w) = x.shape().as_chw();
            let macs = l.spec.mac_count(h, w);
            matrix_kernel(
                group,
                code,
                x,
                layout.input_region(&node.inputs, 0),
                layout.node_weights[node_idx][0],
                Some(layout.node_weights[node_idx][1]),
                out_region,
                macs,
            );
        }
        Op::DwConv2d(l) => {
            let x = inputs[0];
            let (c, h, w) = x.shape().as_chw();
            let (oh, ow) = l.spec.out_hw(h, w);
            let macs = (c * l.spec.kernel * l.spec.kernel * oh * ow) as u64;
            matrix_kernel(
                group,
                code,
                x,
                layout.input_region(&node.inputs, 0),
                layout.node_weights[node_idx][0],
                Some(layout.node_weights[node_idx][1]),
                out_region,
                macs,
            );
        }
        Op::Linear(l) => {
            let x = inputs[0];
            let macs = l.weight.len() as u64;
            matrix_kernel(
                group,
                code,
                x,
                layout.input_region(&node.inputs, 0),
                layout.node_weights[node_idx][0],
                Some(layout.node_weights[node_idx][1]),
                out_region,
                macs,
            );
        }
        Op::BatchNorm2d(_) => {
            // Folded scale/shift: stream input -> output, touching the
            // per-channel parameter block once.
            stream_loads(group, layout.node_weights[node_idx][0]);
            elementwise_kernel(
                group,
                code,
                layout.input_region(&node.inputs, 0),
                out_region,
                inputs[0].len() as u64 * 2,
            );
        }
        Op::ReLU | Op::LeakyReLU { .. } | Op::SiLU | Op::Sigmoid | Op::Tanh => {
            elementwise_kernel(
                group,
                code,
                layout.input_region(&node.inputs, 0),
                out_region,
                inputs[0].len() as u64 * 2,
            );
        }
        Op::MaxPool2d { .. } | Op::AvgPool2d { .. } | Op::GlobalAvgPool => {
            elementwise_kernel(
                group,
                code,
                layout.input_region(&node.inputs, 0),
                out_region,
                inputs[0].len() as u64,
            );
        }
        Op::Flatten => {
            // A view: no data movement, negligible instructions.
            group.retire_instructions(4);
        }
        Op::Add | Op::ConcatChannels | Op::ScaleChannels => {
            stream_loads(group, layout.input_region(&node.inputs, 1));
            elementwise_kernel(
                group,
                code,
                layout.input_region(&node.inputs, 0),
                out_region,
                (inputs[0].len() + inputs[1].len()) as u64,
            );
        }
    }
    let _ = output;
}

/// The tiled, sparsity-aware GEMM/conv kernel model.
///
/// For every input-activation line: load it (the kernel must inspect the
/// tile to decide what to skip), then stream a share of the tile's
/// associated weight-line slice proportional to how many of the tile's 16
/// elements are active — an element-gathering kernel skips the weight rows
/// of inactive neurons. Output lines are written densely. Instruction and
/// branch counts depend only on the dimensions.
#[allow(clippy::too_many_arguments)]
fn matrix_kernel(
    group: &mut CounterGroup,
    code: Region,
    x: &Tensor,
    x_region: Region,
    w_region: Region,
    bias_region: Option<Region>,
    out_region: Region,
    macs: u64,
) {
    fetch_code(group, code);
    let activity = tile_active_counts(x);
    let in_lines = activity.len() as u64;
    let w_lines = w_region.lines();
    for (i, &active_elems) in activity.iter().enumerate() {
        let i = i as u64;
        group.load(x_region.line_addr(i.min(x_region.lines() - 1)));
        if active_elems > 0 {
            let start = i * w_lines / in_lines;
            let end = (i + 1) * w_lines / in_lines;
            let slice = end - start;
            // Fetch only the weight rows of the tile's active neurons.
            let take = (slice * active_elems as u64).div_ceil(FLOATS_PER_LINE as u64);
            for wl in start..start + take.min(slice) {
                group.load(w_region.line_addr(wl));
            }
        }
    }
    if let Some(b) = bias_region {
        stream_loads(group, b);
    }
    stream_stores(group, out_region);

    // Dimension-only control flow: outer loop over input lines, inner loop
    // over weight slice, write-out loop.
    group.loop_branches(code.base, in_lines);
    group.loop_branches(code.base + 8, w_lines.max(1));
    group.loop_branches(code.base + 16, out_region.lines());
    group.retire_instructions(macs / 4 + out_region.lines() * 4);
}

/// Dense streaming op: read every input line, write every output line.
fn elementwise_kernel(
    group: &mut CounterGroup,
    code: Region,
    in_region: Region,
    out_region: Region,
    instructions: u64,
) {
    fetch_code(group, code);
    stream_loads(group, in_region);
    stream_stores(group, out_region);
    group.loop_branches(code.base, in_region.lines().max(1));
    group.retire_instructions(instructions);
}

fn fetch_code(group: &mut CounterGroup, code: Region) {
    for i in 0..code.lines() {
        group.fetch(code.line_addr(i));
    }
}

fn stream_loads(group: &mut CounterGroup, region: Region) {
    for i in 0..region.lines() {
        group.load(region.line_addr(i));
    }
}

fn stream_stores(group: &mut CounterGroup, region: Region) {
    for i in 0..region.lines() {
        group.store(region.line_addr(i));
    }
}

/// Activity of each 16-float tile of a tensor's flat buffer: `true` when
/// any element's magnitude exceeds [`ACTIVE_TILE_THRESHOLD`].
pub fn tile_activity(t: &Tensor) -> Vec<bool> {
    t.data()
        .chunks(FLOATS_PER_LINE)
        .map(|tile| tile.iter().any(|v| v.abs() > ACTIVE_TILE_THRESHOLD))
        .collect()
}

/// Number of active elements in each 16-float tile (the quantity the
/// sparsity-aware kernels use to size their weight-tile fetches).
pub fn tile_active_counts(t: &Tensor) -> Vec<u8> {
    t.data()
        .chunks(FLOATS_PER_LINE)
        .map(|tile| {
            tile.iter()
                .filter(|v| v.abs() > ACTIVE_TILE_THRESHOLD)
                .count() as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_activity_detects_sparse_tiles() {
        let mut v = vec![0.0f32; 48];
        v[20] = 1.0; // tile 1 active
        let t = Tensor::from_vec(v, &[48]).unwrap();
        assert_eq!(tile_activity(&t), vec![false, true, false]);
    }

    #[test]
    fn tile_activity_ignores_subthreshold_values() {
        let v = vec![ACTIVE_TILE_THRESHOLD / 2.0; 16];
        let t = Tensor::from_vec(v, &[16]).unwrap();
        assert_eq!(tile_activity(&t), vec![false]);
    }

    #[test]
    fn tile_activity_handles_partial_last_tile() {
        let mut v = vec![0.0f32; 20];
        v[19] = 5.0;
        let t = Tensor::from_vec(v, &[20]).unwrap();
        assert_eq!(tile_activity(&t), vec![false, true]);
    }
}
