//! Virtual address layout of the inference runtime.

use advhunter_nn::{Graph, Op, Src};
use advhunter_uarch::LINE_BYTES;

/// A contiguous, line-aligned address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address (line-aligned).
    pub base: u64,
    /// Size in bytes (line-aligned).
    pub bytes: u64,
}

impl Region {
    /// Number of cache lines spanned.
    pub fn lines(&self) -> u64 {
        self.bytes / LINE_BYTES
    }

    /// Address of line `i` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn line_addr(&self, i: u64) -> u64 {
        assert!(
            i < self.lines(),
            "line {i} out of range ({} lines)",
            self.lines()
        );
        self.base + i * LINE_BYTES
    }

    /// Sub-range `[start_line, end_line)` of this region.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn slice_lines(&self, start_line: u64, end_line: u64) -> Region {
        assert!(
            start_line <= end_line && end_line <= self.lines(),
            "bad slice"
        );
        Region {
            base: self.base + start_line * LINE_BYTES,
            bytes: (end_line - start_line) * LINE_BYTES,
        }
    }
}

const CODE_BASE: u64 = 0x1000_0000;
const WEIGHT_BASE: u64 = 0x2000_0000;
const ACT_BASE: u64 = 0x6000_0000;
/// Bytes of kernel code modelled per op kind.
const CODE_BYTES_PER_KIND: u64 = 4096;

/// The address map of one model: kernel code per op kind, a weight region
/// per parameter tensor, and an activation buffer per node output (plus the
/// input buffer). `Flatten` aliases its producer's buffer — it is a view,
/// not a copy.
#[derive(Debug, Clone)]
pub struct MemoryLayout {
    /// Input image buffer.
    pub input: Region,
    /// Output activation buffer per node.
    pub node_outputs: Vec<Region>,
    /// Weight regions per node (empty for parameter-free ops). Order
    /// matches the op's parameter order (weight, then bias merged in).
    pub node_weights: Vec<Vec<Region>>,
    /// Kernel code region per node (shared between nodes of the same kind).
    pub node_code: Vec<Region>,
}

impl MemoryLayout {
    /// Builds the address map for a graph.
    pub fn new(graph: &Graph) -> Self {
        let shapes = graph.single_image_shapes();

        // Code: one region per distinct op kind.
        let mut kind_regions: Vec<(u8, Region)> = Vec::new();
        let mut node_code = Vec::with_capacity(graph.nodes().len());
        for node in graph.nodes() {
            let kind = op_kind(&node.op);
            let region = match kind_regions.iter().find(|(k, _)| *k == kind) {
                Some((_, r)) => *r,
                None => {
                    let r = Region {
                        base: CODE_BASE + kind_regions.len() as u64 * CODE_BYTES_PER_KIND,
                        bytes: CODE_BYTES_PER_KIND,
                    };
                    kind_regions.push((kind, r));
                    r
                }
            };
            node_code.push(region);
        }

        // Weights: contiguous per parameter tensor, in node order.
        let mut cursor = WEIGHT_BASE;
        let mut node_weights = Vec::with_capacity(graph.nodes().len());
        for node in graph.nodes() {
            let sizes: Vec<u64> = match &node.op {
                Op::Conv2d(l) => vec![l.weight.len() as u64 * 4, l.bias.len() as u64 * 4],
                Op::DwConv2d(l) => vec![l.weight.len() as u64 * 4, l.bias.len() as u64 * 4],
                Op::Linear(l) => vec![l.weight.len() as u64 * 4, l.bias.len() as u64 * 4],
                Op::BatchNorm2d(bn) => vec![bn.gamma.len() as u64 * 4 * 4], // γ, β, μ, σ² folded
                _ => vec![],
            };
            let mut regions = Vec::with_capacity(sizes.len());
            for sz in sizes {
                let bytes = align_up(sz.max(1));
                regions.push(Region {
                    base: cursor,
                    bytes,
                });
                cursor += bytes;
            }
            node_weights.push(regions);
        }

        // Activations: an arena of reusable slots, as real inference
        // runtimes allocate them. Buffer lifetimes come from a liveness
        // pass (a node's output dies after its last consumer); `Flatten`
        // aliases its producer, extending the producer's lifetime.
        let input_bytes = align_up(graph.input_dims().iter().product::<usize>() as u64 * 4);
        let input = Region {
            base: ACT_BASE,
            bytes: input_bytes,
        };
        let node_outputs = allocate_activation_arena(graph, &shapes, input, ACT_BASE + input_bytes);

        Self {
            input,
            node_outputs,
            node_weights,
            node_code,
        }
    }

    /// The buffer a node reads its `idx`-th input from.
    pub fn input_region(&self, node_inputs: &[Src], idx: usize) -> Region {
        match node_inputs[idx] {
            Src::Input => self.input,
            Src::Node(j) => self.node_outputs[j],
        }
    }

    /// Total weight bytes mapped.
    pub fn total_weight_bytes(&self) -> u64 {
        self.node_weights
            .iter()
            .flat_map(|v| v.iter())
            .map(|r| r.bytes)
            .sum()
    }

    /// Total activation bytes mapped (excluding aliased flatten views).
    pub fn total_activation_bytes(&self) -> u64 {
        let mut seen_bases = std::collections::HashSet::new();
        let mut total = self.input.bytes;
        seen_bases.insert(self.input.base);
        for r in &self.node_outputs {
            if seen_bases.insert(r.base) {
                total += r.bytes;
            }
        }
        total
    }
}

/// Assigns each node output a slot from a reusable arena, register-allocator
/// style: a buffer's lifetime extends to its last (alias-resolved) consumer;
/// freed slots are reused for later buffers that fit.
fn allocate_activation_arena(
    graph: &Graph,
    shapes: &[Vec<usize>],
    input: Region,
    arena_base: u64,
) -> Vec<Region> {
    let nodes = graph.nodes();
    let n = nodes.len();

    // Resolve flatten aliases down to the real producer.
    let resolve = |mut src: Src| -> Src {
        while let Src::Node(j) = src {
            if matches!(nodes[j].op, Op::Flatten) {
                src = nodes[j].inputs[0];
            } else {
                break;
            }
        }
        src
    };

    // Liveness: last node index that reads each producer's buffer.
    let mut last_use: Vec<usize> = (0..n).collect();
    for (i, node) in nodes.iter().enumerate() {
        for &src in &node.inputs {
            if let Src::Node(j) = resolve(src) {
                last_use[j] = last_use[j].max(i);
            }
        }
    }
    // The final output stays live forever.
    if let Some(final_src) = (0..n).last().map(Src::Node) {
        if let Src::Node(j) = resolve(final_src) {
            last_use[j] = usize::MAX;
        }
    }

    // Greedy first-fit over slots: (base, bytes, free_after_node).
    let mut slots: Vec<(u64, u64, usize)> = Vec::new();
    let mut cursor = arena_base;
    let mut regions: Vec<Region> = Vec::with_capacity(n);
    for (i, node) in nodes.iter().enumerate() {
        if matches!(node.op, Op::Flatten) {
            let region = match resolve(Src::Node(i)) {
                Src::Input => input,
                Src::Node(j) => regions[j],
            };
            regions.push(region);
            continue;
        }
        let bytes = align_up(shapes[i].iter().product::<usize>() as u64 * 4);
        let slot = slots
            .iter()
            .position(|&(_, cap, free_after)| free_after < i && cap >= bytes);
        let base = match slot {
            Some(s) => {
                slots[s].2 = last_use[i];
                slots[s].0
            }
            None => {
                let base = cursor;
                cursor += bytes;
                slots.push((base, bytes, last_use[i]));
                base
            }
        };
        regions.push(Region { base, bytes });
    }
    regions
}

fn op_kind(op: &Op) -> u8 {
    match op {
        Op::Conv2d(_) => 0,
        Op::DwConv2d(_) => 1,
        Op::Linear(_) => 2,
        Op::BatchNorm2d(_) => 3,
        Op::ReLU => 4,
        Op::SiLU => 5,
        Op::Sigmoid => 6,
        Op::MaxPool2d { .. } => 7,
        Op::AvgPool2d { .. } => 8,
        Op::GlobalAvgPool => 9,
        Op::Flatten => 10,
        Op::Add => 11,
        Op::ConcatChannels => 12,
        Op::ScaleChannels => 13,
        Op::LeakyReLU { .. } => 14,
        Op::Tanh => 15,
    }
}

fn align_up(bytes: u64) -> u64 {
    bytes.div_ceil(LINE_BYTES) * LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use advhunter_nn::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Graph {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c = b.conv2d("conv", input, 4, 3, 1, 1, &mut rng);
        let r = b.relu("relu", c);
        let f = b.flatten("flat", r);
        b.linear("fc", f, 3, &mut rng);
        b.build()
    }

    #[test]
    fn regions_are_line_aligned_and_disjoint() {
        let g = model();
        let layout = MemoryLayout::new(&g);
        let mut regions = vec![layout.input];
        regions.extend(layout.node_weights.iter().flatten().copied());
        for r in &regions {
            assert_eq!(r.base % LINE_BYTES, 0);
            assert_eq!(r.bytes % LINE_BYTES, 0);
        }
        // Weight regions must not overlap each other.
        let mut sorted: Vec<Region> = layout.node_weights.iter().flatten().copied().collect();
        sorted.sort_by_key(|r| r.base);
        for w in sorted.windows(2) {
            assert!(w[0].base + w[0].bytes <= w[1].base, "overlap: {w:?}");
        }
    }

    #[test]
    fn flatten_aliases_producer_buffer() {
        let g = model();
        let layout = MemoryLayout::new(&g);
        // Node order: conv(0), relu(1), flatten(2), fc(3).
        assert_eq!(layout.node_outputs[2], layout.node_outputs[1]);
    }

    #[test]
    fn nodes_of_same_kind_share_code() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new(&[1, 4, 4]);
        let input = b.input();
        let c1 = b.conv2d("c1", input, 2, 3, 1, 1, &mut rng);
        let r1 = b.relu("r1", c1);
        let c2 = b.conv2d("c2", r1, 2, 3, 1, 1, &mut rng);
        b.relu("r2", c2);
        let g = b.build();
        let layout = MemoryLayout::new(&g);
        assert_eq!(layout.node_code[0], layout.node_code[2], "convs share code");
        assert_eq!(layout.node_code[1], layout.node_code[3], "relus share code");
        assert_ne!(layout.node_code[0], layout.node_code[1]);
    }

    #[test]
    fn weight_bytes_match_parameter_count() {
        let g = model();
        let layout = MemoryLayout::new(&g);
        // conv: 4*9*4B weights + 4*4B bias; fc: 3*256*4B + 3*4B, all
        // rounded up to 64B lines.
        let expect: u64 = [4 * 9 * 4u64, 4 * 4, 3 * 256 * 4, 3 * 4]
            .iter()
            .map(|&b| b.div_ceil(64) * 64)
            .sum();
        assert_eq!(layout.total_weight_bytes(), expect);
    }

    #[test]
    fn region_slicing() {
        let r = Region {
            base: 0x1000,
            bytes: 640,
        };
        assert_eq!(r.lines(), 10);
        assert_eq!(r.line_addr(3), 0x1000 + 192);
        let s = r.slice_lines(2, 5);
        assert_eq!(s.base, 0x1000 + 128);
        assert_eq!(s.lines(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_addr_bounds_checked() {
        Region { base: 0, bytes: 64 }.line_addr(1);
    }
}
