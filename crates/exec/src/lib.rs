//! Instrumented DNN inference: replays a forward pass as a line-granular
//! memory / branch / instruction trace through the [`advhunter_uarch`]
//! machine simulator, yielding the HPC readings the AdvHunter defender
//! observes.
//!
//! # Execution model
//!
//! The engine mirrors how an optimized CPU inference runtime behaves, at the
//! granularity relevant to hardware performance counters:
//!
//! * **Data flow is activation-dependent.** Kernels are *tiled* and
//!   *sparsity-aware*: activations are processed in 16-float tiles (one
//!   64-byte cache line), and a tile whose values are all below
//!   [`ACTIVE_TILE_THRESHOLD`] skips the weight-tile loads associated with
//!   it. Which neurons fire therefore determines which weight lines are
//!   fetched — the paper's "data flow dynamics" (§1, §6).
//! * **Control flow is input-independent.** Inner loops are counted loops
//!   whose trip counts depend only on layer dimensions; ReLU and the tile
//!   activity checks compile to branch-free SIMD code. `instructions`,
//!   `branches`, and `branch-misses` are thus (noise aside) identical for
//!   clean and adversarial inputs, as the paper observes in Figure 3.
//! * **Each inference starts on a cold machine.** A defender measures one
//!   inference at a time on a busy system; compulsory misses dominate, so
//!   LLC misses directly reflect the set of lines the inference touches.
//!
//! # Example
//!
//! ```
//! use advhunter_exec::TraceEngine;
//! use advhunter_nn::GraphBuilder;
//! use advhunter_tensor::Tensor;
//! use advhunter_uarch::HpcEvent;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new(&[1, 8, 8]);
//! let input = b.input();
//! let c = b.conv2d("conv", input, 4, 3, 1, 1, &mut rng);
//! let r = b.relu("relu", c);
//! let f = b.flatten("flat", r);
//! b.linear("fc", f, 3, &mut rng);
//! let model = b.build();
//!
//! let engine = TraceEngine::new(&model);
//! let counts = engine.true_counts(&model, &Tensor::full(&[1, 8, 8], 0.5));
//! assert!(counts.get(HpcEvent::Instructions) > 0);
//! assert!(counts.get(HpcEvent::CacheMisses) > 0);
//! ```

mod attribution;
mod engine;
mod kernels;
mod layout;
mod plan;
mod tune;

pub use attribution::{NodeAttribution, TraceAttribution};
pub use engine::{Measurement, PooledScratch, TraceEngine, TraceScratch};
pub use kernels::{tile_active_counts, tile_active_counts_into, tile_activity};
pub use layout::{MemoryLayout, Region};
pub use tune::{choose_variant, tune_stats, tuned_kernels, TunePersistence, TuneStats};

/// A 16-float activation tile counts as active when any element's magnitude
/// exceeds this threshold (ReLU produces exact zeros; SiLU's tail and
/// squeeze-and-excitation gating produce near-zeros).
pub const ACTIVE_TILE_THRESHOLD: f32 = 0.40;

/// Floats per cache line (64 bytes of `f32`).
pub const FLOATS_PER_LINE: usize = 16;
