//! Plan-time GEMM autotuner with a pluggable persisted decision table.
//!
//! At [`TraceEngine`](crate::TraceEngine) construction, every distinct
//! [`GemmGeometry`] in the graph needs a [`KernelVariant`]. The decision
//! ladder, cheapest first:
//!
//! 1. the process-global memo (one benchmark per geometry per process, no
//!    matter how many engines are built);
//! 2. the caller's [`TunePersistence`] backend (the content-addressed
//!    artifact store, wired by `advhunter::Pipeline`), so warm runs pay
//!    zero tuning cost across processes;
//! 3. a micro-benchmark of every candidate variant on synthetic operands
//!    of the exact geometry — a few timed repetitions each, minimum wins —
//!    whose verdict is then memoized and persisted.
//!
//! A memo hit still write-through-fills an absent backend entry, so every
//! store an engine tunes against ends up holding the full decision table
//! even when the benchmarks ran earlier in the process.
//!
//! Because every variant is bit-exact (see `advhunter_tensor::ops::gemm`),
//! the tuner is free to pick differently on different machines or runs:
//! the choice changes timings only, never a single activation bit or
//! simulated HPC count.
//!
//! `ADVHUNTER_TUNE` overrides the ladder: `off` pins the default variant
//! without benchmarking or persistence; `reference` disables packing
//! entirely so the engine runs the reference loops (for A/B benchmarks).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use advhunter_nn::{Graph, MatKernels};
use advhunter_telemetry::Counter;
use advhunter_tensor::ops::{
    gemm_packed_bias_into, linear_packed_bias_into, GemmGeometry, GemmOpKind, KernelVariant,
    PackedWeights,
};

/// A backend that remembers tuning verdicts across processes (the pipeline
/// wires the content-addressed artifact store here).
pub trait TunePersistence: Send + Sync {
    /// A previously persisted verdict for `geometry`, if any.
    fn load(&self, geometry: &GemmGeometry) -> Option<KernelVariant>;
    /// Persists a fresh verdict for `geometry`.
    fn store(&self, geometry: &GemmGeometry, variant: KernelVariant);
}

fn memo() -> &'static Mutex<HashMap<GemmGeometry, KernelVariant>> {
    static MEMO: OnceLock<Mutex<HashMap<GemmGeometry, KernelVariant>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Tuner telemetry, registered once in the global registry.
struct TuneMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evals: Arc<Counter>,
}

fn tune_metrics() -> &'static TuneMetrics {
    static METRICS: OnceLock<TuneMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = advhunter_telemetry::global();
        TuneMetrics {
            hits: r.counter(
                "advhunter_tune_hits_total",
                "GEMM tuning decisions answered by the memo or persisted table",
            ),
            misses: r.counter(
                "advhunter_tune_misses_total",
                "GEMM geometries that had to be benchmarked",
            ),
            evals: r.counter(
                "advhunter_tune_evals_total",
                "Candidate kernel variants benchmarked by the tuner",
            ),
        }
    })
}

/// A snapshot of the tuner counters (also rendered by `--metrics-json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneStats {
    /// Decisions served without benchmarking.
    pub hits: u64,
    /// Geometries benchmarked.
    pub misses: u64,
    /// Candidate variants timed.
    pub evals: u64,
}

/// Reads the process-wide tuner counters.
pub fn tune_stats() -> TuneStats {
    let m = tune_metrics();
    TuneStats {
        hits: m.hits.get(),
        misses: m.misses.get(),
        evals: m.evals.get(),
    }
}

/// `ADVHUNTER_TUNE` modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TuneMode {
    /// Full ladder: memo → persisted table → benchmark.
    On,
    /// Default variant everywhere, no benchmarking or persistence.
    Off,
    /// No packed kernels at all — reference loops (A/B benchmarks).
    Reference,
}

fn tune_mode() -> TuneMode {
    match std::env::var("ADVHUNTER_TUNE").as_deref() {
        Ok("off") | Ok("0") => TuneMode::Off,
        Ok("reference") => TuneMode::Reference,
        _ => TuneMode::On,
    }
}

/// Resolves the kernel variant for one geometry through the decision
/// ladder (see the module docs), consulting and filling `backend` when
/// one is given.
pub fn choose_variant(
    geometry: GemmGeometry,
    backend: Option<&dyn TunePersistence>,
) -> KernelVariant {
    if tune_mode() == TuneMode::Off {
        return KernelVariant::default();
    }
    let metrics = tune_metrics();
    let memoized = memo()
        .lock()
        .expect("tune memo poisoned")
        .get(&geometry)
        .copied();
    if let Some(v) = memoized {
        metrics.hits.inc();
        // Write-through: a backend that has never seen this geometry gets
        // the memoized verdict, so its decision table is complete even
        // though this process benchmarked before the backend existed.
        if let Some(b) = backend {
            if b.load(&geometry).is_none() {
                b.store(&geometry, v);
            }
        }
        return v;
    }
    if let Some(v) = backend.and_then(|b| b.load(&geometry)) {
        metrics.hits.inc();
        memo()
            .lock()
            .expect("tune memo poisoned")
            .insert(geometry, v);
        return v;
    }
    metrics.misses.inc();
    let v = benchmark_geometry(&geometry);
    // First write wins on a race: both racers benchmarked the same
    // bit-exact candidates, so either verdict is valid.
    let v = *memo()
        .lock()
        .expect("tune memo poisoned")
        .entry(geometry)
        .or_insert(v);
    if let Some(b) = backend {
        b.store(&geometry, v);
    }
    v
}

/// Packs every matrix node of `graph` with autotuned variants — the table
/// [`TraceEngine`](crate::TraceEngine) stores in its static plan.
pub fn tuned_kernels(graph: &Graph, backend: Option<&dyn TunePersistence>) -> MatKernels {
    if tune_mode() == TuneMode::Reference {
        return MatKernels::default();
    }
    MatKernels::pack_with(graph, &mut |geometry| choose_variant(geometry, backend))
}

/// Times every candidate on synthetic operands of the exact geometry and
/// returns the fastest (minimum over interleaved repetitions; ties break
/// toward the first candidate in [`KernelVariant::ALL`] order).
///
/// The rounds are interleaved round-robin across variants rather than run
/// back-to-back per variant: clock-frequency drift or a scheduler tick then
/// lands on every candidate equally instead of mis-ranking whichever one it
/// happened to hit, and min-of-rounds discards it entirely.
fn benchmark_geometry(geometry: &GemmGeometry) -> KernelVariant {
    const ROUNDS: usize = 5;
    let GemmGeometry { op, m, k, n } = *geometry;
    let a = synthetic(m * k, 1);
    let bias = synthetic(m, 2);
    let data = match op {
        GemmOpKind::Conv => synthetic(k * n, 3),
        GemmOpKind::Linear => synthetic(n * k, 3),
    };
    let mut out = vec![0.0f32; m * n];
    let candidates: Vec<_> = KernelVariant::ALL
        .iter()
        .map(|&variant| {
            tune_metrics().evals.inc();
            (variant, PackedWeights::pack(&a, m, k, variant), u128::MAX)
        })
        .collect();
    let mut candidates = candidates;
    // One warmup round plus timed rounds; keep each variant's minimum.
    for round in 0..=ROUNDS {
        for (_, packed, elapsed) in candidates.iter_mut() {
            let start = Instant::now();
            match op {
                GemmOpKind::Conv => gemm_packed_bias_into(packed, &data, n, &bias, &mut out),
                GemmOpKind::Linear => linear_packed_bias_into(packed, &data, n, &bias, &mut out),
            }
            if round > 0 {
                *elapsed = (*elapsed).min(start.elapsed().as_nanos());
            }
        }
    }
    candidates
        .iter()
        .min_by_key(|(_, _, elapsed)| *elapsed)
        .map(|(variant, _, _)| *variant)
        .unwrap_or_default()
}

/// Deterministic non-zero pseudo-random operand fill.
fn synthetic(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 - (1 << 23)) as f32 / (1 << 24) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Backend recording loads/stores for exactly one geometry (other
    /// concurrent tests tune other geometries; filtering keeps the
    /// assertions race-free).
    struct Recorder {
        watched: GemmGeometry,
        held: Mutex<Option<KernelVariant>>,
        loads: AtomicU64,
        stores: AtomicU64,
    }

    impl Recorder {
        fn new(watched: GemmGeometry, held: Option<KernelVariant>) -> Self {
            Self {
                watched,
                held: Mutex::new(held),
                loads: AtomicU64::new(0),
                stores: AtomicU64::new(0),
            }
        }
    }

    impl TunePersistence for Recorder {
        fn load(&self, geometry: &GemmGeometry) -> Option<KernelVariant> {
            if *geometry == self.watched {
                self.loads.fetch_add(1, Ordering::Relaxed);
                *self.held.lock().unwrap()
            } else {
                None
            }
        }
        fn store(&self, geometry: &GemmGeometry, variant: KernelVariant) {
            if *geometry == self.watched {
                self.stores.fetch_add(1, Ordering::Relaxed);
                *self.held.lock().unwrap() = Some(variant);
            }
        }
    }

    /// A geometry no other test tunes, so backend traffic is attributable.
    fn private_geometry(n: usize) -> GemmGeometry {
        GemmGeometry {
            op: GemmOpKind::Conv,
            m: 3,
            k: 5,
            n,
        }
    }

    #[test]
    fn fresh_geometry_benchmarks_once_then_hits_the_memo() {
        let geo = private_geometry(97);
        let backend = Recorder::new(geo, None);
        let before = tune_stats();
        let first = choose_variant(geo, Some(&backend));
        let mid = tune_stats();
        // `>=` everywhere: other tests tune other geometries concurrently.
        assert!(mid.misses > before.misses, "first call must benchmark");
        assert!(mid.evals >= before.evals + KernelVariant::ALL.len() as u64);
        assert_eq!(backend.stores.load(Ordering::Relaxed), 1, "verdict stored");

        let second = choose_variant(geo, Some(&backend));
        let after = tune_stats();
        assert_eq!(first, second, "memoized verdict must be stable");
        assert!(after.hits > mid.hits, "second call must hit the memo");
        // The memo hit found the backend already populated: no re-store.
        assert_eq!(backend.loads.load(Ordering::Relaxed), 2);
        assert_eq!(backend.stores.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn persisted_verdicts_are_honored_without_benchmarking() {
        let geo = private_geometry(89);
        let backend = Recorder::new(geo, Some(KernelVariant::Mr6Nr8));
        let v = choose_variant(geo, Some(&backend));
        assert_eq!(v, KernelVariant::Mr6Nr8);
        assert_eq!(
            backend.stores.load(Ordering::Relaxed),
            0,
            "a persisted hit must not be re-stored"
        );
        // The verdict is now memoized: no backend needed.
        assert_eq!(choose_variant(geo, None), KernelVariant::Mr6Nr8);
    }

    #[test]
    fn memo_hits_backfill_an_empty_backend() {
        let geo = private_geometry(83);
        choose_variant(geo, None); // benchmark + memoize, no backend
        let backend = Recorder::new(geo, None);
        let v = choose_variant(geo, Some(&backend));
        assert_eq!(
            backend.stores.load(Ordering::Relaxed),
            1,
            "memo hit must write through to a backend missing the verdict"
        );
        // Now that the backend holds the verdict, another hit leaves it be.
        assert_eq!(choose_variant(geo, Some(&backend)), v);
        assert_eq!(backend.stores.load(Ordering::Relaxed), 1);
    }
}
