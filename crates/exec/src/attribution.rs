//! Per-layer trace attribution: which node contributes which share of each
//! HPC event.
//!
//! The aggregate counters the defender sees are sums over every layer of
//! the inference. For analysis (not available to a real black-box
//! defender), this module re-runs the trace with a counter snapshot per
//! node, yielding a per-layer breakdown — e.g. to quantify how much of the
//! `cache-misses` signal each layer carries, or why minimally-perturbed
//! adversarial examples can hide from layers whose activations they align
//! with (see EXPERIMENTS.md).

use advhunter_nn::{Graph, Mode};
use advhunter_tensor::Tensor;
use advhunter_uarch::{CounterGroup, HpcCounts, HpcEvent};

use crate::engine::{execute_node, TraceEngine};

/// Counter deltas attributed to one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAttribution {
    /// Node index in the graph.
    pub node_index: usize,
    /// The node's name.
    pub name: String,
    /// Counter increments caused by this node's kernel.
    pub counts: HpcCounts,
}

/// A full per-node breakdown of one inference's trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAttribution {
    /// Per-node deltas, in execution order.
    pub nodes: Vec<NodeAttribution>,
}

impl TraceAttribution {
    /// Total counts (equals the engine's aggregate trace).
    pub fn total(&self) -> HpcCounts {
        let mut total = HpcCounts::default();
        for node in &self.nodes {
            for event in HpcEvent::ALL {
                total.add(event, node.counts.get(event));
            }
        }
        total
    }

    /// The node contributing the most of `event`.
    pub fn dominant_node(&self, event: HpcEvent) -> Option<&NodeAttribution> {
        self.nodes.iter().max_by_key(|n| n.counts.get(event))
    }

    /// Fraction of `event` attributed to node `i` (0 when the total is 0).
    pub fn share(&self, i: usize, event: HpcEvent) -> f64 {
        let total = self.total().get(event);
        if total == 0 {
            return 0.0;
        }
        self.nodes[i].counts.get(event) as f64 / total as f64
    }
}

impl TraceEngine {
    /// Traces one inference with a per-node counter breakdown.
    ///
    /// The machine state is shared across nodes exactly as in
    /// [`true_counts`](TraceEngine::true_counts) — attribution reflects the
    /// warm-cache interactions between layers, and the per-node deltas sum
    /// to the aggregate counts.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input shape.
    pub fn attribute(&self, graph: &Graph, image: &Tensor) -> TraceAttribution {
        assert_eq!(
            image.shape().dims(),
            graph.input_dims(),
            "image shape must match model input"
        );
        let mut scratch = self.scratch(graph);
        graph.forward_with(image, Mode::Eval, &mut scratch.ws);

        let mut group = CounterGroup::new(self.machine_config());
        let mut nodes = Vec::with_capacity(graph.nodes().len());
        for (i, node) in graph.nodes().iter().enumerate() {
            group.enable();
            execute_node(
                &mut group,
                &self.plan.nodes[i],
                image,
                &scratch.ws,
                &mut scratch.tiles,
            );
            group.disable();
            nodes.push(NodeAttribution {
                node_index: i,
                name: node.name.clone(),
                counts: group.read(),
            });
        }
        TraceAttribution { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advhunter_nn::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Graph {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c = b.conv2d("conv", input, 4, 3, 1, 1, &mut rng);
        let r = b.relu("relu", c);
        let f = b.flatten("flat", r);
        b.linear("fc", f, 4, &mut rng);
        b.build()
    }

    fn image() -> Tensor {
        let mut rng = StdRng::seed_from_u64(1);
        advhunter_tensor::init::uniform(&mut rng, &[1, 8, 8], 0.0, 1.0)
    }

    #[test]
    fn attribution_sums_to_aggregate_counts() {
        let g = model();
        let engine = TraceEngine::new(&g);
        let img = image();
        let attribution = engine.attribute(&g, &img);
        let aggregate = engine.true_counts(&g, &img);
        assert_eq!(attribution.total(), aggregate);
    }

    #[test]
    fn every_node_is_attributed() {
        let g = model();
        let engine = TraceEngine::new(&g);
        let attribution = engine.attribute(&g, &image());
        assert_eq!(attribution.nodes.len(), g.nodes().len());
        assert_eq!(attribution.nodes[0].name, "conv");
        assert!(attribution.nodes[0].counts.get(HpcEvent::Instructions) > 0);
    }

    #[test]
    fn fc_dominates_cache_misses_in_this_model() {
        // The fc weight matrix (256x4) is bigger than the conv's (4x9), so
        // the fc layer must dominate weight-fetch misses.
        let g = model();
        let engine = TraceEngine::new(&g);
        let attribution = engine.attribute(&g, &image());
        let dominant = attribution.dominant_node(HpcEvent::CacheMisses).unwrap();
        assert_eq!(dominant.name, "fc");
        assert!(attribution.share(3, HpcEvent::CacheMisses) > 0.3);
    }

    #[test]
    fn shares_sum_to_one_per_event() {
        let g = model();
        let engine = TraceEngine::new(&g);
        let attribution = engine.attribute(&g, &image());
        let total: f64 = (0..attribution.nodes.len())
            .map(|i| attribution.share(i, HpcEvent::Instructions))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
