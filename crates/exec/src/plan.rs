//! Precomputed per-node trace plans.
//!
//! Everything about a node's trace that depends only on the model — code
//! regions, weight/bias/output stream ranges, per-tile weight-slice
//! geometry, loop trip counts, instruction budgets — is computed once at
//! [`TraceEngine`](crate::TraceEngine) construction. At measure time the
//! only remaining data-dependent work is counting the active elements of
//! each input-activation tile, which selects how many lines of each
//! precomputed weight slice are streamed.

use std::sync::Arc;

use advhunter_nn::{Graph, MatKernels, Op, Src};
use advhunter_tensor::ops::KernelVariant;
use advhunter_uarch::LINE_BYTES;

use crate::layout::{MemoryLayout, Region};

/// Where a matrix node's trace reads its input activations from at
/// measure time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum InputSlot {
    /// The image being measured.
    Image,
    /// The workspace output of node `j`.
    Node(usize),
}

/// One input-activation tile of a matrix kernel: the address of the
/// activation line the kernel inspects and the weight-line slice it streams
/// when the tile is active.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TilePlan {
    /// Address of the tile's activation line.
    pub x_addr: u64,
    /// First address of the tile's weight-line slice.
    pub w_addr: u64,
    /// Length of the slice in lines; the active-element count decides how
    /// many of them are streamed.
    pub slice: u64,
}

/// The static trace of one node.
#[derive(Debug, Clone)]
pub(crate) enum NodePlan {
    /// Tiled sparsity-aware GEMM/conv kernel (`Conv2d`, `DwConv2d`,
    /// `Linear`).
    Matrix {
        /// Kernel code region.
        code: Region,
        /// Where the input activations live at measure time.
        input: InputSlot,
        /// Per-tile activation/weight geometry.
        tiles: Vec<TilePlan>,
        /// Trip count of the outer loop (== number of tiles).
        in_lines: u64,
        /// Trip count of the inner loop.
        w_lines: u64,
        /// Bias stream.
        bias: Region,
        /// Output stream.
        out: Region,
        /// Multiply-accumulate budget (dimension-only).
        macs: u64,
    },
    /// Dense streaming op, with an optional leading parameter/second-input
    /// stream (folded batch-norm parameters, or the second operand of
    /// `Add`/`Concat`/`ScaleChannels`).
    Elementwise {
        /// Kernel code region.
        code: Region,
        /// Streamed before the main input (parameter block or second
        /// operand), if any.
        pre_load: Option<Region>,
        /// Main input stream.
        input: Region,
        /// Output stream.
        out: Region,
        /// Instruction budget (dimension-only).
        instructions: u64,
    },
    /// A view — no data movement.
    Flatten,
}

/// The full static trace plan of a model, in node order.
#[derive(Debug, Clone)]
pub(crate) struct TracePlan {
    pub nodes: Vec<NodePlan>,
    /// Pre-packed GEMM kernels for the forward pass, shared read-only
    /// across every worker thread. Empty (reference loops) under
    /// `ADVHUNTER_TUNE=reference`.
    pub kernels: Arc<MatKernels>,
    /// How many matrix nodes dispatch through each variant, indexed like
    /// [`KernelVariant::ALL`] — precomputed so the hot path's dispatch
    /// telemetry is three counter adds.
    pub variant_counts: [u64; KernelVariant::ALL.len()],
}

impl TracePlan {
    /// Precomputes the plan for `graph` under `layout`, storing the packed
    /// kernel table the measurement forward pass dispatches through.
    pub fn new(graph: &Graph, layout: &MemoryLayout, kernels: Arc<MatKernels>) -> Self {
        let shapes = graph.single_image_shapes();
        let len_of = |src: &Src| -> usize {
            match src {
                Src::Input => graph.input_dims().iter().product(),
                Src::Node(j) => shapes[*j].iter().product(),
            }
        };
        let shape_of = |src: &Src| -> &[usize] {
            match src {
                Src::Input => graph.input_dims(),
                Src::Node(j) => &shapes[*j],
            }
        };

        let mut nodes = Vec::with_capacity(graph.nodes().len());
        for (i, node) in graph.nodes().iter().enumerate() {
            let code = layout.node_code[i];
            let out = layout.node_outputs[i];
            let plan = match &node.op {
                Op::Conv2d(l) => {
                    let s = shape_of(&node.inputs[0]);
                    matrix_plan(
                        code,
                        &node.inputs[0],
                        layout.input_region(&node.inputs, 0),
                        layout.node_weights[i][0],
                        layout.node_weights[i][1],
                        out,
                        l.spec.mac_count(s[1], s[2]),
                    )
                }
                Op::DwConv2d(l) => {
                    let s = shape_of(&node.inputs[0]);
                    let (oh, ow) = l.spec.out_hw(s[1], s[2]);
                    let macs = (s[0] * l.spec.kernel * l.spec.kernel * oh * ow) as u64;
                    matrix_plan(
                        code,
                        &node.inputs[0],
                        layout.input_region(&node.inputs, 0),
                        layout.node_weights[i][0],
                        layout.node_weights[i][1],
                        out,
                        macs,
                    )
                }
                Op::Linear(l) => matrix_plan(
                    code,
                    &node.inputs[0],
                    layout.input_region(&node.inputs, 0),
                    layout.node_weights[i][0],
                    layout.node_weights[i][1],
                    out,
                    l.weight.len() as u64,
                ),
                Op::BatchNorm2d(_) => NodePlan::Elementwise {
                    code,
                    pre_load: Some(layout.node_weights[i][0]),
                    input: layout.input_region(&node.inputs, 0),
                    out,
                    instructions: len_of(&node.inputs[0]) as u64 * 2,
                },
                Op::ReLU | Op::LeakyReLU { .. } | Op::SiLU | Op::Sigmoid | Op::Tanh => {
                    NodePlan::Elementwise {
                        code,
                        pre_load: None,
                        input: layout.input_region(&node.inputs, 0),
                        out,
                        instructions: len_of(&node.inputs[0]) as u64 * 2,
                    }
                }
                Op::MaxPool2d { .. } | Op::AvgPool2d { .. } | Op::GlobalAvgPool => {
                    NodePlan::Elementwise {
                        code,
                        pre_load: None,
                        input: layout.input_region(&node.inputs, 0),
                        out,
                        instructions: len_of(&node.inputs[0]) as u64,
                    }
                }
                Op::Flatten => NodePlan::Flatten,
                Op::Add | Op::ConcatChannels | Op::ScaleChannels => NodePlan::Elementwise {
                    code,
                    pre_load: Some(layout.input_region(&node.inputs, 1)),
                    input: layout.input_region(&node.inputs, 0),
                    out,
                    instructions: (len_of(&node.inputs[0]) + len_of(&node.inputs[1])) as u64,
                },
            };
            nodes.push(plan);
        }
        let variant_counts = kernels.variant_counts();
        Self {
            nodes,
            kernels,
            variant_counts,
        }
    }
}

/// Builds the per-tile geometry of a matrix node: tile `i` of `in_lines`
/// inspects one activation line and owns the weight-line slice
/// `[i*w/in, (i+1)*w/in)`.
fn matrix_plan(
    code: Region,
    src: &Src,
    x_region: Region,
    w_region: Region,
    bias: Region,
    out: Region,
    macs: u64,
) -> NodePlan {
    // One tile per activation line: a line-aligned region of `len` floats
    // spans exactly `ceil(len / FLOATS_PER_LINE)` lines, which is also the
    // tile count `tile_active_counts` produces for the tensor.
    let in_lines = x_region.lines();
    let w_lines = w_region.lines();
    let mut tiles = Vec::with_capacity(in_lines as usize);
    for i in 0..in_lines {
        // `in_lines > 0` inside the loop, so the clamp cannot underflow
        // (the pre-plan code subtracted unconditionally and would have
        // underflowed on an empty region).
        let x_line = i.min(in_lines - 1);
        let start = i * w_lines / in_lines;
        let end = (i + 1) * w_lines / in_lines;
        tiles.push(TilePlan {
            x_addr: x_region.base + x_line * LINE_BYTES,
            w_addr: w_region.base + start * LINE_BYTES,
            slice: end - start,
        });
    }
    let input = match src {
        Src::Input => InputSlot::Image,
        Src::Node(j) => InputSlot::Node(*j),
    };
    NodePlan::Matrix {
        code,
        input,
        tiles,
        in_lines,
        w_lines,
        bias,
        out,
        macs,
    }
}
