//! The instrumented-inference engine.

use std::sync::{Arc, Mutex, OnceLock};

use advhunter_nn::{Graph, Mode, Workspace};
use advhunter_runtime::{parallel_map_with, Parallelism};
use advhunter_telemetry::{Counter, Histogram};
use advhunter_tensor::ops::KernelVariant;
use advhunter_tensor::Tensor;
use advhunter_uarch::{CounterGroup, HpcCounts, HpcEvent, HpcSample, MachineConfig, Sampler};
use rand::Rng;

/// Telemetry handles for the measurement hot path, registered once in the
/// global registry. Observational only — the measured counts, predictions,
/// and noise streams are untouched, and stage spans read the clock only
/// when telemetry is enabled.
struct EngineMetrics {
    measurements: Arc<Counter>,
    scratch_pool_hits: Arc<Counter>,
    scratch_pool_misses: Arc<Counter>,
    forward_ns: Arc<Histogram>,
    trace_ns: Arc<Histogram>,
    /// Cumulative simulated-HPC event totals, indexed like
    /// [`HpcEvent::ALL`].
    event_totals: [Arc<Counter>; HpcEvent::ALL.len()],
    /// Matrix-node dispatches through each packed-kernel variant, indexed
    /// like [`KernelVariant::ALL`].
    gemm_dispatch: [Arc<Counter>; KernelVariant::ALL.len()],
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = advhunter_telemetry::global();
        EngineMetrics {
            measurements: r.counter(
                "advhunter_exec_measurements_total",
                "Instrumented inferences replayed through the simulated machine",
            ),
            scratch_pool_hits: r.counter(
                "advhunter_exec_scratch_pool_hits_total",
                "Measurements that recycled a pooled TraceScratch",
            ),
            scratch_pool_misses: r.counter(
                "advhunter_exec_scratch_pool_misses_total",
                "Measurements that had to allocate a fresh TraceScratch",
            ),
            forward_ns: r.histogram(
                "advhunter_exec_forward_ns",
                "Wall time of the model forward pass per measurement",
            ),
            trace_ns: r.histogram(
                "advhunter_exec_trace_ns",
                "Wall time of the trace replay through the cache/branch model per measurement",
            ),
            event_totals: HpcEvent::ALL.map(|event| {
                // Prometheus metric names cannot contain '-'.
                let name = format!(
                    "advhunter_exec_event_{}_total",
                    event.perf_name().replace('-', "_").to_lowercase()
                );
                r.counter(
                    &name,
                    "Cumulative noise-free simulated counts for this HPC event",
                )
            }),
            gemm_dispatch: KernelVariant::ALL.map(|variant| {
                let name = format!("advhunter_gemm_dispatch_{}_total", variant.label());
                r.counter(
                    &name,
                    "Matrix nodes dispatched through this packed-kernel variant",
                )
            }),
        }
    })
}

use crate::kernels::tile_active_counts_into;
use crate::layout::MemoryLayout;
use crate::plan::{InputSlot, NodePlan, TracePlan};
use crate::FLOATS_PER_LINE;

/// One measured inference: the model's hard-label prediction plus the HPC
/// reading — exactly what the paper's defender observes.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The hard-label prediction (the only model output the defender sees).
    pub predicted: usize,
    /// Mean of `R` noisy counter readings (the paper's `Ē` values).
    pub sample: HpcSample,
    /// The underlying noise-free counts (not available to a real defender;
    /// exposed for analysis and tests).
    pub counts: HpcCounts,
}

/// Reusable per-measurement buffers: the forward-pass workspace plus the
/// tile-activity scratch. One `TraceScratch` serves any number of
/// sequential measurements; give each worker thread its own.
#[derive(Debug, Clone)]
pub struct TraceScratch {
    pub(crate) ws: Workspace,
    pub(crate) tiles: Vec<u8>,
    /// The simulated machine, reset to cold before every measurement so its
    /// reuse is invisible in the counts.
    pub(crate) group: CounterGroup,
}

/// Replays a model's forward pass as a memory/branch/instruction trace
/// through the simulated machine. See the crate docs for the execution
/// model.
///
/// Construction precomputes a static per-node trace plan (code and stream
/// ranges, per-tile weight-slice geometry, loop trip counts); each
/// measurement only runs the model forward into a reusable workspace and
/// counts active tiles — no allocation on the hot path.
#[derive(Debug)]
pub struct TraceEngine {
    layout: MemoryLayout,
    machine: MachineConfig,
    sampler: Sampler,
    pub(crate) plan: TracePlan,
    /// Scratch buffers recycled across `measure`/`true_counts` calls.
    pool: Mutex<Vec<TraceScratch>>,
}

impl Clone for TraceEngine {
    fn clone(&self) -> Self {
        Self {
            layout: self.layout.clone(),
            machine: self.machine,
            sampler: self.sampler,
            plan: self.plan.clone(),
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl TraceEngine {
    /// Engine with the default machine and the paper's `R = 10` sampler.
    pub fn new(graph: &Graph) -> Self {
        Self::with_config(graph, MachineConfig::default(), Sampler::default())
    }

    /// Engine with explicit machine and measurement configuration.
    ///
    /// Construction autotunes and pre-packs the graph's GEMM kernels (see
    /// [`tuned_kernels`](crate::tuned_kernels)); the per-image path then
    /// does zero repacking or tuning work.
    pub fn with_config(graph: &Graph, machine: MachineConfig, sampler: Sampler) -> Self {
        Self::with_config_tuned(graph, machine, sampler, None)
    }

    /// [`with_config`](Self::with_config) with a persisted tuning decision
    /// table: verdicts already in `backend` skip the plan-time benchmarks,
    /// and fresh verdicts are stored back for the next process.
    pub fn with_config_tuned(
        graph: &Graph,
        machine: MachineConfig,
        sampler: Sampler,
        backend: Option<&dyn crate::TunePersistence>,
    ) -> Self {
        let layout = MemoryLayout::new(graph);
        let kernels = Arc::new(crate::tune::tuned_kernels(graph, backend));
        let plan = TracePlan::new(graph, &layout, kernels);
        Self {
            layout,
            machine,
            sampler,
            plan,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The address layout in use.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The simulated machine configuration in use.
    pub fn machine_config(&self) -> MachineConfig {
        self.machine
    }

    /// The measurement sampler in use.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Allocates a fresh scratch for `graph` (which must be the graph this
    /// engine was built for). The `*_with` measurement methods reuse it
    /// across calls; the plain methods draw from an internal pool instead.
    pub fn scratch(&self, graph: &Graph) -> TraceScratch {
        TraceScratch {
            ws: graph.workspace(1),
            tiles: Vec::new(),
            group: CounterGroup::new(self.machine),
        }
    }

    fn pooled_scratch(&self, graph: &Graph) -> TraceScratch {
        let recycled = self.pool.lock().expect("scratch pool poisoned").pop();
        match recycled {
            Some(scratch) => {
                engine_metrics().scratch_pool_hits.inc();
                scratch
            }
            None => {
                engine_metrics().scratch_pool_misses.inc();
                self.scratch(graph)
            }
        }
    }

    fn recycle(&self, scratch: TraceScratch) {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// A pooled scratch that recycles itself when dropped — the per-worker
    /// state of [`measure_batch`](Self::measure_batch), so repeated batch
    /// calls reuse buffers instead of allocating per worker per call.
    ///
    /// External measurement loops (the monitor's micro-batch workers) use
    /// this to pay the pool mutex once per worker per batch instead of
    /// twice per image: take one guard per worker, deref it into
    /// [`measure_indexed_with`](Self::measure_indexed_with), and let the
    /// drop return the buffers.
    pub fn worker_scratch(&self, graph: &Graph) -> PooledScratch<'_> {
        PooledScratch {
            engine: self,
            scratch: Some(self.pooled_scratch(graph)),
        }
    }

    /// Noise-free HPC counts of one inference on a cold machine.
    ///
    /// Deterministic: the same model and image always produce the same
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input shape.
    pub fn true_counts(&self, graph: &Graph, image: &Tensor) -> HpcCounts {
        let mut scratch = self.pooled_scratch(graph);
        let (_, counts) = self.run_with(graph, image, &mut scratch);
        self.recycle(scratch);
        counts
    }

    /// Measures one inference the way the defender does: run it, read the
    /// counters `R` times with noise, average, and note the hard-label
    /// prediction.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input shape.
    pub fn measure(&self, graph: &Graph, image: &Tensor, rng: &mut impl Rng) -> Measurement {
        let mut scratch = self.pooled_scratch(graph);
        let m = self.measure_with(graph, image, rng, &mut scratch);
        self.recycle(scratch);
        m
    }

    /// [`measure`](Self::measure) with caller-owned scratch buffers —
    /// the allocation-free form for measurement loops.
    pub fn measure_with(
        &self,
        graph: &Graph,
        image: &Tensor,
        rng: &mut impl Rng,
        scratch: &mut TraceScratch,
    ) -> Measurement {
        let (predicted, counts) = self.run_with(graph, image, scratch);
        let sample = self.sampler.sample(&counts, rng);
        Measurement {
            predicted,
            sample,
            counts,
        }
    }

    /// Measures one inference using the private noise stream of item
    /// `index` under batch seed `seed` — the single-item unit of
    /// [`measure_batch`](Self::measure_batch). Pure in `(image, seed,
    /// index)`.
    pub fn measure_indexed(
        &self,
        graph: &Graph,
        image: &Tensor,
        seed: u64,
        index: u64,
    ) -> Measurement {
        let mut scratch = self.pooled_scratch(graph);
        let m = self.measure_indexed_with(graph, image, seed, index, &mut scratch);
        self.recycle(scratch);
        m
    }

    /// [`measure_indexed`](Self::measure_indexed) with caller-owned scratch
    /// buffers.
    pub fn measure_indexed_with(
        &self,
        graph: &Graph,
        image: &Tensor,
        seed: u64,
        index: u64,
        scratch: &mut TraceScratch,
    ) -> Measurement {
        let (predicted, counts) = self.run_with(graph, image, scratch);
        let sample = self.sampler.sample_indexed(&counts, seed, index);
        Measurement {
            predicted,
            sample,
            counts,
        }
    }

    /// Measures a whole batch, fanning the per-image trace simulations out
    /// over the runtime's worker pool. Every worker replays its images
    /// through a private cold [`CounterGroup`] (cache hierarchy + branch
    /// predictor) using its own reusable scratch, and item `i` draws
    /// measurement noise from the stream seeded by `derive_seed(seed, i)` —
    /// so the result is bit-for-bit identical for every thread count,
    /// including [`Parallelism::sequential`], and `out[i]` equals
    /// [`measure_indexed`](Self::measure_indexed)`(graph, &images[i],
    /// seed, i)`.
    ///
    /// # Panics
    ///
    /// Panics if any image does not match the model's input shape.
    pub fn measure_batch(
        &self,
        graph: &Graph,
        images: &[Tensor],
        seed: u64,
        parallelism: &Parallelism,
    ) -> Vec<Measurement> {
        parallel_map_with(
            parallelism,
            images,
            || self.worker_scratch(graph),
            |guard, i, image| self.measure_indexed_with(graph, image, seed, i as u64, guard),
        )
    }

    fn run_with(
        &self,
        graph: &Graph,
        image: &Tensor,
        scratch: &mut TraceScratch,
    ) -> (usize, HpcCounts) {
        assert_eq!(
            image.shape().dims(),
            graph.input_dims(),
            "image shape must match model input"
        );
        let metrics = engine_metrics();
        metrics.measurements.inc();
        for (count, counter) in self.plan.variant_counts.iter().zip(&metrics.gemm_dispatch) {
            counter.add(*count);
        }
        let TraceScratch { ws, tiles, group } = scratch;
        // A CHW image is a batch of one — same flat data, no copy needed.
        let forward_span = metrics.forward_ns.span();
        graph.forward_with_kernels(image, Mode::Eval, ws, &self.plan.kernels);
        let predicted = argmax_row(ws.output());
        forward_span.finish();

        // Reused machine, but reset to cold: identical to a fresh one.
        let trace_span = metrics.trace_ns.span();
        group.reset_machine();
        group.enable();
        for node_plan in &self.plan.nodes {
            execute_node(group, node_plan, image, ws, tiles);
        }
        group.disable();
        trace_span.finish();
        let counts = group.read();
        for (event, counter) in HpcEvent::ALL.iter().zip(&metrics.event_totals) {
            counter.add(counts.get(*event));
        }
        (predicted, counts)
    }
}

/// Per-worker scratch borrowed from the engine's pool; returns it on drop
/// (one pool-mutex hit per worker per batch, not per image). Derefs to
/// [`TraceScratch`] so it plugs straight into
/// [`TraceEngine::measure_indexed_with`].
pub struct PooledScratch<'a> {
    engine: &'a TraceEngine,
    scratch: Option<TraceScratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = TraceScratch;

    fn deref(&self) -> &TraceScratch {
        self.scratch
            .as_ref()
            .expect("guard holds scratch until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut TraceScratch {
        self.scratch
            .as_mut()
            .expect("guard holds scratch until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.engine.recycle(scratch);
        }
    }
}

/// Emits the trace of one node: its static plan plus the data-dependent
/// tile-activity counts of its input activations.
pub(crate) fn execute_node(
    group: &mut CounterGroup,
    plan: &NodePlan,
    image: &Tensor,
    ws: &Workspace,
    tiles_buf: &mut Vec<u8>,
) {
    match plan {
        NodePlan::Matrix {
            code,
            input,
            tiles,
            in_lines,
            w_lines,
            bias,
            out,
            macs,
        } => {
            group.fetch_range(code.base, code.lines());
            let data = match input {
                InputSlot::Image => image.data(),
                InputSlot::Node(j) => ws.node_output(*j).data(),
            };
            tile_active_counts_into(data, tiles_buf);
            debug_assert_eq!(
                tiles_buf.len(),
                tiles.len(),
                "tile plan out of sync with activation size"
            );
            // The activation lines are consecutive (tile `i` inspects line
            // `i`), so runs of tiles that stream no weight lines batch
            // their activation loads into one range — semantically one
            // `load` per line in the same order, minus per-call overhead.
            let mut run_base = 0u64;
            let mut run_len = 0u64;
            for (tile, &active) in tiles.iter().zip(tiles_buf.iter()) {
                if run_len == 0 {
                    run_base = tile.x_addr;
                }
                run_len += 1;
                if active > 0 && tile.slice > 0 {
                    group.stream_read(run_base, run_len);
                    run_len = 0;
                    // Fetch only the weight rows of the tile's active
                    // neurons.
                    let take = (tile.slice * active as u64).div_ceil(FLOATS_PER_LINE as u64);
                    group.stream_read(tile.w_addr, take.min(tile.slice));
                }
            }
            if run_len > 0 {
                group.stream_read(run_base, run_len);
            }
            group.stream_read(bias.base, bias.lines());
            group.stream_write(out.base, out.lines());

            // Dimension-only control flow: outer loop over input lines,
            // inner loop over weight slice, write-out loop.
            group.loop_branches(code.base, *in_lines);
            group.loop_branches(code.base + 8, (*w_lines).max(1));
            group.loop_branches(code.base + 16, out.lines());
            group.retire_instructions(macs / 4 + out.lines() * 4);
        }
        NodePlan::Elementwise {
            code,
            pre_load,
            input,
            out,
            instructions,
        } => {
            if let Some(r) = pre_load {
                group.stream_read(r.base, r.lines());
            }
            group.fetch_range(code.base, code.lines());
            group.stream_read(input.base, input.lines());
            group.stream_write(out.base, out.lines());
            group.loop_branches(code.base, input.lines().max(1));
            group.retire_instructions(*instructions);
        }
        NodePlan::Flatten => {
            // A view: no data movement, negligible instructions.
            group.retire_instructions(4);
        }
    }
}

fn argmax_row(logits: &Tensor) -> usize {
    let c = logits.shape().dim(1);
    logits.data()[..c]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advhunter_nn::GraphBuilder;
    use advhunter_uarch::{HpcEvent, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Graph {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c1 = b.conv2d("c1", input, 8, 3, 1, 1, &mut rng);
        let r1 = b.relu("r1", c1);
        let c2 = b.conv2d("c2", r1, 8, 3, 1, 1, &mut rng);
        let r2 = b.relu("r2", c2);
        let f = b.flatten("f", r2);
        b.linear("fc", f, 4, &mut rng);
        b.build()
    }

    fn image(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        advhunter_tensor::init::uniform(&mut rng, &[1, 8, 8], 0.0, 1.0)
    }

    #[test]
    fn true_counts_are_deterministic() {
        let g = model();
        let e = TraceEngine::new(&g);
        let img = image(0);
        assert_eq!(e.true_counts(&g, &img), e.true_counts(&g, &img));
    }

    #[test]
    fn control_flow_events_are_input_independent() {
        let g = model();
        let e = TraceEngine::new(&g);
        let a = e.true_counts(&g, &image(1));
        let b = e.true_counts(&g, &image(2));
        for ev in [
            HpcEvent::Instructions,
            HpcEvent::Branches,
            HpcEvent::BranchMisses,
        ] {
            assert_eq!(a.get(ev), b.get(ev), "{ev} must not depend on the input");
        }
        assert_eq!(
            a.get(HpcEvent::L1iLoadMisses),
            b.get(HpcEvent::L1iLoadMisses),
            "instruction-cache behavior is input-independent"
        );
    }

    #[test]
    fn data_flow_events_depend_on_activations() {
        let g = model();
        let e = TraceEngine::new(&g);
        // Many different images: cache-miss counts must vary.
        let misses: Vec<u64> = (0..8)
            .map(|s| e.true_counts(&g, &image(s)).get(HpcEvent::CacheMisses))
            .collect();
        let distinct: std::collections::HashSet<u64> = misses.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "cache misses identical across inputs: {misses:?}"
        );
    }

    #[test]
    fn a_dark_image_touches_fewer_weight_lines() {
        let g = model();
        let e = TraceEngine::new(&g);
        let dark = Tensor::zeros(&[1, 8, 8]);
        let bright = Tensor::full(&[1, 8, 8], 0.9);
        let dark_misses = e.true_counts(&g, &dark).get(HpcEvent::CacheMisses);
        let bright_misses = e.true_counts(&g, &bright).get(HpcEvent::CacheMisses);
        assert!(
            dark_misses < bright_misses,
            "all-zero input must skip weight tiles: {dark_misses} vs {bright_misses}"
        );
    }

    #[test]
    fn measure_returns_prediction_and_noisy_sample() {
        let g = model();
        let e = TraceEngine::with_config(
            &g,
            MachineConfig::default(),
            Sampler {
                noise: NoiseModel::default(),
                repeats: 5,
            },
        );
        let mut rng = StdRng::seed_from_u64(7);
        let m = e.measure(&g, &image(3), &mut rng);
        assert!(m.predicted < 4);
        let truth = m.counts.get(HpcEvent::Instructions) as f64;
        let measured = m.sample.get(HpcEvent::Instructions);
        // Background noise adds up to ~2 * background_mean * weight counts;
        // this toy model is tiny, so allow that absolute slack.
        assert!(
            (measured - truth).abs() < 0.1 * truth + 5_000.0,
            "noisy sample too far from truth: {measured} vs {truth}"
        );
    }

    #[test]
    fn prediction_matches_plain_forward() {
        let g = model();
        let e = TraceEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        for s in 0..5 {
            let img = image(s);
            let m = e.measure(&g, &img, &mut rng);
            let batch = Tensor::stack(std::slice::from_ref(&img));
            assert_eq!(m.predicted, g.predict(&batch)[0]);
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let g = model();
        let e = TraceEngine::new(&g);
        let mut reused = e.scratch(&g);
        for s in 0..6 {
            let img = image(s);
            let mut fresh = e.scratch(&g);
            let a = e.measure_indexed_with(&g, &img, 99, s, &mut reused);
            let b = e.measure_indexed_with(&g, &img, 99, s, &mut fresh);
            assert_eq!(a, b, "scratch reuse changed measurement {s}");
            assert_eq!(a, e.measure_indexed(&g, &img, 99, s));
        }
    }

    #[test]
    fn packed_kernels_leave_the_trace_untouched() {
        let g = model();
        let packed = TraceEngine::new(&g);
        // Same engine with the kernel table emptied: the forward pass runs
        // the reference loops instead of the packed panels.
        let mut reference = packed.clone();
        reference.plan.kernels = Arc::new(advhunter_nn::MatKernels::default());
        reference.plan.variant_counts = Default::default();
        assert!(packed.plan.kernels.iter().count() > 0, "engine must pack");
        for s in 0..4 {
            let img = image(s);
            assert_eq!(
                packed.true_counts(&g, &img),
                reference.true_counts(&g, &img),
                "packed dispatch changed the simulated trace for image {s}"
            );
        }
    }

    #[test]
    fn cloned_engine_measures_identically() {
        let g = model();
        let e = TraceEngine::new(&g);
        let img = image(2);
        // Warm the pool, then clone (clones start with an empty pool).
        let _ = e.true_counts(&g, &img);
        let e2 = e.clone();
        assert_eq!(e.true_counts(&g, &img), e2.true_counts(&g, &img));
    }

    #[test]
    fn measure_batch_is_thread_count_invariant() {
        let g = model();
        let e = TraceEngine::new(&g);
        let images: Vec<Tensor> = (0..6).map(image).collect();
        let seq = e.measure_batch(&g, &images, 42, &Parallelism::sequential());
        for threads in [2, 4] {
            let par = e.measure_batch(&g, &images, 42, &Parallelism::new(threads));
            assert_eq!(seq, par, "thread count {threads} changed measurements");
        }
    }

    #[test]
    fn measure_batch_items_match_measure_indexed() {
        let g = model();
        let e = TraceEngine::new(&g);
        let images: Vec<Tensor> = (0..4).map(image).collect();
        let batch = e.measure_batch(&g, &images, 7, &Parallelism::new(2));
        for (i, m) in batch.iter().enumerate() {
            assert_eq!(*m, e.measure_indexed(&g, &images[i], 7, i as u64));
        }
    }

    #[test]
    fn per_item_noise_streams_are_independent_of_neighbours() {
        let g = model();
        let e = TraceEngine::new(&g);
        let a: Vec<Tensor> = vec![image(1), image(2)];
        let b: Vec<Tensor> = vec![image(1), image(3)];
        let ma = e.measure_batch(&g, &a, 11, &Parallelism::sequential());
        let mb = e.measure_batch(&g, &b, 11, &Parallelism::sequential());
        assert_eq!(ma[0], mb[0], "item 0 must not depend on its neighbours");
    }

    #[test]
    fn counts_scale_with_model_size() {
        let small = model();
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c1 = b.conv2d("c1", input, 32, 3, 1, 1, &mut rng);
        let r1 = b.relu("r1", c1);
        let f = b.flatten("f", r1);
        b.linear("fc", f, 4, &mut rng);
        let big = b.build();

        let img = image(4);
        let es = TraceEngine::new(&small);
        let eb = TraceEngine::new(&big);
        assert!(
            eb.true_counts(&big, &img).get(HpcEvent::Instructions)
                > es.true_counts(&small, &img).get(HpcEvent::Instructions) / 2,
            "bigger model retires comparable or more instructions"
        );
    }
}
