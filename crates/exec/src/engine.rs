//! The instrumented-inference engine.

use advhunter_nn::{Graph, Mode};
use advhunter_runtime::{parallel_map, Parallelism};
use advhunter_tensor::Tensor;
use advhunter_uarch::{CounterGroup, HpcCounts, HpcSample, MachineConfig, Sampler};
use rand::Rng;

use crate::kernels::trace_node;
use crate::layout::MemoryLayout;

/// One measured inference: the model's hard-label prediction plus the HPC
/// reading — exactly what the paper's defender observes.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The hard-label prediction (the only model output the defender sees).
    pub predicted: usize,
    /// Mean of `R` noisy counter readings (the paper's `Ē` values).
    pub sample: HpcSample,
    /// The underlying noise-free counts (not available to a real defender;
    /// exposed for analysis and tests).
    pub counts: HpcCounts,
}

/// Replays a model's forward pass as a memory/branch/instruction trace
/// through the simulated machine. See the crate docs for the execution
/// model.
#[derive(Debug, Clone)]
pub struct TraceEngine {
    layout: MemoryLayout,
    machine: MachineConfig,
    sampler: Sampler,
}

impl TraceEngine {
    /// Engine with the default machine and the paper's `R = 10` sampler.
    pub fn new(graph: &Graph) -> Self {
        Self::with_config(graph, MachineConfig::default(), Sampler::default())
    }

    /// Engine with explicit machine and measurement configuration.
    pub fn with_config(graph: &Graph, machine: MachineConfig, sampler: Sampler) -> Self {
        Self {
            layout: MemoryLayout::new(graph),
            machine,
            sampler,
        }
    }

    /// The address layout in use.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The simulated machine configuration in use.
    pub fn machine_config(&self) -> MachineConfig {
        self.machine
    }

    /// The measurement sampler in use.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Noise-free HPC counts of one inference on a cold machine.
    ///
    /// Deterministic: the same model and image always produce the same
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input shape.
    pub fn true_counts(&self, graph: &Graph, image: &Tensor) -> HpcCounts {
        self.run(graph, image).1
    }

    /// Measures one inference the way the defender does: run it, read the
    /// counters `R` times with noise, average, and note the hard-label
    /// prediction.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the model's input shape.
    pub fn measure(&self, graph: &Graph, image: &Tensor, rng: &mut impl Rng) -> Measurement {
        let (predicted, counts) = self.run(graph, image);
        let sample = self.sampler.sample(&counts, rng);
        Measurement {
            predicted,
            sample,
            counts,
        }
    }

    /// Measures one inference using the private noise stream of item
    /// `index` under batch seed `seed` — the single-item unit of
    /// [`measure_batch`](Self::measure_batch). Pure in `(image, seed,
    /// index)`.
    pub fn measure_indexed(
        &self,
        graph: &Graph,
        image: &Tensor,
        seed: u64,
        index: u64,
    ) -> Measurement {
        let (predicted, counts) = self.run(graph, image);
        let sample = self.sampler.sample_indexed(&counts, seed, index);
        Measurement {
            predicted,
            sample,
            counts,
        }
    }

    /// Measures a whole batch, fanning the per-image trace simulations out
    /// over the runtime's worker pool. Every worker replays its images
    /// through a private cold [`CounterGroup`] (cache hierarchy + branch
    /// predictor), and item `i` draws measurement noise from the stream
    /// seeded by `derive_seed(seed, i)` — so the result is bit-for-bit
    /// identical for every thread count, including
    /// [`Parallelism::sequential`], and `out[i]` equals
    /// [`measure_indexed`](Self::measure_indexed)`(graph, &images[i],
    /// seed, i)`.
    ///
    /// # Panics
    ///
    /// Panics if any image does not match the model's input shape.
    pub fn measure_batch(
        &self,
        graph: &Graph,
        images: &[Tensor],
        seed: u64,
        parallelism: &Parallelism,
    ) -> Vec<Measurement> {
        parallel_map(parallelism, images, |i, image| {
            self.measure_indexed(graph, image, seed, i as u64)
        })
    }

    fn run(&self, graph: &Graph, image: &Tensor) -> (usize, HpcCounts) {
        assert_eq!(
            image.shape().dims(),
            graph.input_dims(),
            "image shape must match model input"
        );
        let batch = Tensor::stack(std::slice::from_ref(image));
        let trace = graph.forward(&batch, Mode::Eval);
        let predicted = argmax_row(trace.output());

        let mut group = CounterGroup::new(self.machine);
        group.enable();
        // Per-node single-image activations drive the trace kernels.
        let single_outputs: Vec<Tensor> = (0..graph.nodes().len())
            .map(|i| trace.node_output(i).image_or_row(0))
            .collect();
        for (i, node) in graph.nodes().iter().enumerate() {
            let inputs: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|src| match src {
                    advhunter_nn::Src::Input => image,
                    advhunter_nn::Src::Node(j) => &single_outputs[*j],
                })
                .collect();
            trace_node(
                &mut group,
                node,
                i,
                &self.layout,
                &inputs,
                &single_outputs[i],
            );
        }
        group.disable();
        (predicted, group.read())
    }
}

fn argmax_row(logits: &Tensor) -> usize {
    let c = logits.shape().dim(1);
    logits.data()[..c]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Extension: extract element 0 along the batch dimension for both NCHW and
/// `[n, features]` tensors.
trait ImageOrRow {
    fn image_or_row(&self, n: usize) -> Tensor;
}

impl ImageOrRow for Tensor {
    fn image_or_row(&self, n: usize) -> Tensor {
        if self.shape().rank() == 4 {
            self.image(n)
        } else {
            let features = self.shape().dim(1);
            Tensor::from_vec(
                self.data()[n * features..(n + 1) * features].to_vec(),
                &[features],
            )
            .expect("row extraction")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advhunter_nn::GraphBuilder;
    use advhunter_uarch::{HpcEvent, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Graph {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c1 = b.conv2d("c1", input, 8, 3, 1, 1, &mut rng);
        let r1 = b.relu("r1", c1);
        let c2 = b.conv2d("c2", r1, 8, 3, 1, 1, &mut rng);
        let r2 = b.relu("r2", c2);
        let f = b.flatten("f", r2);
        b.linear("fc", f, 4, &mut rng);
        b.build()
    }

    fn image(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        advhunter_tensor::init::uniform(&mut rng, &[1, 8, 8], 0.0, 1.0)
    }

    #[test]
    fn true_counts_are_deterministic() {
        let g = model();
        let e = TraceEngine::new(&g);
        let img = image(0);
        assert_eq!(e.true_counts(&g, &img), e.true_counts(&g, &img));
    }

    #[test]
    fn control_flow_events_are_input_independent() {
        let g = model();
        let e = TraceEngine::new(&g);
        let a = e.true_counts(&g, &image(1));
        let b = e.true_counts(&g, &image(2));
        for ev in [
            HpcEvent::Instructions,
            HpcEvent::Branches,
            HpcEvent::BranchMisses,
        ] {
            assert_eq!(a.get(ev), b.get(ev), "{ev} must not depend on the input");
        }
        assert_eq!(
            a.get(HpcEvent::L1iLoadMisses),
            b.get(HpcEvent::L1iLoadMisses),
            "instruction-cache behavior is input-independent"
        );
    }

    #[test]
    fn data_flow_events_depend_on_activations() {
        let g = model();
        let e = TraceEngine::new(&g);
        // Many different images: cache-miss counts must vary.
        let misses: Vec<u64> = (0..8)
            .map(|s| e.true_counts(&g, &image(s)).get(HpcEvent::CacheMisses))
            .collect();
        let distinct: std::collections::HashSet<u64> = misses.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "cache misses identical across inputs: {misses:?}"
        );
    }

    #[test]
    fn a_dark_image_touches_fewer_weight_lines() {
        let g = model();
        let e = TraceEngine::new(&g);
        let dark = Tensor::zeros(&[1, 8, 8]);
        let bright = Tensor::full(&[1, 8, 8], 0.9);
        let dark_misses = e.true_counts(&g, &dark).get(HpcEvent::CacheMisses);
        let bright_misses = e.true_counts(&g, &bright).get(HpcEvent::CacheMisses);
        assert!(
            dark_misses < bright_misses,
            "all-zero input must skip weight tiles: {dark_misses} vs {bright_misses}"
        );
    }

    #[test]
    fn measure_returns_prediction_and_noisy_sample() {
        let g = model();
        let e = TraceEngine::with_config(
            &g,
            MachineConfig::default(),
            Sampler {
                noise: NoiseModel::default(),
                repeats: 5,
            },
        );
        let mut rng = StdRng::seed_from_u64(7);
        let m = e.measure(&g, &image(3), &mut rng);
        assert!(m.predicted < 4);
        let truth = m.counts.get(HpcEvent::Instructions) as f64;
        let measured = m.sample.get(HpcEvent::Instructions);
        // Background noise adds up to ~2 * background_mean * weight counts;
        // this toy model is tiny, so allow that absolute slack.
        assert!(
            (measured - truth).abs() < 0.1 * truth + 5_000.0,
            "noisy sample too far from truth: {measured} vs {truth}"
        );
    }

    #[test]
    fn prediction_matches_plain_forward() {
        let g = model();
        let e = TraceEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        for s in 0..5 {
            let img = image(s);
            let m = e.measure(&g, &img, &mut rng);
            let batch = Tensor::stack(std::slice::from_ref(&img));
            assert_eq!(m.predicted, g.predict(&batch)[0]);
        }
    }

    #[test]
    fn measure_batch_is_thread_count_invariant() {
        let g = model();
        let e = TraceEngine::new(&g);
        let images: Vec<Tensor> = (0..6).map(image).collect();
        let seq = e.measure_batch(&g, &images, 42, &Parallelism::sequential());
        for threads in [2, 4] {
            let par = e.measure_batch(&g, &images, 42, &Parallelism::new(threads));
            assert_eq!(seq, par, "thread count {threads} changed measurements");
        }
    }

    #[test]
    fn measure_batch_items_match_measure_indexed() {
        let g = model();
        let e = TraceEngine::new(&g);
        let images: Vec<Tensor> = (0..4).map(image).collect();
        let batch = e.measure_batch(&g, &images, 7, &Parallelism::new(2));
        for (i, m) in batch.iter().enumerate() {
            assert_eq!(*m, e.measure_indexed(&g, &images[i], 7, i as u64));
        }
    }

    #[test]
    fn per_item_noise_streams_are_independent_of_neighbours() {
        let g = model();
        let e = TraceEngine::new(&g);
        let a: Vec<Tensor> = vec![image(1), image(2)];
        let b: Vec<Tensor> = vec![image(1), image(3)];
        let ma = e.measure_batch(&g, &a, 11, &Parallelism::sequential());
        let mb = e.measure_batch(&g, &b, 11, &Parallelism::sequential());
        assert_eq!(ma[0], mb[0], "item 0 must not depend on its neighbours");
    }

    #[test]
    fn counts_scale_with_model_size() {
        let small = model();
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c1 = b.conv2d("c1", input, 32, 3, 1, 1, &mut rng);
        let r1 = b.relu("r1", c1);
        let f = b.flatten("f", r1);
        b.linear("fc", f, 4, &mut rng);
        let big = b.build();

        let img = image(4);
        let es = TraceEngine::new(&small);
        let eb = TraceEngine::new(&big);
        assert!(
            eb.true_counts(&big, &img).get(HpcEvent::Instructions)
                > es.true_counts(&small, &img).get(HpcEvent::Instructions) / 2,
            "bigger model retires comparable or more instructions"
        );
    }
}
