//! Property-based tests for the instrumented-inference engine.

use advhunter_exec::{tile_active_counts, tile_activity, TraceEngine, ACTIVE_TILE_THRESHOLD};
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::Tensor;
use advhunter_uarch::HpcEvent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_model(seed: u64, channels: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(&[1, 8, 8]);
    let input = b.input();
    let c = b.conv2d("conv", input, channels, 3, 1, 1, &mut rng);
    let r = b.relu("relu", c);
    let f = b.flatten("flat", r);
    b.linear("fc", f, 4, &mut rng);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tile_counts_bound_tile_activity(values in proptest::collection::vec(-2.0f32..2.0, 1..128)) {
        let len = values.len();
        let t = Tensor::from_vec(values, &[len]).unwrap();
        let activity = tile_activity(&t);
        let counts = tile_active_counts(&t);
        prop_assert_eq!(activity.len(), counts.len());
        for (a, c) in activity.iter().zip(counts.iter()) {
            prop_assert_eq!(*a, *c > 0);
            prop_assert!(*c <= 16);
        }
    }

    #[test]
    fn trace_counts_satisfy_perf_identities(seed in 0u64..200, img_seed in 0u64..200) {
        let model = small_model(seed, 3);
        let engine = TraceEngine::new(&model);
        let mut rng = StdRng::seed_from_u64(img_seed);
        let img = advhunter_tensor::init::uniform(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let c = engine.true_counts(&model, &img);
        prop_assert!(c.get(HpcEvent::CacheMisses) <= c.get(HpcEvent::CacheReferences));
        prop_assert_eq!(
            c.get(HpcEvent::CacheMisses),
            c.get(HpcEvent::LlcLoadMisses) + c.get(HpcEvent::LlcStoreMisses)
        );
        prop_assert!(c.get(HpcEvent::BranchMisses) <= c.get(HpcEvent::Branches));
        prop_assert!(c.get(HpcEvent::Branches) < c.get(HpcEvent::Instructions));
        prop_assert!(c.get(HpcEvent::Instructions) > 0);
    }

    #[test]
    fn monotone_inputs_monotone_weight_traffic(level in 0.0f32..1.0) {
        // Scaling an image toward zero can only deactivate tiles, so the
        // traffic of a brighter version is >= that of a darker version.
        let model = small_model(7, 4);
        let engine = TraceEngine::new(&model);
        let mut rng = StdRng::seed_from_u64(11);
        let base = advhunter_tensor::init::uniform(&mut rng, &[1, 8, 8], 0.5, 1.0);
        let dark = base.map(|v| v * level * 0.5);
        let dark_misses = engine.true_counts(&model, &dark).get(HpcEvent::CacheMisses);
        let bright_misses = engine.true_counts(&model, &base).get(HpcEvent::CacheMisses);
        // Not strictly monotone layer-by-layer (ReLU flips possible), but a
        // heavily dimmed input should never touch more lines than the
        // original at the first layer, and empirically never overall.
        prop_assert!(dark_misses <= bright_misses + 50, "{dark_misses} vs {bright_misses}");
    }

    #[test]
    fn subthreshold_images_produce_the_floor_trace(eps in 0.0f32..1.0) {
        let model = small_model(3, 2);
        let engine = TraceEngine::new(&model);
        let silent = Tensor::full(&[1, 8, 8], ACTIVE_TILE_THRESHOLD * 0.9 * eps);
        let a = engine.true_counts(&model, &silent);
        let b = engine.true_counts(&model, &Tensor::zeros(&[1, 8, 8]));
        // All-subthreshold inputs skip the same weight tiles at layer 1;
        // downstream bias-driven activations are identical.
        prop_assert_eq!(a.get(HpcEvent::Instructions), b.get(HpcEvent::Instructions));
    }
}
