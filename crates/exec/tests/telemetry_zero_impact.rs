//! The zero-impact contract, end to end: toggling telemetry recording
//! must never change a measured result, sequentially or across the
//! worker pool.
//!
//! The telemetry switch is process-global, so every enable/disable
//! transition lives inside this single test function — the contract
//! itself (results are a pure function of `(image, seed, index)`) is
//! what makes the interleaving safe to assert.

use advhunter_exec::TraceEngine;
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_runtime::Parallelism;
use advhunter_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_model(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(&[1, 8, 8]);
    let input = b.input();
    let c = b.conv2d("conv", input, 4, 3, 1, 1, &mut rng);
    let r = b.relu("relu", c);
    let f = b.flatten("flat", r);
    b.linear("fc", f, 4, &mut rng);
    b.build()
}

#[test]
fn measurements_are_bit_identical_with_telemetry_on_and_off() {
    let model = small_model(11);
    let engine = TraceEngine::new(&model);
    let mut rng = StdRng::seed_from_u64(7);
    let images: Vec<_> = (0..12)
        .map(|_| init::uniform(&mut rng, &[1, 8, 8], 0.0, 1.0))
        .collect();

    // Single-image path: same (image, seed, index), opposite switch state.
    advhunter_telemetry::enable();
    let on = engine.measure_indexed(&model, &images[0], 42, 0);
    advhunter_telemetry::disable();
    let off = engine.measure_indexed(&model, &images[0], 42, 0);
    assert_eq!(on, off, "telemetry switch changed a single measurement");

    // Batched path over real worker threads, each order of toggling.
    advhunter_telemetry::enable();
    let batch_on = engine.measure_batch(&model, &images, 42, &Parallelism::new(3));
    advhunter_telemetry::disable();
    let batch_off = engine.measure_batch(&model, &images, 42, &Parallelism::new(3));
    advhunter_telemetry::enable();
    assert_eq!(
        batch_on, batch_off,
        "telemetry switch changed a batched measurement"
    );
    assert_eq!(batch_on[0], on, "batch item 0 must equal the single path");

    // Mid-batch toggling from another thread: recording state may change
    // at any instant during a parallel run without perturbing results.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let flipped = std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                advhunter_telemetry::disable();
                advhunter_telemetry::enable();
                std::thread::yield_now();
            }
        });
        let out = engine.measure_batch(&model, &images, 42, &Parallelism::new(3));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        out
    });
    advhunter_telemetry::enable();
    assert_eq!(flipped, batch_on, "mid-run toggling changed measurements");
}
