//! Weight initializers.
//!
//! All initializers draw from a caller-supplied RNG so that every model in
//! the workspace is reproducible from a single seed.

use rand::Rng;

use crate::Tensor;

/// Kaiming/He normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// Appropriate for layers followed by ReLU-family activations.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let w = advhunter_tensor::init::kaiming_normal(&mut rng, &[16, 3, 3, 3], 27);
/// assert_eq!(w.len(), 16 * 27);
/// ```
pub fn kaiming_normal(rng: &mut impl Rng, dims: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(rng, dims, 0.0, std)
}

/// Xavier/Glorot uniform initialization over `[-a, a]` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut impl Rng, dims: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(rng, dims, -a, a)
}

/// Normal initialization with explicit mean and standard deviation.
pub fn normal(rng: &mut impl Rng, dims: &[usize], mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = mean + std * sample_standard_normal(rng);
    }
    t
}

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rng: &mut impl Rng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform init requires lo < hi, got [{lo}, {hi})");
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = rng.gen_range(lo..hi);
    }
    t
}

/// Draws one standard-normal sample via the Box-Muller transform.
///
/// Implemented here rather than via `rand_distr` to keep the dependency set
/// to the crates allowed for this reproduction.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let z = r * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = kaiming_normal(&mut rng, &[4096], 64);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expected = 2.0 / 64.0;
        assert!(
            (var - expected).abs() < 0.2 * expected,
            "var {var} vs {expected}"
        );
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform(&mut rng, &[1000], -0.25, 0.25);
        assert!(w.data().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_uniform(&mut rng, &[2000], 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(w.linf_norm() <= a);
        assert!(
            w.linf_norm() > 0.5 * a,
            "samples should come close to the bound"
        );
    }

    #[test]
    fn same_seed_same_weights() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            normal(&mut a, &[32], 0.0, 1.0).data(),
            normal(&mut b, &[32], 0.0, 1.0).data()
        );
    }

    #[test]
    fn standard_normal_samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }
}
