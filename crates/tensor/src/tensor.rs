use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use crate::{Shape, ShapeError};

/// A contiguous, row-major dense tensor of `f32` values.
///
/// `Tensor` is the single value type that flows through the whole AdvHunter
/// stack: images, layer activations, weights, and gradients. It deliberately
/// has no views or broadcasting beyond what the CNN kernels need.
///
/// # Example
///
/// ```
/// use advhunter_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from raw data interpreted under `dims`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match the element
    /// count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::new(dims, data.len()));
        }
        Ok(Self { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the data under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.rank(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.rank()
        );
        let strides = self.shape.strides();
        let mut off = 0;
        for (axis, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.shape.dim(axis),
                "index {i} out of bounds for axis {axis} of size {}",
                self.shape.dim(axis)
            );
            off += i * s;
        }
        off
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Euclidean (L2) norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute value (L∞ norm).
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().map(|&x| x.abs()).fold(0.0, f32::max)
    }

    /// Number of elements with absolute value above `threshold`.
    pub fn count_above(&self, threshold: f32) -> usize {
        self.data.iter().filter(|&&x| x.abs() > threshold).count()
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    /// Adds `scale * other` into `self` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        self.assert_same_shape(other, "add_scaled");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Extracts image `n` from an NCHW batch as a CHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `n` is out of range.
    pub fn image(&self, n: usize) -> Tensor {
        let (batch, c, h, w) = self.shape.as_nchw();
        assert!(n < batch, "image index {n} out of range for batch {batch}");
        let stride = c * h * w;
        Tensor {
            shape: Shape::new(&[c, h, w]),
            data: self.data[n * stride..(n + 1) * stride].to_vec(),
        }
    }

    /// Stacks CHW tensors into an NCHW batch.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or the shapes are not all equal.
    pub fn stack(images: &[Tensor]) -> Tensor {
        assert!(!images.is_empty(), "cannot stack zero tensors");
        let first = images[0].shape().clone();
        let mut dims = vec![images.len()];
        dims.extend_from_slice(first.dims());
        let mut data = Vec::with_capacity(first.len() * images.len());
        for img in images {
            assert_eq!(
                img.shape(),
                &first,
                "all stacked tensors must share one shape"
            );
            data.extend_from_slice(img.data());
        }
        Tensor {
            shape: Shape::new(&dims),
            data,
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape, other.shape,
            "{op} requires equal shapes: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().copied().take(8).collect();
        write!(
            f,
            "Tensor {{ shape: {}, data: {preview:?}{} }}",
            self.shape,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

impl Div<&Tensor> for &Tensor {
    type Output = Tensor;

    fn div(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a / b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.add_scaled(rhs, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_as_documented() {
        assert!(Tensor::zeros(&[2, 2]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(&[1, 1]), 1.0);
        assert_eq!(eye.at(&[0, 2]), 0.0);
        assert_eq!(eye.sum(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        let err = Tensor::from_vec(vec![1.0, 2.0], &[3]).unwrap_err();
        assert_eq!(err.expected(), 3);
        assert_eq!(err.actual(), 2);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_rejects_out_of_bounds() {
        Tensor::zeros(&[2, 3]).at(&[0, 3]);
    }

    #[test]
    fn reductions_match_hand_computation() {
        let t = Tensor::from_slice(&[1.0, -4.0, 2.5]);
        assert_eq!(t.sum(), -0.5);
        assert!((t.mean() - (-0.5 / 3.0)).abs() < 1e-7);
        assert_eq!(t.max(), 2.5);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.linf_norm(), 4.0);
        assert!((t.l2_norm() - (1.0f32 + 16.0 + 6.25).sqrt()).abs() < 1e-6);
        assert_eq!(t.count_above(1.5), 2);
    }

    #[test]
    fn elementwise_operators() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * &b).data(), &[3.0, 10.0]);
        assert_eq!((&b / &a).data(), &[3.0, 2.5]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn clamp_restricts_range() {
        let mut t = Tensor::from_slice(&[-2.0, 0.5, 3.0]);
        t.clamp_inplace(0.0, 1.0);
        assert_eq!(t.data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn stack_and_image_round_trip() {
        let a = Tensor::full(&[1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2], 2.0);
        let batch = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(batch.shape().dims(), &[2, 1, 2, 2]);
        assert_eq!(batch.image(0), a);
        assert_eq!(batch.image(1), b);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let m = t.reshape(&[2, 2]);
        assert_eq!(m.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_bad_count() {
        Tensor::from_slice(&[1.0]).reshape(&[2]);
    }
}
