//! Dense `f32` tensors with exactly the operations a small CNN stack needs.
//!
//! This crate is the numerical substrate for the AdvHunter reproduction: it
//! provides row-major dense tensors ([`Tensor`]), shape bookkeeping
//! ([`Shape`]), weight initializers ([`init`]), and the convolution /
//! linear-algebra / pooling / activation kernels (in [`ops`]) used by the
//! `advhunter-nn` layer implementations, including every backward pass needed
//! for training and for gradient-based adversarial attacks.
//!
//! Design notes:
//!
//! * Tensors are always contiguous and row-major; views are not needed at
//!   this scale and their absence keeps every kernel branch-free and simple.
//! * Shape errors are programming errors here, so the arithmetic methods
//!   panic with a precise message instead of returning `Result` (each method
//!   documents its panics). Fallible construction from user data goes through
//!   [`Tensor::from_vec`], which does return [`ShapeError`].
//!
//! # Example
//!
//! ```
//! use advhunter_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = advhunter_tensor::ops::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), advhunter_tensor::ShapeError>(())
//! ```

mod shape;
mod tensor;

pub mod init;
pub mod ops;

pub use shape::{Shape, ShapeError};
pub use tensor::Tensor;
