//! 2-D convolution kernels (standard and depthwise) via im2col + GEMM.

use crate::{Shape, Tensor};

use super::gemm::{gemm_packed_bias_into, PackedWeights};
use super::linear::{matmul_at, matmul_bt, matmul_into};

/// Geometry of a 2-D convolution.
///
/// # Example
///
/// ```
/// use advhunter_tensor::ops::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 16, 3, 1, 1);
/// assert_eq!(spec.out_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel && pw >= self.kernel,
            "padded input {ph}x{pw} smaller than kernel {}",
            self.kernel
        );
        (
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        )
    }

    /// Number of weight elements: `out_c * in_c * k * k`.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Multiply-accumulate count for an `h × w` input (dense execution).
    pub fn mac_count(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        (self.out_channels * self.in_channels * self.kernel * self.kernel * oh * ow) as u64
    }
}

/// Lowers one CHW image into the im2col matrix `[C*k*k, oh*ow]`.
fn im2col(img: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    let k = spec.kernel;
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[c * k * k, oh * ow]);
    im2col_into(img, c, h, w, spec, &mut out);
    out
}

/// [`im2col`] into a caller-provided `[C*k*k, oh*ow]` tensor.
///
/// Every position is written exactly once — in-bounds positions get the
/// gathered pixel, padding positions get an explicit 0 — so no up-front
/// clear of the (large) lowering buffer is needed.
fn im2col_into(img: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, out: &mut Tensor) {
    let k = spec.kernel;
    let s = spec.stride;
    let pad = spec.padding;
    let (oh, ow) = spec.out_hw(h, w);
    let rows = c * k * k;
    let cols = oh * ow;
    debug_assert_eq!(out.shape().dims(), &[rows, cols]);
    let od = out.data_mut();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let orow = &mut od[row * cols..(row + 1) * cols];
                // In-bounds ox range for this kx, hoisted out of the inner
                // loop: ix = ox*s + kx - pad must land in [0, w).
                let ox_lo = pad.saturating_sub(kx).div_ceil(s);
                let ox_hi = if w + pad > kx {
                    ((w + pad - kx - 1) / s + 1).min(ow)
                } else {
                    0
                };
                if ox_lo >= ox_hi {
                    orow.fill(0.0);
                    continue;
                }
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        orow[oy * ow..(oy + 1) * ow].fill(0.0);
                        continue;
                    }
                    let ibase = (ch * h + iy as usize) * w;
                    let ix0 = ox_lo * s + kx - pad;
                    orow[oy * ow..oy * ow + ox_lo].fill(0.0);
                    orow[oy * ow + ox_hi..(oy + 1) * ow].fill(0.0);
                    let dst = &mut orow[oy * ow + ox_lo..oy * ow + ox_hi];
                    if s == 1 {
                        dst.copy_from_slice(&img[ibase + ix0..ibase + ix0 + (ox_hi - ox_lo)]);
                    } else {
                        let src = &img[ibase + ix0..];
                        for (i, d) in dst.iter_mut().enumerate() {
                            *d = src[i * s];
                        }
                    }
                }
            }
        }
    }
}

/// Scatters an im2col-shaped gradient back onto the input image (col2im).
fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Vec<f32> {
    let k = spec.kernel;
    let (oh, ow) = spec.out_hw(h, w);
    let ncols = oh * ow;
    let mut img = vec![0.0f32; c * h * w];
    let cd = cols.data();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let crow = &cd[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let ibase = (ch * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        img[ibase + ix as usize] += crow[oy * ow + ox];
                    }
                }
            }
        }
    }
    img
}

/// Standard 2-D convolution over an NCHW batch.
///
/// `weight` is `[out_c, in_c * k * k]` (each row is one flattened filter),
/// `bias` is `[out_c]`. Returns `[n, out_c, oh, ow]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = input.shape().as_nchw();
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    let mut scratch = Conv2dScratch::new(c, h, w, spec);
    conv2d_into(input, weight, bias, spec, &mut scratch, &mut out);
    out
}

/// Reusable intermediate buffers for [`conv2d_into`]: the im2col lowering
/// and the pre-bias GEMM product, both sized for one image of a fixed
/// input geometry.
#[derive(Debug, Clone)]
pub struct Conv2dScratch {
    /// `[C*k*k, oh*ow]` im2col matrix.
    cols: Tensor,
    /// `[out_c, oh*ow]` GEMM product before the bias is applied. Allocated
    /// lazily on the first reference-path convolution: the packed-panel
    /// path ([`conv2d_packed_into`]) fuses the bias into its store and
    /// never needs it, so packed workspaces stay that much smaller.
    gemm: Option<Tensor>,
}

impl Conv2dScratch {
    /// Allocates scratch for convolving one `c × h × w` image under `spec`.
    pub fn new(c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Self {
        let k = spec.kernel;
        let (oh, ow) = spec.out_hw(h, w);
        Self {
            cols: Tensor::zeros(&[c * k * k, oh * ow]),
            gemm: None,
        }
    }
}

/// [`conv2d`] into a caller-provided `[n, out_c, oh, ow]` output tensor,
/// reusing `scratch` for the per-image im2col and GEMM intermediates.
///
/// Every output element is assigned, so neither the output's nor the
/// scratch buffers' prior contents leak into the result; `conv2d` is
/// exactly this over fresh buffers.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec` or `scratch` was built
/// for a different input geometry.
pub fn conv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    scratch: &mut Conv2dScratch,
    out: &mut Tensor,
) {
    let (n, c, h, w) = input.shape().as_nchw();
    check_weights(weight, bias, spec, c);
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(
        out.shape().dims(),
        &[n, spec.out_channels, oh, ow],
        "conv2d output shape mismatch"
    );
    assert_eq!(
        scratch.cols.shape().dims(),
        &[c * spec.kernel * spec.kernel, oh * ow],
        "conv2d scratch built for a different geometry"
    );
    let in_stride = c * h * w;
    let out_stride = spec.out_channels * oh * ow;
    let plane = oh * ow;
    for img in 0..n {
        im2col_into(
            &input.data()[img * in_stride..(img + 1) * in_stride],
            c,
            h,
            w,
            spec,
            &mut scratch.cols,
        );
        let gemm = scratch
            .gemm
            .get_or_insert_with(|| Tensor::zeros(&[spec.out_channels, plane]));
        matmul_into(weight, &scratch.cols, gemm); // [out_c, oh*ow]
        let od = out.data_mut();
        let dst = &mut od[img * out_stride..(img + 1) * out_stride];
        for oc in 0..spec.out_channels {
            let b = bias.data()[oc];
            for (d, &s) in dst[oc * plane..(oc + 1) * plane]
                .iter_mut()
                .zip(&gemm.data()[oc * plane..(oc + 1) * plane])
            {
                *d = s + b;
            }
        }
    }
}

/// [`conv2d_into`] over pre-packed weights: the im2col lowering feeds the
/// packed-panel microkernel family, which fuses the bias into its store —
/// the pre-bias GEMM buffer of `scratch` is never touched or allocated.
/// Bit-for-bit identical to [`conv2d_into`] for any
/// [`super::gemm::KernelVariant`].
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec`, `scratch` was built for a
/// different input geometry, or `packed` does not match the spec's weight
/// geometry.
pub fn conv2d_packed_into(
    input: &Tensor,
    packed: &PackedWeights,
    bias: &Tensor,
    spec: &Conv2dSpec,
    scratch: &mut Conv2dScratch,
    out: &mut Tensor,
) {
    let (n, c, h, w) = input.shape().as_nchw();
    assert_eq!(spec.in_channels, c, "input channels do not match spec");
    assert_eq!(
        (packed.rows(), packed.k()),
        (
            spec.out_channels,
            spec.in_channels * spec.kernel * spec.kernel
        ),
        "packed weights built for a different conv geometry"
    );
    assert_eq!(
        bias.len(),
        spec.out_channels,
        "conv bias length {} does not match {} output channels",
        bias.len(),
        spec.out_channels
    );
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(
        out.shape().dims(),
        &[n, spec.out_channels, oh, ow],
        "conv2d output shape mismatch"
    );
    assert_eq!(
        scratch.cols.shape().dims(),
        &[c * spec.kernel * spec.kernel, oh * ow],
        "conv2d scratch built for a different geometry"
    );
    let in_stride = c * h * w;
    let out_stride = spec.out_channels * oh * ow;
    let plane = oh * ow;
    for img in 0..n {
        im2col_into(
            &input.data()[img * in_stride..(img + 1) * in_stride],
            c,
            h,
            w,
            spec,
            &mut scratch.cols,
        );
        let dst = &mut out.data_mut()[img * out_stride..(img + 1) * out_stride];
        gemm_packed_bias_into(packed, scratch.cols.data(), plane, bias.data(), dst);
    }
}

/// Backward pass of [`conv2d`].
///
/// Returns `(grad_input, grad_weight, grad_bias)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = input.shape().as_nchw();
    let (gn, goc, oh, ow) = grad_out.shape().as_nchw();
    assert_eq!(gn, n, "grad_out batch mismatch");
    assert_eq!(goc, spec.out_channels, "grad_out channel mismatch");
    assert_eq!((oh, ow), spec.out_hw(h, w), "grad_out spatial mismatch");

    let plane = oh * ow;
    let in_stride = c * h * w;
    let out_stride = spec.out_channels * plane;

    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_weight = Tensor::zeros(&[
        spec.out_channels,
        spec.in_channels * spec.kernel * spec.kernel,
    ]);
    let mut grad_bias = Tensor::zeros(&[spec.out_channels]);

    for img in 0..n {
        let cols = im2col(
            &input.data()[img * in_stride..(img + 1) * in_stride],
            c,
            h,
            w,
            spec,
        );
        let gslice = &grad_out.data()[img * out_stride..(img + 1) * out_stride];
        let gy = Tensor::from_vec(gslice.to_vec(), &[spec.out_channels, plane])
            .expect("grad slice shape");
        // dW += dY · colsᵀ
        let gw = matmul_bt(&gy, &cols);
        grad_weight.add_scaled(&gw, 1.0);
        // db += row sums of dY
        for oc in 0..spec.out_channels {
            grad_bias.data_mut()[oc] += gy.data()[oc * plane..(oc + 1) * plane].iter().sum::<f32>();
        }
        // dcols = Wᵀ · dY, then scatter back with col2im.
        let dcols = matmul_at(weight, &gy);
        let gimg = col2im(&dcols, c, h, w, spec);
        grad_input.data_mut()[img * in_stride..(img + 1) * in_stride]
            .iter_mut()
            .zip(gimg.iter())
            .for_each(|(d, &s)| *d += s);
    }
    (grad_input, grad_weight, grad_bias)
}

/// Depthwise 2-D convolution: each channel is convolved with its own `k × k`
/// filter. `weight` is `[c, k * k]`, `bias` is `[c]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec` (whose `in_channels` and
/// `out_channels` must both equal the channel count).
pub fn dwconv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, c, h, w) = input.shape().as_nchw();
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    dwconv2d_into(input, weight, bias, spec, &mut out);
    out
}

/// [`dwconv2d`] into a caller-provided `[n, c, oh, ow]` output tensor.
///
/// Every output element is assigned, so prior contents never leak.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec`.
pub fn dwconv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
    out: &mut Tensor,
) {
    let (n, c, h, w) = input.shape().as_nchw();
    assert_eq!(spec.in_channels, c, "depthwise spec channel mismatch");
    assert_eq!(spec.out_channels, c, "depthwise conv keeps channel count");
    assert_eq!(weight.shape().dims(), &[c, spec.kernel * spec.kernel]);
    assert_eq!(bias.len(), c);
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(
        out.shape().dims(),
        &[n, c, oh, ow],
        "dwconv2d output shape mismatch"
    );
    let k = spec.kernel;
    let id = input.data();
    let wd = weight.data();
    let od = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let wrow = &wd[ch * k * k..(ch + 1) * k * k];
            let b = bias.data()[ch];
            let ibase = (img * c + ch) * h * w;
            let obase = (img * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += wrow[ky * k + kx] * id[ibase + iy as usize * w + ix as usize];
                        }
                    }
                    od[obase + oy * ow + ox] = acc;
                }
            }
        }
    }
}

/// Backward pass of [`dwconv2d`]; returns `(grad_input, grad_weight, grad_bias)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `spec`.
pub fn dwconv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = input.shape().as_nchw();
    let (gn, gc, oh, ow) = grad_out.shape().as_nchw();
    assert_eq!(
        (gn, gc),
        (n, c),
        "depthwise grad_out batch/channel mismatch"
    );
    assert_eq!(
        (oh, ow),
        spec.out_hw(h, w),
        "depthwise grad_out spatial mismatch"
    );
    let k = spec.kernel;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_weight = Tensor::zeros(&[c, k * k]);
    let id = input.data();
    let wd = weight.data();
    let gd = grad_out.data();
    for img in 0..n {
        for ch in 0..c {
            let wrow = &wd[ch * k * k..(ch + 1) * k * k];
            let ibase = (img * c + ch) * h * w;
            let obase = (img * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[obase + oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let ii = ibase + iy as usize * w + ix as usize;
                            grad_weight.data_mut()[ch * k * k + ky * k + kx] += g * id[ii];
                            grad_input.data_mut()[ii] += g * wrow[ky * k + kx];
                        }
                    }
                }
            }
        }
    }
    // Bias gradient is the per-channel sum of grad_out.
    let mut grad_bias = Tensor::zeros(&[c]);
    for img in 0..n {
        for ch in 0..c {
            let obase = (img * c + ch) * oh * ow;
            grad_bias.data_mut()[ch] += gd[obase..obase + oh * ow].iter().sum::<f32>();
        }
    }
    (grad_input, grad_weight, grad_bias)
}

fn check_weights(weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec, in_c: usize) {
    assert_eq!(spec.in_channels, in_c, "input channels do not match spec");
    let expect = Shape::new(&[
        spec.out_channels,
        spec.in_channels * spec.kernel * spec.kernel,
    ]);
    assert_eq!(
        weight.shape(),
        &expect,
        "conv weight shape {} does not match spec {expect}",
        weight.shape()
    );
    assert_eq!(
        bias.len(),
        spec.out_channels,
        "conv bias length {} does not match {} output channels",
        bias.len(),
        spec.out_channels
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_hw_matches_formula() {
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(spec.out_hw(8, 8), (8, 8));
        let spec = Conv2dSpec::new(1, 1, 3, 2, 1);
        assert_eq!(spec.out_hw(8, 8), (4, 4));
        let spec = Conv2dSpec::new(1, 1, 2, 2, 0);
        assert_eq!(spec.out_hw(8, 8), (4, 4));
    }

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        // 3x3 kernel with a single 1 in the center, padding 1 => identity.
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        let mut w = Tensor::zeros(&[1, 9]);
        w.data_mut()[4] = 1.0;
        let b = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_sums_box_filter() {
        // All-ones 2x2 kernel stride 2 on an all-ones image => every output 4.
        let spec = Conv2dSpec::new(1, 1, 2, 2, 0);
        let w = Tensor::ones(&[1, 4]);
        let b = Tensor::zeros(&[1]);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert!(y.data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn conv_bias_offsets_every_output() {
        let spec = Conv2dSpec::new(1, 2, 1, 1, 0);
        let w = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv2d(&x, &w, &b, &spec);
        assert_eq!(&y.data()[0..4], &[11.0, 12.0, 13.0, 14.0]);
        assert_eq!(&y.data()[4..8], &[19.0, 18.0, 17.0, 16.0]);
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let x = crate::init::normal(&mut rng, &[1, 2, 5, 5], 0.0, 1.0);
        let w = crate::init::normal(&mut rng, &[3, 18], 0.0, 0.5);
        let b = crate::init::normal(&mut rng, &[3], 0.0, 0.5);
        let g = crate::init::normal(&mut rng, &[1, 3, 5, 5], 0.0, 1.0);

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d(x, w, b, &spec)
                .data()
                .iter()
                .zip(g.data().iter())
                .map(|(&y, &gg)| y * gg)
                .sum()
        };

        let (gx, gw, gb) = conv2d_backward(&x, &w, &g, &spec);
        let eps = 1e-2;
        for i in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 0.05,
                "gx[{i}] {num} vs {}",
                gx.data()[i]
            );
        }
        for i in (0..w.len()).step_by(5) {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 0.05,
                "gw[{i}] {num} vs {}",
                gw.data()[i]
            );
        }
        for i in 0..b.len() {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (num - gb.data()[i]).abs() < 0.05,
                "gb[{i}] {num} vs {}",
                gb.data()[i]
            );
        }
    }

    #[test]
    fn dwconv_applies_per_channel_filters() {
        let spec = Conv2dSpec::new(2, 2, 1, 1, 0);
        let w = Tensor::from_vec(vec![2.0, 3.0], &[2, 1]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 1, 2]).unwrap();
        let y = dwconv2d(&x, &w, &b, &spec);
        assert_eq!(y.data(), &[2.0, 4.0, 31.0, 61.0]);
    }

    #[test]
    fn dwconv_backward_matches_finite_differences() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        let spec = Conv2dSpec::new(3, 3, 3, 1, 1);
        let x = crate::init::normal(&mut rng, &[2, 3, 4, 4], 0.0, 1.0);
        let w = crate::init::normal(&mut rng, &[3, 9], 0.0, 0.5);
        let b = crate::init::normal(&mut rng, &[3], 0.0, 0.5);
        let g = crate::init::normal(&mut rng, &[2, 3, 4, 4], 0.0, 1.0);

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            dwconv2d(x, w, b, &spec)
                .data()
                .iter()
                .zip(g.data().iter())
                .map(|(&y, &gg)| y * gg)
                .sum()
        };

        let (gx, gw, gb) = dwconv2d_backward(&x, &w, &g, &spec);
        let eps = 1e-2;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 0.05);
        }
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((num - gw.data()[i]).abs() < 0.05);
        }
        for i in 0..b.len() {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((num - gb.data()[i]).abs() < 0.05);
        }
    }

    #[test]
    fn mac_count_matches_dense_formula() {
        let spec = Conv2dSpec::new(3, 16, 3, 1, 1);
        assert_eq!(spec.mac_count(32, 32), (16 * 3 * 9 * 32 * 32) as u64);
    }
}
