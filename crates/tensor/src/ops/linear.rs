//! Dense matrix products and the fully-connected layer kernel.

use crate::Tensor;

/// Matrix product `a[m,k] · b[k,n] -> [m,n]`.
///
/// Uses the cache-friendly i-k-j loop order so the inner loop streams over
/// contiguous rows of `b` and the output.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "matmul lhs");
    let (kb, n) = mat_dims(b, "matmul rhs");
    assert_eq!(k, kb, "matmul inner dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (kk, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// Matrix product with the left operand transposed: `aᵀ[k,m]ᵀ · b[k,n] -> [m,n]`.
///
/// `a` is given as `[k, m]`; the product computed is `transpose(a) · b`.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or their leading dimensions differ.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a, "matmul_at lhs");
    let (kb, n) = mat_dims(b, "matmul_at rhs");
    assert_eq!(k, kb, "matmul_at leading dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// Matrix product with the right operand transposed: `a[m,k] · bᵀ[n,k]ᵀ -> [m,n]`.
///
/// `b` is given as `[n, k]`; the product computed is `a · transpose(b)`.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or their trailing dimensions differ.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "matmul_bt lhs");
    let (n, kb) = mat_dims(b, "matmul_bt rhs");
    assert_eq!(k, kb, "matmul_bt trailing dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            od[i * n + j] = dot(arow, brow);
        }
    }
    out
}

/// Fully-connected layer: `x[n, in] · wᵀ[out, in]ᵀ + bias -> [n, out]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn linear(x: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let (out_f, in_f) = mat_dims(weight, "linear weight");
    assert_eq!(
        bias.len(),
        out_f,
        "linear bias length {} does not match {out_f} outputs",
        bias.len()
    );
    let (n, xin) = mat_dims(x, "linear input");
    assert_eq!(xin, in_f, "linear input features {xin} vs weight {in_f}");
    let mut out = matmul_bt(x, weight);
    let od = out.data_mut();
    let bd = bias.data();
    for row in 0..n {
        for (o, &b) in od[row * out_f..(row + 1) * out_f].iter_mut().zip(bd) {
            *o += b;
        }
    }
    out
}

/// Backward pass of [`linear`].
///
/// Returns `(grad_input, grad_weight, grad_bias)` given the stored input and
/// the gradient of the loss with respect to the output.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn linear_backward(x: &Tensor, weight: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor, Tensor) {
    let (out_f, _in_f) = mat_dims(weight, "linear weight");
    let (n, gout) = mat_dims(grad_out, "linear grad_out");
    assert_eq!(gout, out_f, "grad_out features {gout} vs weight {out_f}");
    // dX = dY · W ; dW = dYᵀ · X ; db = column-sum of dY
    let grad_input = matmul(grad_out, weight);
    let grad_weight = matmul_at(grad_out, x);
    let mut grad_bias = Tensor::zeros(&[out_f]);
    let gb = grad_bias.data_mut();
    let gd = grad_out.data();
    for row in 0..n {
        for (b, &g) in gb.iter_mut().zip(&gd[row * out_f..(row + 1) * out_f]) {
            *b += g;
        }
    }
    (grad_input, grad_weight, grad_bias)
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

fn mat_dims(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{what} must be rank-2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree_with_plain_matmul() {
        let a = t(&[1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[2, 3]);
        let b = t(&[2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]);
        let c = matmul(&a, &b);

        // aᵀ stored as [3,2] -> matmul_at should reproduce c.
        let a_t = t(&[1.0, 3.0, -2.0, 4.0, 0.5, -1.0], &[3, 2]);
        assert_eq!(matmul_at(&a_t, &b).data(), c.data());

        // bᵀ stored as [2,3] -> matmul_bt should reproduce c.
        let b_t = t(&[2.0, 0.0, 1.5, 1.0, -1.0, 2.5], &[2, 3]);
        assert_eq!(matmul_bt(&a, &b_t).data(), c.data());
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(matmul(&a, &Tensor::eye(2)).data(), a.data());
        assert_eq!(matmul(&Tensor::eye(2), &a).data(), a.data());
    }

    #[test]
    fn linear_adds_bias_per_output() {
        let x = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let w = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[0.1, 0.2, 0.3], &[3]);
        let y = linear(&x, &w, &b);
        assert_eq!(y.shape().dims(), &[2, 3]);
        let expect = [1.1, 3.2, 5.3, 2.1, 4.2, 6.3];
        for (a, e) in y.data().iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn linear_backward_matches_finite_differences() {
        let x = t(&[0.5, -1.0, 2.0, 0.25, 1.5, -0.75], &[2, 3]);
        let w = t(&[0.1, -0.2, 0.3, 0.4, 0.5, -0.6], &[2, 3]);
        let b = t(&[0.05, -0.05], &[2]);
        let grad_out = t(&[1.0, -1.0, 0.5, 2.0], &[2, 2]);

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            let y = linear(x, w, b);
            y.data()
                .iter()
                .zip(grad_out.data().iter())
                .map(|(&y, &g)| y * g)
                .sum()
        };

        let (gx, gw, gb) = linear_backward(&x, &w, &grad_out);
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-2,
                "gx[{i}] {num} vs {}",
                gx.data()[i]
            );
        }
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 1e-2,
                "gw[{i}] {num} vs {}",
                gw.data()[i]
            );
        }
        for i in 0..b.len() {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (num - gb.data()[i]).abs() < 1e-2,
                "gb[{i}] {num} vs {}",
                gb.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatched_inner_dims() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 2]));
    }
}
