//! Dense matrix products and the fully-connected layer kernel.
//!
//! These are the reference kernels: straightforward loops whose reduction
//! orders define the bit-exact contract the packed-panel microkernels in
//! [`super::gemm`] must reproduce. The shared scalar primitives
//! ([`dot`](super::gemm::dot), [`axpy_skip_zero`](super::gemm::axpy_skip_zero))
//! live in that module so reference and packed paths cannot drift apart.

use super::gemm::{axpy_skip_zero, dot, linear_packed_bias_into, PackedWeights};
use crate::Tensor;

/// Matrix product `a[m,k] · b[k,n] -> [m,n]`.
///
/// Uses the cache-friendly i-k-j loop order so the inner loop streams over
/// contiguous rows of `b` and the output.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = mat_dims(a, "matmul lhs");
    let (_, n) = mat_dims(b, "matmul rhs");
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a, b, &mut out);
    out
}

/// [`matmul`] into a caller-provided `[m, n]` output tensor.
///
/// The output is zeroed first, so its prior contents never leak into the
/// result; `matmul(a, b)` is exactly this over a fresh tensor.
///
/// # Panics
///
/// Panics on rank, inner-dimension, or output-shape mismatches.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = mat_dims(a, "matmul lhs");
    let (kb, n) = mat_dims(b, "matmul rhs");
    assert_eq!(k, kb, "matmul inner dimensions differ: {k} vs {kb}");
    assert_eq!(
        out.shape().dims(),
        &[m, n],
        "matmul output must be [{m}, {n}]"
    );
    out.fill_zero();
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    // Four output rows per pass over `b`: the rows of the block share every
    // streamed `b` row, quartering the traffic on the dominant operand (for
    // conv-sized products `b` is far larger than any cache level, so it is
    // re-streamed from memory once per output row otherwise). Each output
    // element still accumulates its products in ascending-k order, so the
    // result is bit-for-bit the one-row, one-k-at-a-time loop's.
    let mut i = 0;
    while i + 4 <= m {
        let (o0, rest) = od[i * n..(i + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let a0 = &ad[i * k..(i + 1) * k];
        let a1 = &ad[(i + 1) * k..(i + 2) * k];
        let a2 = &ad[(i + 2) * k..(i + 3) * k];
        let a3 = &ad[(i + 3) * k..(i + 4) * k];
        let mut kk = 0;
        while kk + 4 <= k {
            let q0 = [a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]];
            let q1 = [a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]];
            let q2 = [a2[kk], a2[kk + 1], a2[kk + 2], a2[kk + 3]];
            let q3 = [a3[kk], a3[kk + 1], a3[kk + 2], a3[kk + 3]];
            let b0 = &bd[kk * n..(kk + 1) * n];
            let b1 = &bd[(kk + 1) * n..(kk + 2) * n];
            let b2 = &bd[(kk + 2) * n..(kk + 3) * n];
            let b3 = &bd[(kk + 3) * n..(kk + 4) * n];
            let dense = |q: &[f32; 4]| q.iter().all(|&v| v != 0.0);
            if dense(&q0) && dense(&q1) && dense(&q2) && dense(&q3) {
                for j in 0..n {
                    let v0 = b0[j];
                    let v1 = b1[j];
                    let v2 = b2[j];
                    let v3 = b3[j];
                    o0[j] = fma4(o0[j], &q0, v0, v1, v2, v3);
                    o1[j] = fma4(o1[j], &q1, v0, v1, v2, v3);
                    o2[j] = fma4(o2[j], &q2, v0, v1, v2, v3);
                    o3[j] = fma4(o3[j], &q3, v0, v1, v2, v3);
                }
            } else {
                // A zero somewhere in the block: per-row passes keep the
                // skip semantics (zero rows contribute no operations).
                matmul_k4_row(&q0, b0, b1, b2, b3, o0);
                matmul_k4_row(&q1, b0, b1, b2, b3, o1);
                matmul_k4_row(&q2, b0, b1, b2, b3, o2);
                matmul_k4_row(&q3, b0, b1, b2, b3, o3);
            }
            kk += 4;
        }
        for t in kk..k {
            let brow = &bd[t * n..(t + 1) * n];
            axpy_skip_zero(a0[t], brow, o0);
            axpy_skip_zero(a1[t], brow, o1);
            axpy_skip_zero(a2[t], brow, o2);
            axpy_skip_zero(a3[t], brow, o3);
        }
        i += 4;
    }
    // Leftover rows: same k-blocking, one row at a time.
    while i < m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let q = [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]];
            matmul_k4_row(
                &q,
                &bd[kk * n..(kk + 1) * n],
                &bd[(kk + 1) * n..(kk + 2) * n],
                &bd[(kk + 2) * n..(kk + 3) * n],
                &bd[(kk + 3) * n..(kk + 4) * n],
                orow,
            );
            kk += 4;
        }
        for t in kk..k {
            axpy_skip_zero(arow[t], &bd[t * n..(t + 1) * n], orow);
        }
        i += 1;
    }
}

/// `acc + q[0]*v0 + q[1]*v1 + q[2]*v2 + q[3]*v3`, added in that (ascending
/// k) order.
#[inline(always)]
fn fma4(acc: f32, q: &[f32; 4], v0: f32, v1: f32, v2: f32, v3: f32) -> f32 {
    let mut s = acc;
    s += q[0] * v0;
    s += q[1] * v1;
    s += q[2] * v2;
    s += q[3] * v3;
    s
}

/// Four k-steps of one output row: each element accumulates its four
/// products in ascending-k order (bit-for-bit the one-k-at-a-time result),
/// but the row is loaded and stored once per four steps, and the
/// independent chains give the ALUs latency to hide. Falls back to the
/// skipping scalar passes when any step's `a` value is exactly zero.
#[inline]
fn matmul_k4_row(q: &[f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32], orow: &mut [f32]) {
    if q.iter().all(|&v| v != 0.0) {
        for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o = fma4(*o, q, v0, v1, v2, v3);
        }
    } else {
        axpy_skip_zero(q[0], b0, orow);
        axpy_skip_zero(q[1], b1, orow);
        axpy_skip_zero(q[2], b2, orow);
        axpy_skip_zero(q[3], b3, orow);
    }
}

/// Matrix product with the left operand transposed: `aᵀ[k,m]ᵀ · b[k,n] -> [m,n]`.
///
/// `a` is given as `[k, m]`; the product computed is `transpose(a) · b`.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or their leading dimensions differ.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a, "matmul_at lhs");
    let (kb, n) = mat_dims(b, "matmul_at rhs");
    assert_eq!(k, kb, "matmul_at leading dimensions differ: {k} vs {kb}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            axpy_skip_zero(aval, brow, &mut od[i * n..(i + 1) * n]);
        }
    }
    out
}

/// Matrix product with the right operand transposed: `a[m,k] · bᵀ[n,k]ᵀ -> [m,n]`.
///
/// `b` is given as `[n, k]`; the product computed is `a · transpose(b)`.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or their trailing dimensions differ.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = mat_dims(a, "matmul_bt lhs");
    let (n, _) = mat_dims(b, "matmul_bt rhs");
    let mut out = Tensor::zeros(&[m, n]);
    matmul_bt_into(a, b, &mut out);
    out
}

/// [`matmul_bt`] into a caller-provided `[m, n]` output tensor.
///
/// Every output element is assigned, so prior contents never leak.
///
/// # Panics
///
/// Panics on rank, trailing-dimension, or output-shape mismatches.
pub fn matmul_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = mat_dims(a, "matmul_bt lhs");
    let (n, kb) = mat_dims(b, "matmul_bt rhs");
    assert_eq!(k, kb, "matmul_bt trailing dimensions differ: {k} vs {kb}");
    assert_eq!(
        out.shape().dims(),
        &[m, n],
        "matmul_bt output must be [{m}, {n}]"
    );
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            od[i * n + j] = dot(arow, brow);
        }
    }
}

/// Fully-connected layer: `x[n, in] · wᵀ[out, in]ᵀ + bias -> [n, out]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn linear(x: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let (n, _) = mat_dims(x, "linear input");
    let (out_f, _) = mat_dims(weight, "linear weight");
    let mut out = Tensor::zeros(&[n, out_f]);
    linear_into(x, weight, bias, &mut out);
    out
}

/// [`linear`] into a caller-provided `[n, out]` output tensor.
///
/// Every output element is assigned, so prior contents never leak.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn linear_into(x: &Tensor, weight: &Tensor, bias: &Tensor, out: &mut Tensor) {
    let (out_f, in_f) = mat_dims(weight, "linear weight");
    assert_eq!(
        bias.len(),
        out_f,
        "linear bias length {} does not match {out_f} outputs",
        bias.len()
    );
    let (n, xin) = mat_dims(x, "linear input");
    assert_eq!(xin, in_f, "linear input features {xin} vs weight {in_f}");
    matmul_bt_into(x, weight, out);
    let od = out.data_mut();
    let bd = bias.data();
    for row in 0..n {
        for (o, &b) in od[row * out_f..(row + 1) * out_f].iter_mut().zip(bd) {
            *o += b;
        }
    }
}

/// [`linear_into`] over pre-packed weights: dispatches the packed-panel
/// microkernel family instead of the reference loops. Bit-for-bit identical
/// to [`linear_into`] for any [`super::gemm::KernelVariant`].
///
/// # Panics
///
/// Panics on rank or dimension mismatches, or if `packed` was built for a
/// different weight geometry.
pub fn linear_packed_into(x: &Tensor, packed: &PackedWeights, bias: &Tensor, out: &mut Tensor) {
    let (out_f, in_f) = (packed.rows(), packed.k());
    let (n, xin) = mat_dims(x, "linear input");
    assert_eq!(xin, in_f, "linear input features {xin} vs packed {in_f}");
    assert_eq!(
        out.shape().dims(),
        &[n, out_f],
        "linear output must be [{n}, {out_f}]"
    );
    linear_packed_bias_into(packed, x.data(), n, bias.data(), out.data_mut());
}

/// Backward pass of [`linear`].
///
/// Returns `(grad_input, grad_weight, grad_bias)` given the stored input and
/// the gradient of the loss with respect to the output.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn linear_backward(x: &Tensor, weight: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor, Tensor) {
    let (out_f, _in_f) = mat_dims(weight, "linear weight");
    let (n, gout) = mat_dims(grad_out, "linear grad_out");
    assert_eq!(gout, out_f, "grad_out features {gout} vs weight {out_f}");
    // dX = dY · W ; dW = dYᵀ · X ; db = column-sum of dY
    let grad_input = matmul(grad_out, weight);
    let grad_weight = matmul_at(grad_out, x);
    let mut grad_bias = Tensor::zeros(&[out_f]);
    let gb = grad_bias.data_mut();
    let gd = grad_out.data();
    for row in 0..n {
        for (b, &g) in gb.iter_mut().zip(&gd[row * out_f..(row + 1) * out_f]) {
            *b += g;
        }
    }
    (grad_input, grad_weight, grad_bias)
}

fn mat_dims(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{what} must be rank-2, got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree_with_plain_matmul() {
        let a = t(&[1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[2, 3]);
        let b = t(&[2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]);
        let c = matmul(&a, &b);

        // aᵀ stored as [3,2] -> matmul_at should reproduce c.
        let a_t = t(&[1.0, 3.0, -2.0, 4.0, 0.5, -1.0], &[3, 2]);
        assert_eq!(matmul_at(&a_t, &b).data(), c.data());

        // bᵀ stored as [2,3] -> matmul_bt should reproduce c.
        let b_t = t(&[2.0, 0.0, 1.5, 1.0, -1.0, 2.5], &[2, 3]);
        assert_eq!(matmul_bt(&a, &b_t).data(), c.data());
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(matmul(&a, &Tensor::eye(2)).data(), a.data());
        assert_eq!(matmul(&Tensor::eye(2), &a).data(), a.data());
    }

    #[test]
    fn linear_adds_bias_per_output() {
        let x = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let w = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[0.1, 0.2, 0.3], &[3]);
        let y = linear(&x, &w, &b);
        assert_eq!(y.shape().dims(), &[2, 3]);
        let expect = [1.1, 3.2, 5.3, 2.1, 4.2, 6.3];
        for (a, e) in y.data().iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn linear_backward_matches_finite_differences() {
        let x = t(&[0.5, -1.0, 2.0, 0.25, 1.5, -0.75], &[2, 3]);
        let w = t(&[0.1, -0.2, 0.3, 0.4, 0.5, -0.6], &[2, 3]);
        let b = t(&[0.05, -0.05], &[2]);
        let grad_out = t(&[1.0, -1.0, 0.5, 2.0], &[2, 2]);

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            let y = linear(x, w, b);
            y.data()
                .iter()
                .zip(grad_out.data().iter())
                .map(|(&y, &g)| y * g)
                .sum()
        };

        let (gx, gw, gb) = linear_backward(&x, &w, &grad_out);
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-2,
                "gx[{i}] {num} vs {}",
                gx.data()[i]
            );
        }
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 1e-2,
                "gw[{i}] {num} vs {}",
                gw.data()[i]
            );
        }
        for i in 0..b.len() {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (num - gb.data()[i]).abs() < 1e-2,
                "gb[{i}] {num} vs {}",
                gb.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatched_inner_dims() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 2]));
    }
}
