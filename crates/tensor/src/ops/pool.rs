//! Pooling kernels: max pooling, average pooling, and global average pooling.

use crate::Tensor;

/// Flat argmax indices recorded by [`maxpool2d`], consumed by
/// [`maxpool2d_backward`] to route gradients to the winning inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxPoolIndices {
    indices: Vec<usize>,
    input_dims: [usize; 4],
}

impl MaxPoolIndices {
    /// An empty record, to be filled by [`maxpool2d_into`] (reusing its
    /// allocation across calls).
    pub fn empty() -> Self {
        Self {
            indices: Vec::new(),
            input_dims: [0; 4],
        }
    }

    /// The recorded winner index (into the flat input buffer) per output.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

/// Max pooling with square window `k` and stride `s` over an NCHW batch.
///
/// Returns the pooled tensor and the winner indices needed for backward.
///
/// # Panics
///
/// Panics if the input is not rank 4, or `k`/`s` is zero, or the input is
/// smaller than the window.
pub fn maxpool2d(input: &Tensor, k: usize, s: usize) -> (Tensor, MaxPoolIndices) {
    assert!(k > 0 && s > 0, "pool window and stride must be positive");
    let (n, c, h, w) = input.shape().as_nchw();
    assert!(
        h >= k && w >= k,
        "input {h}x{w} smaller than pool window {k}"
    );
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut indices = MaxPoolIndices::empty();
    maxpool2d_into(input, k, s, &mut out, &mut indices);
    (out, indices)
}

/// [`maxpool2d`] into a caller-provided output tensor and index record,
/// reusing both allocations across calls.
///
/// Every output element and index is assigned, so prior contents never
/// leak.
///
/// # Panics
///
/// Panics on the same violations as [`maxpool2d`], or if `out` does not
/// have the pooled output shape.
pub fn maxpool2d_into(
    input: &Tensor,
    k: usize,
    s: usize,
    out: &mut Tensor,
    record: &mut MaxPoolIndices,
) {
    assert!(k > 0 && s > 0, "pool window and stride must be positive");
    let (n, c, h, w) = input.shape().as_nchw();
    assert!(
        h >= k && w >= k,
        "input {h}x{w} smaller than pool window {k}"
    );
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    assert_eq!(out.len(), n * c * oh * ow, "maxpool output length mismatch");
    record.indices.clear();
    record.indices.resize(n * c * oh * ow, 0);
    record.input_dims = [n, c, h, w];
    let indices = &mut record.indices;
    let id = input.data();
    let od = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let ibase = (img * c + ch) * h * w;
            let obase = (img * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..k {
                        let iy = oy * s + ky;
                        for kx in 0..k {
                            let ix = ox * s + kx;
                            let idx = ibase + iy * w + ix;
                            if id[idx] > best {
                                best = id[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    od[obase + oy * ow + ox] = best;
                    indices[obase + oy * ow + ox] = best_idx;
                }
            }
        }
    }
}

/// Backward pass of [`maxpool2d`]: gradients flow only to each window winner.
///
/// # Panics
///
/// Panics if `grad_out` does not match the pooling output that produced
/// `indices`.
pub fn maxpool2d_backward(grad_out: &Tensor, indices: &MaxPoolIndices) -> Tensor {
    assert_eq!(
        grad_out.len(),
        indices.indices.len(),
        "grad_out does not match recorded pooling output"
    );
    let [n, c, h, w] = indices.input_dims;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_input.data_mut();
    for (&idx, &g) in indices.indices.iter().zip(grad_out.data().iter()) {
        gi[idx] += g;
    }
    grad_input
}

/// Average pooling with square window `k` and stride `s` over an NCHW batch.
///
/// # Panics
///
/// Panics on rank or size violations (see [`maxpool2d`]).
pub fn avgpool2d(input: &Tensor, k: usize, s: usize) -> Tensor {
    assert!(k > 0 && s > 0, "pool window and stride must be positive");
    let (n, c, h, w) = input.shape().as_nchw();
    assert!(
        h >= k && w >= k,
        "input {h}x{w} smaller than pool window {k}"
    );
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    avgpool2d_into(input, k, s, &mut out);
    out
}

/// [`avgpool2d`] into a caller-provided output tensor.
///
/// Every output element is assigned, so prior contents never leak.
///
/// # Panics
///
/// Panics on the same violations as [`avgpool2d`], or if `out` does not
/// have the pooled output length.
pub fn avgpool2d_into(input: &Tensor, k: usize, s: usize, out: &mut Tensor) {
    assert!(k > 0 && s > 0, "pool window and stride must be positive");
    let (n, c, h, w) = input.shape().as_nchw();
    assert!(
        h >= k && w >= k,
        "input {h}x{w} smaller than pool window {k}"
    );
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    assert_eq!(out.len(), n * c * oh * ow, "avgpool output length mismatch");
    let norm = 1.0 / (k * k) as f32;
    let id = input.data();
    let od = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let ibase = (img * c + ch) * h * w;
            let obase = (img * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let iy = oy * s + ky;
                        for kx in 0..k {
                            acc += id[ibase + iy * w + ox * s + kx];
                        }
                    }
                    od[obase + oy * ow + ox] = acc * norm;
                }
            }
        }
    }
}

/// Backward pass of [`avgpool2d`]: spreads each gradient uniformly over its
/// window.
///
/// # Panics
///
/// Panics if `grad_out` is inconsistent with the given input geometry.
pub fn avgpool2d_backward(
    grad_out: &Tensor,
    input_dims: (usize, usize, usize, usize),
    k: usize,
    s: usize,
) -> Tensor {
    let (n, c, h, w) = input_dims;
    let (gn, gc, oh, ow) = grad_out.shape().as_nchw();
    assert_eq!((gn, gc), (n, c), "grad_out batch/channel mismatch");
    assert_eq!(
        ((h - k) / s + 1, (w - k) / s + 1),
        (oh, ow),
        "grad_out spatial mismatch"
    );
    let norm = 1.0 / (k * k) as f32;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let gd = grad_out.data();
    let gi = grad_input.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let ibase = (img * c + ch) * h * w;
            let obase = (img * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[obase + oy * ow + ox] * norm;
                    for ky in 0..k {
                        let iy = oy * s + ky;
                        for kx in 0..k {
                            gi[ibase + iy * w + ox * s + kx] += g;
                        }
                    }
                }
            }
        }
    }
    grad_input
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
///
/// # Panics
///
/// Panics if the input is not rank 4.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    let (n, c, _, _) = input.shape().as_nchw();
    let mut out = Tensor::zeros(&[n, c]);
    global_avgpool_into(input, &mut out);
    out
}

/// [`global_avgpool`] into a caller-provided `[n, c]` output tensor.
///
/// Every output element is assigned, so prior contents never leak.
///
/// # Panics
///
/// Panics if the input is not rank 4 or `out` does not hold `n * c`
/// elements.
pub fn global_avgpool_into(input: &Tensor, out: &mut Tensor) {
    let (n, c, h, w) = input.shape().as_nchw();
    assert_eq!(out.len(), n * c, "global_avgpool output length mismatch");
    let plane = h * w;
    let norm = 1.0 / plane as f32;
    let id = input.data();
    let od = out.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * plane;
            od[img * c + ch] = id[base..base + plane].iter().sum::<f32>() * norm;
        }
    }
}

/// Backward pass of [`global_avgpool`].
///
/// # Panics
///
/// Panics if `grad_out` is not `[n, c]` for the given input geometry.
pub fn global_avgpool_backward(
    grad_out: &Tensor,
    input_dims: (usize, usize, usize, usize),
) -> Tensor {
    let (n, c, h, w) = input_dims;
    assert_eq!(grad_out.shape().dims(), &[n, c], "grad_out must be [n, c]");
    let plane = h * w;
    let norm = 1.0 / plane as f32;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let gd = grad_out.data();
    let gi = grad_input.data_mut();
    for img in 0..n {
        for ch in 0..c {
            let g = gd[img * c + ch] * norm;
            let base = (img * c + ch) * plane;
            for v in &mut gi[base..base + plane] {
                *v = g;
            }
        }
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, 4.0, 0.0, 1.0, 2.0, 7.0, 1.0, 0.0, 0.0, 2.0, 3.0, 1.0, 6.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, idx) = maxpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 6.0]);
        assert_eq!(idx.indices(), &[4, 2, 8, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_winners() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (_, idx) = maxpool2d(&x, 2, 2);
        let g = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let gx = maxpool2d_backward(&g, &idx);
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn avgpool_averages_windows() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = avgpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let g = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap();
        let gx = avgpool2d_backward(&g, (1, 1, 2, 2), 2, 2);
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avgpool_reduces_planes() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = global_avgpool(&x);
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn global_avgpool_backward_is_uniform() {
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gx = global_avgpool_backward(&g, (1, 2, 2, 2));
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_shapes_with_stride() {
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let (y, _) = maxpool2d(&x, 2, 2);
        assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
        let y = avgpool2d(&x, 2, 2);
        assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
    }
}
