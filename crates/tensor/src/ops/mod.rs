//! Numerical kernels: matrix multiplication, 2-D convolution, pooling, and
//! activation functions, each with the backward pass needed for training and
//! for gradient-based adversarial attacks.
//!
//! Kernels operate on [`Tensor`](crate::Tensor)s in NCHW layout (batch,
//! channels, height, width) and are written as straightforward loops that the
//! compiler auto-vectorizes; at the micro-CNN scale of this reproduction that
//! is fast enough for full training runs on one core.

mod activation;
mod conv;
mod gemm;
mod linear;
mod pool;

pub use activation::{
    cross_entropy_with_logits, leaky_relu, leaky_relu_backward, leaky_relu_into, log_softmax_rows,
    relu, relu_backward, relu_into, sigmoid, sigmoid_backward, sigmoid_into, silu, silu_backward,
    silu_into, softmax_rows, tanh, tanh_backward, tanh_into,
};
pub use conv::{
    conv2d, conv2d_backward, conv2d_into, conv2d_packed_into, dwconv2d, dwconv2d_backward,
    dwconv2d_into, Conv2dScratch, Conv2dSpec,
};
pub use gemm::{
    gemm_packed_bias_into, linear_packed_bias_into, GemmGeometry, GemmOpKind, KernelVariant,
    PackedWeights,
};
pub use linear::{
    linear, linear_backward, linear_into, linear_packed_into, matmul, matmul_at, matmul_bt,
    matmul_bt_into, matmul_into,
};
pub use pool::{
    avgpool2d, avgpool2d_backward, avgpool2d_into, global_avgpool, global_avgpool_backward,
    global_avgpool_into, maxpool2d, maxpool2d_backward, maxpool2d_into, MaxPoolIndices,
};
