//! Numerical kernels: matrix multiplication, 2-D convolution, pooling, and
//! activation functions, each with the backward pass needed for training and
//! for gradient-based adversarial attacks.
//!
//! Kernels operate on [`Tensor`](crate::Tensor)s in NCHW layout (batch,
//! channels, height, width) and are written as straightforward loops that the
//! compiler auto-vectorizes; at the micro-CNN scale of this reproduction that
//! is fast enough for full training runs on one core.

mod activation;
mod conv;
mod linear;
mod pool;

pub use activation::{
    cross_entropy_with_logits, leaky_relu, leaky_relu_backward, log_softmax_rows, relu,
    relu_backward, sigmoid, sigmoid_backward, silu, silu_backward, softmax_rows, tanh,
    tanh_backward,
};
pub use conv::{conv2d, conv2d_backward, dwconv2d, dwconv2d_backward, Conv2dSpec};
pub use linear::{linear, linear_backward, matmul, matmul_at, matmul_bt};
pub use pool::{
    avgpool2d, avgpool2d_backward, global_avgpool, global_avgpool_backward, maxpool2d,
    maxpool2d_backward, MaxPoolIndices,
};
