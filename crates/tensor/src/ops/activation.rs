//! Activation functions and the softmax / cross-entropy pair.

use crate::Tensor;

/// Rectified linear unit: `max(x, 0)` elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// [`relu`] into a caller-provided same-length tensor.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn relu_into(x: &Tensor, out: &mut Tensor) {
    map_into(x, out, |v| v.max(0.0));
}

/// Backward pass of [`relu`]: passes gradient where the input was positive.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward(input: &Tensor, grad_out: &Tensor) -> Tensor {
    input.zip(grad_out, |x, g| if x > 0.0 { g } else { 0.0 })
}

/// Leaky rectified linear unit: `x` if positive, `alpha * x` otherwise.
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    x.map(|v| if v > 0.0 { v } else { alpha * v })
}

/// [`leaky_relu`] into a caller-provided same-length tensor.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn leaky_relu_into(x: &Tensor, alpha: f32, out: &mut Tensor) {
    map_into(x, out, |v| if v > 0.0 { v } else { alpha * v });
}

/// Backward pass of [`leaky_relu`].
///
/// # Panics
///
/// Panics if shapes differ.
pub fn leaky_relu_backward(input: &Tensor, grad_out: &Tensor, alpha: f32) -> Tensor {
    input.zip(grad_out, |x, g| if x > 0.0 { g } else { alpha * g })
}

/// Hyperbolic tangent elementwise.
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// [`tanh`] into a caller-provided same-length tensor.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn tanh_into(x: &Tensor, out: &mut Tensor) {
    map_into(x, out, f32::tanh);
}

/// Backward pass of [`tanh`] given the *output* of the forward pass.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn tanh_backward(output: &Tensor, grad_out: &Tensor) -> Tensor {
    output.zip(grad_out, |y, g| g * (1.0 - y * y))
}

/// Logistic sigmoid `1 / (1 + e^-x)` elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(stable_sigmoid)
}

/// [`sigmoid`] into a caller-provided same-length tensor.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sigmoid_into(x: &Tensor, out: &mut Tensor) {
    map_into(x, out, stable_sigmoid);
}

/// Backward pass of [`sigmoid`] given the *output* of the forward pass.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sigmoid_backward(output: &Tensor, grad_out: &Tensor) -> Tensor {
    output.zip(grad_out, |y, g| g * y * (1.0 - y))
}

/// SiLU / swish: `x * sigmoid(x)` elementwise.
pub fn silu(x: &Tensor) -> Tensor {
    x.map(|v| v * stable_sigmoid(v))
}

/// [`silu`] into a caller-provided same-length tensor.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn silu_into(x: &Tensor, out: &mut Tensor) {
    map_into(x, out, |v| v * stable_sigmoid(v));
}

/// Backward pass of [`silu`] given the *input* of the forward pass.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn silu_backward(input: &Tensor, grad_out: &Tensor) -> Tensor {
    input.zip(grad_out, |x, g| {
        let s = stable_sigmoid(x);
        g * (s + x * s * (1.0 - s))
    })
}

/// Row-wise softmax over a `[n, c]` tensor.
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (n, c) = row_dims(x);
    let mut out = x.clone();
    let od = out.data_mut();
    for row in 0..n {
        let r = &mut od[row * c..(row + 1) * c];
        let m = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in r.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in r.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Row-wise log-softmax over a `[n, c]` tensor (numerically stable).
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let (n, c) = row_dims(x);
    let mut out = x.clone();
    let od = out.data_mut();
    for row in 0..n {
        let r = &mut od[row * c..(row + 1) * c];
        let m = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + r.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        for v in r.iter_mut() {
            *v -= lse;
        }
    }
    out
}

/// Mean softmax cross-entropy over a batch of logits `[n, c]` with integer
/// labels; returns `(loss, grad_logits)`.
///
/// The gradient is already divided by the batch size, so it can be fed
/// straight into a backward pass.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len() != n`, or any label is out
/// of range.
pub fn cross_entropy_with_logits(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = row_dims(logits);
    assert_eq!(labels.len(), n, "one label per batch row required");
    let log_probs = log_softmax_rows(logits);
    let mut grad = softmax_rows(logits);
    let gd = grad.data_mut();
    let scale = 1.0 / n as f32;
    let mut loss = 0.0;
    for (row, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        loss -= log_probs.data()[row * c + label];
        gd[row * c + label] -= 1.0;
    }
    for g in gd.iter_mut() {
        *g *= scale;
    }
    (loss * scale, grad)
}

/// Writes `f` applied to every element of `x` into `out`, which may hold
/// any shape of the same total length (activations are shape-agnostic).
fn map_into(x: &Tensor, out: &mut Tensor, f: impl Fn(f32) -> f32) {
    assert_eq!(
        x.len(),
        out.len(),
        "activation output length {} does not match input {}",
        out.len(),
        x.len()
    );
    for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
        *o = f(v);
    }
}

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn row_dims(t: &Tensor) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "expected [rows, cols], got {}",
        t.shape()
    );
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let g = Tensor::from_slice(&[5.0, 5.0, 5.0]);
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = Tensor::from_slice(&[-2.0, 0.0, 3.0]);
        assert_eq!(leaky_relu(&x, 0.1).data(), &[-0.2, 0.0, 3.0]);
    }

    #[test]
    fn leaky_relu_backward_matches_finite_differences() {
        let alpha = 0.2;
        for &x0 in &[-1.5f32, -0.1, 0.1, 2.0] {
            let x = Tensor::from_slice(&[x0]);
            let g = Tensor::from_slice(&[1.0]);
            let ana = leaky_relu_backward(&x, &g, alpha).data()[0];
            let eps = 1e-3;
            let f = |v: f32| if v > 0.0 { v } else { alpha * v };
            let num = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
            assert!((ana - num).abs() < 1e-3, "at {x0}: {ana} vs {num}");
        }
    }

    #[test]
    fn tanh_is_bounded_and_odd() {
        let x = Tensor::from_slice(&[-100.0, -1.0, 0.0, 1.0, 100.0]);
        let y = tanh(&x);
        assert!(y.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!((y.data()[1] + y.data()[3]).abs() < 1e-6, "odd function");
        assert_eq!(y.data()[2], 0.0);
    }

    #[test]
    fn tanh_backward_matches_finite_differences() {
        for &x0 in &[-2.0f32, -0.3, 0.0, 0.7] {
            let x = Tensor::from_slice(&[x0]);
            let y = tanh(&x);
            let g = Tensor::from_slice(&[1.0]);
            let ana = tanh_backward(&y, &g).data()[0];
            let eps = 1e-3;
            let num = ((x0 + eps).tanh() - (x0 - eps).tanh()) / (2.0 * eps);
            assert!((ana - num).abs() < 1e-3, "at {x0}: {ana} vs {num}");
        }
    }

    #[test]
    fn sigmoid_is_symmetric_and_bounded() {
        let x = Tensor::from_slice(&[-100.0, 0.0, 100.0]);
        let y = sigmoid(&x);
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-7);
        assert!(y.data()[2] <= 1.0 && y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn silu_matches_definition() {
        let x = Tensor::from_slice(&[1.5]);
        let expect = 1.5 / (1.0 + (-1.5f32).exp());
        assert!((silu(&x).data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn silu_backward_matches_finite_differences() {
        let xs = [-3.0f32, -0.5, 0.0, 0.7, 4.0];
        for &x0 in &xs {
            let x = Tensor::from_slice(&[x0]);
            let g = Tensor::from_slice(&[1.0]);
            let analytic = silu_backward(&x, &g).data()[0];
            let eps = 1e-3;
            let f = |v: f32| v * stable_sigmoid(v);
            let numeric = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-3,
                "at {x0}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let y = softmax_rows(&x);
        for row in 0..2 {
            let s: f32 = y.data()[row * 3..(row + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant: both rows differ by a constant.
        for i in 0..3 {
            assert!((y.data()[i] - y.data()[3 + i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let y = softmax_rows(&x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!((y.data()[0] + y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_vec(vec![0.5, -0.25, 2.0], &[1, 3]).unwrap();
        let a = log_softmax_rows(&x);
        let b = softmax_rows(&x).map(f32::ln);
        for (u, v) in a.data().iter().zip(b.data().iter()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (loss, _) = cross_entropy_with_logits(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], &[1, 3]).unwrap();
        let (_, grad) = cross_entropy_with_logits(&logits, &[1]);
        let p = softmax_rows(&logits);
        assert!((grad.data()[0] - p.data()[0]).abs() < 1e-6);
        assert!((grad.data()[1] - (p.data()[1] - 1.0)).abs() < 1e-6);
        assert!((grad.data()[2] - p.data()[2]).abs() < 1e-6);
        // Gradient rows always sum to ~0.
        assert!(grad.data().iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_averages_over_batch() {
        let logits = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[2, 2]).unwrap();
        let (loss, grad) = cross_entropy_with_logits(&logits, &[0, 1]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-6);
        assert!((grad.data()[0] - (0.5 - 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 2]);
        cross_entropy_with_logits(&logits, &[2]);
    }
}
