//! Shape-specialized packed-panel GEMM microkernels.
//!
//! The inference hot path runs two matrix disciplines over and over with
//! weights that never change between calls:
//!
//! * **conv**: `weight[m,k] · cols[k,n]` over an im2col buffer, followed by
//!   a per-row bias add ([`super::conv::conv2d_into`]);
//! * **linear**: `x[rows,k] · weightᵀ[m,k]ᵀ` followed by a bias add
//!   ([`super::linear::linear_into`]).
//!
//! This module packs the weight operand once into an MR-row, k-major panel
//! layout ([`PackedPanels`]) and dispatches register-blocked microkernels
//! over it ([`KernelVariant`]): MR×NR output accumulators live in registers
//! for the whole k loop, the panel is streamed contiguously, and the bias is
//! fused into the store, so the per-call path does zero repacking and zero
//! allocation.
//!
//! # Bit-exactness
//!
//! Every variant reproduces the reference kernels bit-for-bit, which is what
//! lets the autotuner pick freely without perturbing the simulated HPC
//! counts downstream:
//!
//! * the conv discipline accumulates each output element's products in
//!   ascending-k order from `0.0`, exactly like
//!   [`matmul_into`](super::linear::matmul_into) (whose zero-skip fast
//!   paths are themselves bit-identical to the no-skip loop for finite
//!   inputs: adding `±0.0` to a finite accumulator that started at `+0.0`
//!   never changes it under round-to-nearest);
//! * the linear discipline replicates the exact split-k4 reduction of
//!   [`dot`]: four interleaved partial sums over `k / 4` chunks, summed
//!   left-associatively, then the tail added in ascending order;
//! * the fused bias store computes `acc + bias`, the same expression the
//!   reference paths evaluate after their GEMM.
//!
//! Row blocking (MR) and column blocking (NR) only change *which* elements
//! are computed together, never the order of any element's own reduction,
//! so the variant choice is observationally irrelevant.

use crate::Tensor;

/// Which matrix discipline a GEMM call site uses (reduction-order contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GemmOpKind {
    /// `weight · im2col` with ascending-k accumulation (convolution).
    Conv,
    /// `x · weightᵀ` with split-k4 accumulation (fully connected).
    Linear,
}

impl GemmOpKind {
    /// Stable one-byte tag for fingerprints and persisted decision tables.
    pub fn tag(self) -> u8 {
        match self {
            GemmOpKind::Conv => 1,
            GemmOpKind::Linear => 2,
        }
    }

    /// Stable lowercase name.
    pub fn label(self) -> &'static str {
        match self {
            GemmOpKind::Conv => "conv",
            GemmOpKind::Linear => "linear",
        }
    }
}

/// The dimensions of one GEMM call site: `m×k` weights against a `k×n`
/// (conv) or `n×k` (linear, `n` = batch rows) data operand.
///
/// Two layers with the same geometry perform the identical computation, so
/// the autotuner keys its decision table on this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GemmGeometry {
    /// Discipline of the call site.
    pub op: GemmOpKind,
    /// Weight rows (conv output channels / linear output features).
    pub m: usize,
    /// Reduction length (conv `in_c·k·k` / linear input features).
    pub k: usize,
    /// Data columns (conv `oh·ow` / linear batch rows, 1 on the
    /// single-image measure path).
    pub n: usize,
}

impl std::fmt::Display for GemmGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}x{}x{}", self.op.label(), self.m, self.k, self.n)
    }
}

/// One register-blocking strategy: MR weight rows per panel, NR data
/// columns per accumulator block (conv discipline only; the linear
/// discipline uses MR lanes with the split-k4 accumulators).
///
/// All variants are bit-exact (see the module docs), so the autotuner's
/// choice is purely a performance decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelVariant {
    /// 4 rows × 16 columns: widest column vectorization.
    Mr4Nr16,
    /// 8 rows × 8 columns: halves the data-operand traffic.
    Mr8Nr8,
    /// 6 rows × 8 columns: middle ground for row counts divisible by 6.
    Mr6Nr8,
}

impl KernelVariant {
    /// Every variant, in stable order.
    pub const ALL: [Self; 3] = [Self::Mr4Nr16, Self::Mr8Nr8, Self::Mr6Nr8];

    /// Rows per packed panel.
    pub fn mr(self) -> usize {
        match self {
            Self::Mr4Nr16 => 4,
            Self::Mr8Nr8 => 8,
            Self::Mr6Nr8 => 6,
        }
    }

    /// Columns per conv accumulator block.
    pub fn nr(self) -> usize {
        match self {
            Self::Mr4Nr16 => 16,
            Self::Mr8Nr8 | Self::Mr6Nr8 => 8,
        }
    }

    /// Stable one-byte tag for persisted decision tables.
    pub fn tag(self) -> u8 {
        match self {
            Self::Mr4Nr16 => 1,
            Self::Mr8Nr8 => 2,
            Self::Mr6Nr8 => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.tag() == tag)
    }

    /// Stable metric/label suffix, e.g. `mr4nr16`.
    pub fn label(self) -> &'static str {
        match self {
            Self::Mr4Nr16 => "mr4nr16",
            Self::Mr8Nr8 => "mr8nr8",
            Self::Mr6Nr8 => "mr6nr8",
        }
    }
}

impl Default for KernelVariant {
    /// The fallback when tuning is disabled: widest column vectorization.
    fn default() -> Self {
        Self::Mr4Nr16
    }
}

/// A weight matrix repacked into MR-row, k-major panels for one
/// [`KernelVariant`].
///
/// Panel `p` holds rows `[p·MR, (p+1)·MR)`; within a panel the slot order is
/// `[kk·MR + r]`, so the microkernel streams the panel exactly once per
/// block of output columns with unit stride. The last panel's missing rows
/// are zero-padded: their lanes are computed (cheaply, against zeros) but
/// never stored.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedWeights {
    data: Vec<f32>,
    variant: KernelVariant,
    rows: usize,
    k: usize,
}

impl PackedWeights {
    /// Packs a row-major `rows × k` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != rows * k`.
    pub fn pack(a: &[f32], rows: usize, k: usize, variant: KernelVariant) -> Self {
        assert_eq!(a.len(), rows * k, "packing a non-{rows}x{k} matrix");
        let mr = variant.mr();
        let panels = rows.div_ceil(mr);
        let mut data = vec![0.0f32; panels * k * mr];
        for p in 0..panels {
            let base = p * k * mr;
            let live = mr.min(rows - p * mr);
            for r in 0..live {
                let row = &a[(p * mr + r) * k..(p * mr + r + 1) * k];
                for (kk, &v) in row.iter().enumerate() {
                    data[base + kk * mr + r] = v;
                }
            }
        }
        Self {
            data,
            variant,
            rows,
            k,
        }
    }

    /// Packs a rank-2 `[rows, k]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank-2.
    pub fn pack_tensor(w: &Tensor, variant: KernelVariant) -> Self {
        assert_eq!(w.shape().rank(), 2, "packed weights must be rank-2");
        Self::pack(w.data(), w.shape().dim(0), w.shape().dim(1), variant)
    }

    /// The blocking strategy the panels were packed for.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// Rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (reduction length) of the original matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total floats held, including tail-panel zero padding.
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    fn panel(&self, p: usize) -> &[f32] {
        let stride = self.k * self.variant.mr();
        &self.data[p * stride..(p + 1) * stride]
    }
}

/// Conv-discipline packed GEMM with fused bias:
/// `out[r, j] = Σ_k panel[r, kk]·b[kk, j] + bias[r]`, accumulated in
/// ascending-k order — bit-for-bit
/// [`matmul_into`](super::linear::matmul_into) followed by the bias add of
/// [`conv2d_into`](super::conv::conv2d_into).
///
/// `b` is row-major `k × n`, `out` row-major `rows × n`; every output
/// element is assigned.
///
/// # Panics
///
/// Panics if `b`, `bias` or `out` do not match the packed geometry.
pub fn gemm_packed_bias_into(
    packed: &PackedWeights,
    b: &[f32],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    let (rows, k) = (packed.rows, packed.k);
    assert_eq!(b.len(), k * n, "gemm data operand must be {k}x{n}");
    assert_eq!(bias.len(), rows, "gemm bias must have {rows} entries");
    assert_eq!(out.len(), rows * n, "gemm output must be {rows}x{n}");
    match packed.variant {
        KernelVariant::Mr4Nr16 => conv_panels::<4, 16>(packed, b, n, bias, out),
        KernelVariant::Mr8Nr8 => conv_panels::<8, 8>(packed, b, n, bias, out),
        KernelVariant::Mr6Nr8 => conv_panels::<6, 8>(packed, b, n, bias, out),
    }
}

/// Linear-discipline packed GEMM with fused bias:
/// `out[i, r] = dot(x[i, ..], panel row r) + bias[r]` with the exact
/// split-k4 reduction of [`dot`] — bit-for-bit
/// [`linear_into`](super::linear::linear_into).
///
/// `x` is row-major `xrows × k`, `out` row-major `xrows × rows`; every
/// output element is assigned.
///
/// # Panics
///
/// Panics if `x`, `bias` or `out` do not match the packed geometry.
pub fn linear_packed_bias_into(
    packed: &PackedWeights,
    x: &[f32],
    xrows: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    let (rows, k) = (packed.rows, packed.k);
    assert_eq!(x.len(), xrows * k, "linear input must be {xrows}x{k}");
    assert_eq!(bias.len(), rows, "linear bias must have {rows} entries");
    assert_eq!(
        out.len(),
        xrows * rows,
        "linear output must be {xrows}x{rows}"
    );
    match packed.variant {
        KernelVariant::Mr4Nr16 => linear_panels::<4>(packed, x, xrows, bias, out),
        KernelVariant::Mr8Nr8 => linear_panels::<8>(packed, x, xrows, bias, out),
        KernelVariant::Mr6Nr8 => linear_panels::<6>(packed, x, xrows, bias, out),
    }
}

/// MR×NR register-blocked conv microkernel over one packed operand.
///
/// The accumulator block lives in registers for the whole k loop; each
/// element's own reduction is ascending-k, so blocking is invisible in the
/// bits.
fn conv_panels<const MR: usize, const NR: usize>(
    packed: &PackedWeights,
    b: &[f32],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    let (rows, k) = (packed.rows, packed.k);
    for p in 0..rows.div_ceil(MR) {
        let panel = packed.panel(p);
        let r0 = p * MR;
        let live = MR.min(rows - r0);
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let brow: &[f32; NR] = b[kk * n + j..kk * n + j + NR]
                    .try_into()
                    .expect("NR-sized block");
                let a: &[f32; MR] = panel[kk * MR..(kk + 1) * MR]
                    .try_into()
                    .expect("MR-sized panel slice");
                for r in 0..MR {
                    let av = a[r];
                    for (dst, &bv) in acc[r].iter_mut().zip(brow) {
                        *dst += av * bv;
                    }
                }
            }
            for r in 0..live {
                let bv = bias[r0 + r];
                let orow = &mut out[(r0 + r) * n + j..(r0 + r) * n + j + NR];
                for (o, &s) in orow.iter_mut().zip(acc[r].iter()) {
                    *o = s + bv;
                }
            }
            j += NR;
        }
        // Tail columns: one scalar ascending-k reduction per element.
        while j < n {
            let mut acc = [0.0f32; MR];
            for kk in 0..k {
                let bv = b[kk * n + j];
                let a = &panel[kk * MR..(kk + 1) * MR];
                for (dst, &av) in acc.iter_mut().zip(a) {
                    *dst += av * bv;
                }
            }
            for r in 0..live {
                out[(r0 + r) * n + j] = acc[r] + bias[r0 + r];
            }
            j += 1;
        }
    }
}

/// MR-lane split-k4 linear microkernel over one packed operand.
///
/// Per lane this is exactly [`dot`]: four interleaved partial sums over the
/// `k/4` chunks (ascending), summed left-associatively, tail ascending.
fn linear_panels<const MR: usize>(
    packed: &PackedWeights,
    x: &[f32],
    xrows: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    let (rows, k) = (packed.rows, packed.k);
    let chunks = k / 4;
    for i in 0..xrows {
        let xrow = &x[i * k..(i + 1) * k];
        let orow = &mut out[i * rows..(i + 1) * rows];
        for p in 0..rows.div_ceil(MR) {
            let panel = packed.panel(p);
            let r0 = p * MR;
            let live = MR.min(rows - r0);
            let mut acc = [[0.0f32; MR]; 4];
            for c in 0..chunks {
                let base = c * 4;
                for (q, lane) in acc.iter_mut().enumerate() {
                    let xv = xrow[base + q];
                    let a: &[f32; MR] = panel[(base + q) * MR..(base + q + 1) * MR]
                        .try_into()
                        .expect("MR-sized panel slice");
                    for (dst, &av) in lane.iter_mut().zip(a) {
                        *dst += av * xv;
                    }
                }
            }
            let mut s = [0.0f32; MR];
            for r in 0..MR {
                s[r] = acc[0][r] + acc[1][r] + acc[2][r] + acc[3][r];
            }
            for t in chunks * 4..k {
                let xv = xrow[t];
                let a = &panel[t * MR..(t + 1) * MR];
                for (dst, &av) in s.iter_mut().zip(a) {
                    *dst += av * xv;
                }
            }
            for r in 0..live {
                orow[r0 + r] = s[r] + bias[r0 + r];
            }
        }
    }
}

/// Split-k4 dot product — the linear discipline's reduction order.
///
/// Shared by [`matmul_bt_into`](super::linear::matmul_bt_into) (reference)
/// and [`linear_panels`] (packed), so the two can only ever agree.
#[inline]
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// One sparsity-aware k-step: `orow += aval * brow`, skipped entirely when
/// `aval` is exactly zero (im2col padding rows, sparse gradients).
///
/// Shared by the reference [`matmul_into`](super::linear::matmul_into)
/// tails and [`matmul_at`](super::linear::matmul_at)'s inner loop.
#[inline]
pub(super) fn axpy_skip_zero(aval: f32, brow: &[f32], orow: &mut [f32]) {
    if aval == 0.0 {
        return;
    }
    for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
        *o += aval * bval;
    }
}

#[cfg(test)]
mod tests {
    use super::super::linear::{linear_into, matmul_into};
    use super::*;
    use crate::Tensor;

    /// Deterministic pseudo-random fill with zeros sprinkled in (to cross
    /// the reference kernels' zero-skip fast paths).
    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 7 == 0 {
                    0.0
                } else {
                    ((state >> 16) as i32 % 1000) as f32 / 250.0
                }
            })
            .collect()
    }

    fn tensor(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
    }

    #[test]
    fn conv_discipline_is_bit_exact_for_every_variant() {
        for (m, k, n) in [
            (16, 27, 1024),
            (16, 144, 1024),
            (10, 128, 1),
            (1, 1, 1),
            (5, 9, 17),
            (7, 13, 3),
            (6, 8, 8),
            (9, 5, 33),
        ] {
            let a = fill(m * k, (m * 31 + k) as u64);
            let b = fill(k * n, (k * 17 + n) as u64);
            let bias = fill(m, m as u64);
            let at = tensor(&a, &[m, k]);
            let bt = tensor(&b, &[k, n]);
            let mut reference = Tensor::zeros(&[m, n]);
            matmul_into(&at, &bt, &mut reference);
            let mut expect = reference.data().to_vec();
            for r in 0..m {
                for v in &mut expect[r * n..(r + 1) * n] {
                    *v += bias[r];
                }
            }
            for variant in KernelVariant::ALL {
                let packed = PackedWeights::pack(&a, m, k, variant);
                let mut got = vec![f32::NAN; m * n];
                gemm_packed_bias_into(&packed, &b, n, &bias, &mut got);
                for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        e.to_bits(),
                        "{variant:?} {m}x{k}x{n} diverged at {i}: {g} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_discipline_is_bit_exact_for_every_variant() {
        for (xrows, out_f, in_f) in [
            (1, 128, 2048),
            (1, 10, 128),
            (3, 8, 32),
            (2, 5, 7),
            (1, 1, 1),
            (4, 6, 9),
            (2, 13, 5),
        ] {
            let x = fill(xrows * in_f, (xrows * 7 + in_f) as u64);
            let w = fill(out_f * in_f, (out_f * 3 + in_f) as u64);
            let bias = fill(out_f, out_f as u64);
            let xt = tensor(&x, &[xrows, in_f]);
            let wt = tensor(&w, &[out_f, in_f]);
            let biast = tensor(&bias, &[out_f]);
            let mut reference = Tensor::zeros(&[xrows, out_f]);
            linear_into(&xt, &wt, &biast, &mut reference);
            for variant in KernelVariant::ALL {
                let packed = PackedWeights::pack_tensor(&wt, variant);
                let mut got = vec![f32::NAN; xrows * out_f];
                linear_packed_bias_into(&packed, &x, xrows, &bias, &mut got);
                for (i, (g, e)) in got.iter().zip(reference.data().iter()).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        e.to_bits(),
                        "{variant:?} {xrows}x{out_f}x{in_f} diverged at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn tail_panel_padding_never_leaks() {
        // rows not divisible by any MR: the zero-padded lanes must not be
        // stored.
        let (m, k, n) = (5, 3, 4);
        let a = fill(m * k, 9);
        let b = fill(k * n, 10);
        let bias = vec![1.0; m];
        for variant in KernelVariant::ALL {
            let packed = PackedWeights::pack(&a, m, k, variant);
            let mut out = vec![f32::NAN; m * n];
            gemm_packed_bias_into(&packed, &b, n, &bias, &mut out);
            assert!(out.iter().all(|v| v.is_finite()), "{variant:?} left NaNs");
        }
    }

    #[test]
    fn variant_tags_round_trip() {
        for v in KernelVariant::ALL {
            assert_eq!(KernelVariant::from_tag(v.tag()), Some(v));
        }
        assert_eq!(KernelVariant::from_tag(0), None);
        assert_eq!(KernelVariant::from_tag(99), None);
    }

    #[test]
    fn packed_len_accounts_for_tail_padding() {
        let packed = PackedWeights::pack(&fill(5 * 3, 1), 5, 3, KernelVariant::Mr4Nr16);
        assert_eq!(packed.packed_len(), 2 * 3 * 4); // two 4-row panels
        assert_eq!(packed.rows(), 5);
        assert_eq!(packed.k(), 3);
    }
}
