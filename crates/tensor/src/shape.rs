use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that caches the element
/// count and offers the indexing arithmetic used by the kernels in
/// [`ops`](crate::ops).
///
/// # Example
///
/// ```
/// use advhunter_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
    len: usize,
}

/// Error returned when raw data cannot be interpreted under a shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: usize,
    actual: usize,
    dims: Vec<usize>,
}

impl ShapeError {
    pub(crate) fn new(dims: &[usize], actual: usize) -> Self {
        Self {
            expected: dims.iter().product(),
            actual,
            dims: dims.to_vec(),
        }
    }

    /// Number of elements the shape requires.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Number of elements that were provided.
    pub fn actual(&self) -> usize {
        self.actual
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} requires {} elements but {} were provided",
            self.dims, self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeError {}

impl Shape {
    /// Creates a shape from dimension sizes, outermost first.
    ///
    /// A zero-rank shape describes a scalar with one element.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            len: dims.iter().product(),
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Interprets the shape as `(channels, height, width)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 3.
    pub fn as_chw(&self) -> (usize, usize, usize) {
        assert_eq!(self.rank(), 3, "expected CHW shape, got {self:?}");
        (self.dims[0], self.dims[1], self.dims[2])
    }

    /// Interprets the shape as `(batch, channels, height, width)`.
    ///
    /// A rank-3 CHW shape is accepted as a batch of one — the flat data of
    /// a `[c, h, w]` tensor is bytewise identical to `[1, c, h, w]`, which
    /// lets single-image pipelines skip the batch-copy reshape.
    ///
    /// # Panics
    ///
    /// Panics if the rank is neither 3 nor 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        match self.rank() {
            3 => (1, self.dims[0], self.dims[1], self.dims[2]),
            4 => (self.dims[0], self.dims[1], self.dims[2], self.dims[3]),
            _ => panic!("expected NCHW shape, got {self:?}"),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self {
            len: dims.iter().product(),
            dims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[]).len(), 1);
        assert_eq!(Shape::new(&[5, 0]).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn chw_and_nchw_accessors() {
        assert_eq!(Shape::new(&[3, 32, 32]).as_chw(), (3, 32, 32));
        assert_eq!(Shape::new(&[8, 3, 32, 32]).as_nchw(), (8, 3, 32, 32));
    }

    #[test]
    #[should_panic(expected = "expected CHW shape")]
    fn chw_accessor_rejects_wrong_rank() {
        Shape::new(&[3, 32]).as_chw();
    }

    #[test]
    fn shape_error_reports_counts() {
        let err = ShapeError::new(&[2, 3], 5);
        assert_eq!(err.expected(), 6);
        assert_eq!(err.actual(), 5);
        assert!(err.to_string().contains("6 elements"));
    }
}
