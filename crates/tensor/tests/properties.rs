//! Property-based tests for tensor algebra invariants.

use advhunter_tensor::ops::{
    cross_entropy_with_logits, log_softmax_rows, matmul, matmul_at, matmul_bt, relu, softmax_rows,
};
use advhunter_tensor::Tensor;
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_linear_in_lhs(
        a in small_vec(6), b in small_vec(6), c in small_vec(6), s in -3.0f32..3.0
    ) {
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 3]).unwrap();
        let tc = Tensor::from_vec(c, &[3, 2]).unwrap();
        // (a + s*b) · c == a·c + s*(b·c)
        let mut lhs_in = ta.clone();
        lhs_in.add_scaled(&tb, s);
        let lhs = matmul(&lhs_in, &tc);
        let mut rhs = matmul(&ta, &tc);
        rhs.add_scaled(&matmul(&tb, &tc), s);
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transposed_matmuls_are_consistent(a in small_vec(8), b in small_vec(12)) {
        // a: [2,4], b: [4,3]
        let ta = Tensor::from_vec(a, &[2, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[4, 3]).unwrap();
        let c = matmul(&ta, &tb);

        // Build explicit transposes and verify matmul_at / matmul_bt agree.
        let mut at = Tensor::zeros(&[4, 2]);
        for i in 0..2 {
            for j in 0..4 {
                at.set(&[j, i], ta.at(&[i, j]));
            }
        }
        let mut bt = Tensor::zeros(&[3, 4]);
        for i in 0..4 {
            for j in 0..3 {
                bt.set(&[j, i], tb.at(&[i, j]));
            }
        }
        let via_at = matmul_at(&at, &tb);
        let via_bt = matmul_bt(&ta, &bt);
        for ((x, y), z) in c.data().iter().zip(via_at.data()).zip(via_bt.data()) {
            prop_assert!((x - y).abs() < 1e-4);
            prop_assert!((x - z).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_probability_vectors(v in small_vec(12)) {
        let t = Tensor::from_vec(v, &[3, 4]).unwrap();
        let y = softmax_rows(&t);
        for row in 0..3 {
            let r = &y.data()[row * 4..(row + 1) * 4];
            let sum: f32 = r.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(r.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn log_softmax_is_shift_invariant(v in small_vec(5), shift in -50.0f32..50.0) {
        let t = Tensor::from_vec(v.clone(), &[1, 5]).unwrap();
        let shifted = Tensor::from_vec(v.iter().map(|x| x + shift).collect(), &[1, 5]).unwrap();
        let a = log_softmax_rows(&t);
        let b = log_softmax_rows(&shifted);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(v in small_vec(8), label in 0usize..4) {
        let t = Tensor::from_vec(v, &[2, 4]).unwrap();
        let (loss, grad) = cross_entropy_with_logits(&t, &[label, (label + 1) % 4]);
        prop_assert!(loss >= -1e-6);
        // Each row of the gradient sums to zero (softmax minus one-hot).
        for row in 0..2 {
            let s: f32 = grad.data()[row * 4..(row + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn relu_is_idempotent_and_monotone(v in small_vec(16)) {
        let t = Tensor::from_vec(v, &[16]).unwrap();
        let once = relu(&t);
        let twice = relu(&once);
        prop_assert_eq!(once.data(), twice.data());
        prop_assert!(once.data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn stack_then_image_round_trips(v in small_vec(8), w in small_vec(8)) {
        let a = Tensor::from_vec(v, &[2, 2, 2]).unwrap();
        let b = Tensor::from_vec(w, &[2, 2, 2]).unwrap();
        let batch = Tensor::stack(&[a.clone(), b.clone()]);
        prop_assert_eq!(batch.image(0), a);
        prop_assert_eq!(batch.image(1), b);
    }

    #[test]
    fn l2_norm_satisfies_triangle_inequality(v in small_vec(8), w in small_vec(8)) {
        let a = Tensor::from_vec(v, &[8]).unwrap();
        let b = Tensor::from_vec(w, &[8]).unwrap();
        let sum = &a + &b;
        prop_assert!(sum.l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
    }
}
