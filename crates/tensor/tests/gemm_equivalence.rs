//! Property-based bit-exactness of the packed-panel GEMM kernel family
//! against the reference loops.
//!
//! The whole AdvHunter trace contract rests on the packed kernels being
//! *bit-for-bit* interchangeable with the reference matrix code: the
//! simulated HPC counts derive from forward activations, so a single ULP
//! of drift anywhere would silently re-address every golden count. These
//! properties drive randomized shapes — including ragged tails smaller
//! than every register block, stride/padding edge cases, and zero-heavy
//! operands that exercise the sparsity skip — and require exact
//! `to_bits` equality, not tolerance.

use advhunter_tensor::ops::{
    conv2d_into, conv2d_packed_into, gemm_packed_bias_into, linear_into, linear_packed_into,
    matmul_into, Conv2dScratch, Conv2dSpec, KernelVariant, PackedWeights,
};
use advhunter_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic operand fill with exact zeros sprinkled in (roughly one
/// in seven), so the zero-skip paths of the reference loops are exercised.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 7 == 0 {
                0.0
            } else {
                ((state >> 40) as i32 - (1 << 23)) as f32 / (1 << 24) as f32
            }
        })
        .collect()
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conv-discipline GEMM: every variant, every shape (tails included),
    /// bit-identical to `matmul_into` + bias.
    #[test]
    fn packed_conv_gemm_matches_reference(
        m in 1usize..20, k in 1usize..40, n in 1usize..70, seed in any::<u64>()
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 1);
        let bias = fill(m, seed ^ 2);

        let ta = Tensor::from_vec(a.clone(), &[m, k]).unwrap();
        let tb = Tensor::from_vec(b.clone(), &[k, n]).unwrap();
        let mut reference = Tensor::zeros(&[m, n]);
        matmul_into(&ta, &tb, &mut reference);
        let expected: Vec<f32> = reference
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| v + bias[i / n])
            .collect();

        for variant in KernelVariant::ALL {
            let packed = PackedWeights::pack(&a, m, k, variant);
            // Poisoned output: every element must be overwritten.
            let mut out = vec![f32::NAN; m * n];
            gemm_packed_bias_into(&packed, &b, n, &bias, &mut out);
            prop_assert_eq!(bits(&out), bits(&expected), "variant {:?}", variant);
        }
    }

    /// Linear layer: every variant, ragged feature counts, multiple rows,
    /// bit-identical to `linear_into`.
    #[test]
    fn packed_linear_matches_reference(
        rows in 1usize..5, out_f in 1usize..24, in_f in 1usize..48, seed in any::<u64>()
    ) {
        let x = Tensor::from_vec(fill(rows * in_f, seed), &[rows, in_f]).unwrap();
        let w = fill(out_f * in_f, seed ^ 1);
        let tw = Tensor::from_vec(w.clone(), &[out_f, in_f]).unwrap();
        let bias = Tensor::from_vec(fill(out_f, seed ^ 2), &[out_f]).unwrap();

        let mut reference = Tensor::zeros(&[rows, out_f]);
        linear_into(&x, &tw, &bias, &mut reference);

        for variant in KernelVariant::ALL {
            let packed = PackedWeights::pack(&w, out_f, in_f, variant);
            let mut out = Tensor::full(&[rows, out_f], f32::NAN);
            linear_packed_into(&x, &packed, &bias, &mut out);
            prop_assert_eq!(
                bits(out.data()),
                bits(reference.data()),
                "variant {:?}",
                variant
            );
        }
    }

    /// Whole convolutions: random stride/padding/kernel geometry (every
    /// im2col edge case), batch > 1, bit-identical to `conv2d_into`.
    #[test]
    fn packed_conv2d_matches_reference(
        batch in 1usize..3,
        c in 1usize..4,
        h in 3usize..10,
        w in 3usize..10,
        out_c in 1usize..10,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        seed in any::<u64>()
    ) {
        let spec = Conv2dSpec::new(c, out_c, kernel, stride, padding);
        let input = Tensor::from_vec(fill(batch * c * h * w, seed), &[batch, c, h, w]).unwrap();
        let wlen = out_c * c * kernel * kernel;
        let weight_data = fill(wlen, seed ^ 1);
        let weight = Tensor::from_vec(weight_data, &[out_c, c * kernel * kernel]).unwrap();
        let bias = Tensor::from_vec(fill(out_c, seed ^ 2), &[out_c]).unwrap();
        let (oh, ow) = spec.out_hw(h, w);

        let mut scratch = Conv2dScratch::new(c, h, w, &spec);
        let mut reference = Tensor::zeros(&[batch, out_c, oh, ow]);
        conv2d_into(&input, &weight, &bias, &spec, &mut scratch, &mut reference);

        for variant in KernelVariant::ALL {
            let packed = PackedWeights::pack_tensor(&weight, variant);
            let mut packed_scratch = Conv2dScratch::new(c, h, w, &spec);
            let mut out = Tensor::full(&[batch, out_c, oh, ow], f32::NAN);
            conv2d_packed_into(&input, &packed, &bias, &spec, &mut packed_scratch, &mut out);
            prop_assert_eq!(
                bits(out.data()),
                bits(reference.data()),
                "variant {:?}",
                variant
            );
        }
    }
}
