//! A microarchitecture simulator standing in for the Intel i7-9700 the paper
//! measured with `perf`.
//!
//! The AdvHunter paper reads hardware performance counters (HPCs) during DNN
//! inference. This crate provides the simulated hardware those counters
//! observe:
//!
//! * [`Cache`] — a set-associative, write-back, write-allocate cache with
//!   LRU replacement.
//! * [`MemoryHierarchy`] — L1 instruction + L1 data caches backed by a
//!   unified last-level cache, with the event bookkeeping `perf` exposes
//!   (`cache-references`/`cache-misses` map to LLC accesses/misses, exactly
//!   as Intel's architectural events do).
//! * [`BranchPredictor`] — a bimodal two-bit predictor for the loop and
//!   conditional branches of the inference kernels.
//! * [`CounterGroup`] — a `perf_event_open`-flavoured façade: program a set
//!   of [`HpcEvent`]s, run work, read back an [`HpcCounts`] snapshot.
//! * [`NoiseModel`] — measurement noise from background processes, with the
//!   paper's `R`-repeat averaging (§5.2).
//!
//! # Example
//!
//! ```
//! use advhunter_uarch::{CounterGroup, HpcEvent, MachineConfig};
//!
//! let mut group = CounterGroup::new(MachineConfig::default());
//! group.enable();
//! group.load(0x1000);          // cold miss walks to DRAM
//! group.load(0x1000);          // hit in L1d
//! group.disable();
//! let counts = group.read();
//! assert_eq!(counts.get(HpcEvent::CacheReferences), 1);
//! assert_eq!(counts.get(HpcEvent::CacheMisses), 1);
//! ```

mod branch;
mod cache;
mod counters;
mod events;
mod hierarchy;
mod noise;
mod prefetch;

pub use branch::{BranchOutcome, BranchPredictor};
pub use cache::{AccessKind, Cache, CacheConfig, CacheStats, Eviction, ReplacementPolicy};
pub use counters::CounterGroup;
pub use events::{HpcCounts, HpcEvent, HpcSample};
pub use hierarchy::{HierarchyStats, MachineConfig, MemoryHierarchy};
pub use noise::{NoiseModel, Sampler};
pub use prefetch::{NextLinePrefetcher, PrefetchConfig};

/// Cache line size used throughout the simulator, in bytes.
pub const LINE_BYTES: u64 = 64;
