//! The HPC event set monitored by AdvHunter.

use std::fmt;

/// The hardware performance counter events the paper monitors.
///
/// The first five are the "core" events of Table 2; the last four are the
/// cache-related events of the ablation study (Table 3 / Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HpcEvent {
    /// Retired instructions.
    Instructions,
    /// Retired branch instructions.
    Branches,
    /// Mispredicted branches.
    BranchMisses,
    /// Last-level cache references (`perf`'s `cache-references`).
    CacheReferences,
    /// Last-level cache misses (`perf`'s `cache-misses`).
    CacheMisses,
    /// L1 data-cache load misses.
    L1dLoadMisses,
    /// L1 instruction-cache load misses.
    L1iLoadMisses,
    /// Last-level cache load misses.
    LlcLoadMisses,
    /// Last-level cache store misses.
    LlcStoreMisses,
}

impl HpcEvent {
    /// All nine events, in a stable order.
    pub const ALL: [HpcEvent; 9] = [
        HpcEvent::Instructions,
        HpcEvent::Branches,
        HpcEvent::BranchMisses,
        HpcEvent::CacheReferences,
        HpcEvent::CacheMisses,
        HpcEvent::L1dLoadMisses,
        HpcEvent::L1iLoadMisses,
        HpcEvent::LlcLoadMisses,
        HpcEvent::LlcStoreMisses,
    ];

    /// The five "core" events of the paper's Table 2.
    pub const CORE: [HpcEvent; 5] = [
        HpcEvent::Instructions,
        HpcEvent::Branches,
        HpcEvent::BranchMisses,
        HpcEvent::CacheReferences,
        HpcEvent::CacheMisses,
    ];

    /// The four cache-related events of the paper's ablation (Table 3).
    pub const CACHE_ABLATION: [HpcEvent; 4] = [
        HpcEvent::L1dLoadMisses,
        HpcEvent::L1iLoadMisses,
        HpcEvent::LlcLoadMisses,
        HpcEvent::LlcStoreMisses,
    ];

    /// Dense index into [`HpcEvent::ALL`].
    pub fn index(self) -> usize {
        match self {
            HpcEvent::Instructions => 0,
            HpcEvent::Branches => 1,
            HpcEvent::BranchMisses => 2,
            HpcEvent::CacheReferences => 3,
            HpcEvent::CacheMisses => 4,
            HpcEvent::L1dLoadMisses => 5,
            HpcEvent::L1iLoadMisses => 6,
            HpcEvent::LlcLoadMisses => 7,
            HpcEvent::LlcStoreMisses => 8,
        }
    }

    /// The `perf`-style event name.
    pub fn perf_name(self) -> &'static str {
        match self {
            HpcEvent::Instructions => "instructions",
            HpcEvent::Branches => "branches",
            HpcEvent::BranchMisses => "branch-misses",
            HpcEvent::CacheReferences => "cache-references",
            HpcEvent::CacheMisses => "cache-misses",
            HpcEvent::L1dLoadMisses => "L1-dcache-load-misses",
            HpcEvent::L1iLoadMisses => "L1-icache-load-misses",
            HpcEvent::LlcLoadMisses => "LLC-load-misses",
            HpcEvent::LlcStoreMisses => "LLC-store-misses",
        }
    }
}

impl fmt::Display for HpcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.perf_name())
    }
}

/// Raw (noise-free) counter values for all nine events.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{HpcCounts, HpcEvent};
///
/// let mut c = HpcCounts::default();
/// c.add(HpcEvent::CacheMisses, 10);
/// assert_eq!(c.get(HpcEvent::CacheMisses), 10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HpcCounts {
    values: [u64; 9],
}

impl HpcCounts {
    /// Value of one event.
    pub fn get(&self, event: HpcEvent) -> u64 {
        self.values[event.index()]
    }

    /// Overwrites one event's value.
    pub fn set(&mut self, event: HpcEvent, value: u64) {
        self.values[event.index()] = value;
    }

    /// Increments one event by `delta`.
    pub fn add(&mut self, event: HpcEvent, delta: u64) {
        self.values[event.index()] += delta;
    }

    /// Element-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &HpcCounts) -> HpcCounts {
        let mut out = HpcCounts::default();
        for (i, v) in out.values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        out
    }

    /// Converts to a floating-point sample (e.g. before adding noise).
    pub fn to_sample(self) -> HpcSample {
        let mut s = HpcSample::default();
        for (i, &v) in self.values.iter().enumerate() {
            s.values[i] = v as f64;
        }
        s
    }
}

/// Floating-point counter readings — the paper's per-measurement values
/// `e_n^{(r)}`, or their mean over `R` repetitions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HpcSample {
    pub(crate) values: [f64; 9],
}

impl HpcSample {
    /// Value of one event.
    pub fn get(&self, event: HpcEvent) -> f64 {
        self.values[event.index()]
    }

    /// Overwrites one event's value.
    pub fn set(&mut self, event: HpcEvent, value: f64) {
        self.values[event.index()] = value;
    }

    /// Mean of several samples (the paper's `Ē_n` over `R` repetitions).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn mean_of(samples: &[HpcSample]) -> HpcSample {
        assert!(!samples.is_empty(), "mean of zero samples");
        let mut out = HpcSample::default();
        for s in samples {
            for (o, v) in out.values.iter_mut().zip(s.values.iter()) {
                *o += v;
            }
        }
        for o in &mut out.values {
            *o /= samples.len() as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_consistent() {
        for (i, e) in HpcEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn perf_names_match_the_paper() {
        assert_eq!(HpcEvent::CacheMisses.to_string(), "cache-misses");
        assert_eq!(HpcEvent::L1dLoadMisses.to_string(), "L1-dcache-load-misses");
        assert_eq!(HpcEvent::LlcStoreMisses.to_string(), "LLC-store-misses");
    }

    #[test]
    fn counts_accumulate_and_diff() {
        let mut a = HpcCounts::default();
        a.add(HpcEvent::Branches, 5);
        a.add(HpcEvent::Branches, 3);
        let mut b = a;
        b.add(HpcEvent::Branches, 10);
        assert_eq!(b.since(&a).get(HpcEvent::Branches), 10);
        assert_eq!(a.since(&b).get(HpcEvent::Branches), 0, "saturating");
    }

    #[test]
    fn sample_mean_averages_per_event() {
        let mut a = HpcSample::default();
        a.set(HpcEvent::CacheMisses, 10.0);
        let mut b = HpcSample::default();
        b.set(HpcEvent::CacheMisses, 20.0);
        let m = HpcSample::mean_of(&[a, b]);
        assert_eq!(m.get(HpcEvent::CacheMisses), 15.0);
        assert_eq!(m.get(HpcEvent::Instructions), 0.0);
    }

    #[test]
    fn core_and_ablation_subsets_are_disjoint_unions_of_all() {
        let mut all: Vec<HpcEvent> = HpcEvent::CORE.to_vec();
        all.extend_from_slice(&HpcEvent::CACHE_ABLATION);
        all.sort();
        let mut expect = HpcEvent::ALL.to_vec();
        expect.sort();
        assert_eq!(all, expect);
    }
}
