//! The three-cache memory hierarchy and its perf-event bookkeeping.

use crate::cache::{AccessKind, Cache, CacheConfig, Eviction};
use crate::events::{HpcCounts, HpcEvent};
use crate::prefetch::{NextLinePrefetcher, PrefetchConfig};

/// Sizing of the simulated machine.
///
/// The default models a scaled-down desktop part: 32 KiB / 8-way L1 caches
/// and a 512 KiB / 8-way unified LLC. The LLC is deliberately smaller than a
/// real i7-9700's 12 MiB because the micro-CNNs' weights are correspondingly
/// smaller than real EfficientNet/ResNet/DenseNet weights — what matters for
/// reproducing the paper is the *ratio* of model working set to LLC
/// capacity, which makes LLC miss counts sensitive to exactly which weight
/// lines an input's activation pattern touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified last-level cache geometry.
    pub llc: CacheConfig,
    /// log2 of the branch predictor table size.
    pub predictor_log2_entries: u32,
    /// Hardware prefetcher configuration (disabled by default; its
    /// statistical effect is part of the calibrated noise model).
    pub prefetch: PrefetchConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::new(32 * 1024, 8),
            l1d: CacheConfig::new(32 * 1024, 8),
            llc: CacheConfig::new(512 * 1024, 8),
            predictor_log2_entries: 12,
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// Per-level statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1d load accesses / misses.
    pub l1d_loads: u64,
    /// L1d load misses.
    pub l1d_load_misses: u64,
    /// L1d store accesses.
    pub l1d_stores: u64,
    /// L1d store misses.
    pub l1d_store_misses: u64,
    /// L1i fetch accesses.
    pub l1i_fetches: u64,
    /// L1i fetch misses.
    pub l1i_fetch_misses: u64,
    /// LLC load accesses (L1 read misses + instruction misses).
    pub llc_loads: u64,
    /// LLC load misses.
    pub llc_load_misses: u64,
    /// LLC store accesses (write-allocating store misses + L1 writebacks).
    pub llc_stores: u64,
    /// LLC store misses.
    pub llc_store_misses: u64,
}

impl HierarchyStats {
    /// Total LLC references (`perf` `cache-references`).
    pub fn llc_references(&self) -> u64 {
        self.llc_loads + self.llc_stores
    }

    /// Total LLC misses (`perf` `cache-misses`).
    pub fn llc_misses(&self) -> u64 {
        self.llc_load_misses + self.llc_store_misses
    }
}

/// L1i + L1d backed by a unified LLC, with write-back/write-allocate
/// semantics and the event accounting `perf` exposes on Intel parts.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{MachineConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(MachineConfig::default());
/// mem.load(0x0);
/// mem.load(0x0);
/// assert_eq!(mem.stats().l1d_loads, 2);
/// assert_eq!(mem.stats().l1d_load_misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    llc: Cache,
    prefetcher: NextLinePrefetcher,
    stats: HierarchyStats,
    /// Reused scratch for the batched range APIs: the L1-level misses and
    /// write-backs a range produced, replayed into the LLC in order.
    pending: Vec<(u64, AccessKind)>,
}

impl MemoryHierarchy {
    /// Creates cold caches.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            llc: Cache::new(config.llc),
            prefetcher: NextLinePrefetcher::new(config.prefetch),
            stats: HierarchyStats::default(),
            pending: Vec::new(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Invalidates all caches and clears statistics.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.llc.reset();
        self.prefetcher.reset();
        self.stats = HierarchyStats::default();
    }

    /// Data load at byte address `addr`.
    pub fn load(&mut self, addr: u64) {
        self.stats.l1d_loads += 1;
        let (hit, ev) = self.l1d.access(addr, AccessKind::Read);
        if !hit {
            self.stats.l1d_load_misses += 1;
            self.llc_load(addr);
        }
        self.handle_l1_eviction(ev);
        // Stream prefetches fill the LLC and count as references, like the
        // hardware streamers on real parts.
        for pf_addr in self.prefetcher.observe(addr) {
            self.llc_load(pf_addr);
        }
    }

    /// Data store at byte address `addr` (write-allocate in L1d).
    pub fn store(&mut self, addr: u64) {
        self.stats.l1d_stores += 1;
        let (hit, ev) = self.l1d.access(addr, AccessKind::Write);
        if !hit {
            self.stats.l1d_store_misses += 1;
            // The allocating fill reaches the LLC as a store-class access
            // (read-for-ownership), which is what LLC-store events count.
            self.llc_store(addr);
        }
        self.handle_l1_eviction(ev);
    }

    /// Instruction fetch at byte address `addr`.
    pub fn fetch(&mut self, addr: u64) {
        self.stats.l1i_fetches += 1;
        let (hit, ev) = self.l1i.access(addr, AccessKind::Read);
        if !hit {
            self.stats.l1i_fetch_misses += 1;
            self.llc_load(addr);
        }
        // Instruction lines are never dirty; clean evictions are silent.
        debug_assert!(!matches!(ev, Eviction::Dirty(_)));
    }

    /// Data loads of `lines` consecutive cache lines starting at
    /// `base_addr`, equivalent to one [`load`](Self::load) per line in
    /// ascending order but simulated through the batched L1 path.
    ///
    /// With the prefetcher enabled the per-line path is used verbatim (the
    /// prefetcher observes every demand load); with it disabled — the
    /// default, where its effect is part of the calibrated noise model —
    /// `observe` is a stateless no-op, so skipping it is exact.
    pub fn load_range(&mut self, base_addr: u64, lines: u64) {
        if lines == 0 {
            return;
        }
        if self.prefetcher.config().enabled {
            for i in 0..lines {
                self.load(base_addr + i * crate::LINE_BYTES);
            }
            return;
        }
        self.stats.l1d_loads += lines;
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        let misses = self
            .l1d
            .access_range(base_addr, lines, AccessKind::Read, &mut pending);
        self.stats.l1d_load_misses += misses;
        self.drain_pending(&pending);
        self.pending = pending;
    }

    /// Data stores of `lines` consecutive cache lines starting at
    /// `base_addr`, equivalent to one [`store`](Self::store) per line in
    /// ascending order. Stores never consult the prefetcher.
    pub fn store_range(&mut self, base_addr: u64, lines: u64) {
        if lines == 0 {
            return;
        }
        self.stats.l1d_stores += lines;
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        let misses = self
            .l1d
            .access_range(base_addr, lines, AccessKind::Write, &mut pending);
        self.stats.l1d_store_misses += misses;
        self.drain_pending(&pending);
        self.pending = pending;
    }

    /// Instruction fetches of `lines` consecutive cache lines starting at
    /// `base_addr`, equivalent to one [`fetch`](Self::fetch) per line in
    /// ascending order. Fetches never consult the prefetcher.
    pub fn fetch_range(&mut self, base_addr: u64, lines: u64) {
        if lines == 0 {
            return;
        }
        self.stats.l1i_fetches += lines;
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        let misses = self
            .l1i
            .access_range(base_addr, lines, AccessKind::Read, &mut pending);
        self.stats.l1i_fetch_misses += misses;
        // Instruction lines are never dirty; only allocating fills remain.
        debug_assert!(pending.iter().all(|&(_, k)| k == AccessKind::Read));
        self.drain_pending(&pending);
        self.pending = pending;
    }

    /// Replays L1-level follow-up traffic into the LLC in the exact order
    /// the per-line access sequence produced it: allocating fills carry the
    /// access kind (read fill vs read-for-ownership), dirty write-backs
    /// arrive as stores. The whole list runs through the LLC's batched
    /// path; the per-kind event counts are recovered from its statistics
    /// deltas.
    fn drain_pending(&mut self, pending: &[(u64, AccessKind)]) {
        if pending.is_empty() {
            return;
        }
        let before = *self.llc.stats();
        self.llc.access_list(pending);
        let after = self.llc.stats();
        self.stats.llc_loads += after.read_accesses - before.read_accesses;
        self.stats.llc_load_misses += after.read_misses - before.read_misses;
        self.stats.llc_stores += after.write_accesses - before.write_accesses;
        self.stats.llc_store_misses += after.write_misses - before.write_misses;
    }

    fn llc_load(&mut self, addr: u64) {
        self.stats.llc_loads += 1;
        let (hit, ev) = self.llc.access(addr, AccessKind::Read);
        if !hit {
            self.stats.llc_load_misses += 1;
        }
        // LLC dirty evictions go to DRAM; nothing further to model.
        let _ = ev;
    }

    fn llc_store(&mut self, addr: u64) {
        self.stats.llc_stores += 1;
        let (hit, ev) = self.llc.access(addr, AccessKind::Write);
        if !hit {
            self.stats.llc_store_misses += 1;
        }
        let _ = ev;
    }

    fn handle_l1_eviction(&mut self, ev: Eviction) {
        if let Eviction::Dirty(victim_addr) = ev {
            // Write-back of a dirty L1 line is an LLC store.
            self.llc_store(victim_addr);
        }
    }

    /// Copies the cache-side event values into an [`HpcCounts`].
    pub fn fill_counts(&self, counts: &mut HpcCounts) {
        counts.set(HpcEvent::CacheReferences, self.stats.llc_references());
        counts.set(HpcEvent::CacheMisses, self.stats.llc_misses());
        counts.set(HpcEvent::L1dLoadMisses, self.stats.l1d_load_misses);
        counts.set(HpcEvent::L1iLoadMisses, self.stats.l1i_fetch_misses);
        counts.set(HpcEvent::LlcLoadMisses, self.stats.llc_load_misses);
        counts.set(HpcEvent::LlcStoreMisses, self.stats.llc_store_misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine() -> MemoryHierarchy {
        MemoryHierarchy::new(MachineConfig {
            l1i: CacheConfig::new(1024, 2),
            l1d: CacheConfig::new(1024, 2),
            llc: CacheConfig::new(4096, 4),
            predictor_log2_entries: 8,
            prefetch: PrefetchConfig::default(),
        })
    }

    #[test]
    fn load_miss_propagates_to_llc() {
        let mut m = small_machine();
        m.load(0);
        assert_eq!(m.stats().l1d_load_misses, 1);
        assert_eq!(m.stats().llc_loads, 1);
        assert_eq!(m.stats().llc_load_misses, 1);
        m.load(0);
        assert_eq!(m.stats().l1d_loads, 2);
        assert_eq!(m.stats().llc_loads, 1, "L1 hit does not reach LLC");
    }

    #[test]
    fn l1_miss_llc_hit_is_not_an_llc_miss() {
        let mut m = small_machine();
        // Touch enough lines to evict line 0 from tiny L1d (8 lines) but not
        // from the LLC (64 lines).
        m.load(0);
        for i in 1..32u64 {
            m.load(i * 64);
        }
        let before = m.stats().llc_load_misses;
        m.load(0);
        assert_eq!(m.stats().llc_load_misses, before, "LLC still holds line 0");
        assert!(m.stats().l1d_load_misses >= 2);
    }

    #[test]
    fn store_miss_counts_as_llc_store() {
        let mut m = small_machine();
        m.store(128);
        assert_eq!(m.stats().l1d_store_misses, 1);
        assert_eq!(m.stats().llc_stores, 1);
        assert_eq!(m.stats().llc_store_misses, 1);
    }

    #[test]
    fn dirty_writeback_reaches_llc_as_store() {
        let mut m = small_machine();
        // Dirty line 0 (set 0), then force its eviction from L1d by loading
        // two more lines of the same set (2-way, 8 sets => stride 8 lines).
        m.store(0);
        m.load(8 * 64);
        let stores_before = m.stats().llc_stores;
        m.load(16 * 64);
        assert_eq!(
            m.stats().llc_stores,
            stores_before + 1,
            "write-back of line 0"
        );
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut m = small_machine();
        m.fetch(0x7000);
        m.fetch(0x7000);
        assert_eq!(m.stats().l1i_fetches, 2);
        assert_eq!(m.stats().l1i_fetch_misses, 1);
        assert_eq!(m.stats().l1d_loads, 0);
    }

    #[test]
    fn counts_projection_is_consistent() {
        let mut m = small_machine();
        for i in 0..100u64 {
            m.load(i * 64);
            if i % 3 == 0 {
                m.store(i * 64 + 32 * 1024);
            }
            m.fetch(0x100000 + (i % 4) * 64);
        }
        let mut counts = HpcCounts::default();
        m.fill_counts(&mut counts);
        assert_eq!(
            counts.get(HpcEvent::CacheReferences),
            m.stats().llc_references()
        );
        assert_eq!(counts.get(HpcEvent::CacheMisses), m.stats().llc_misses());
        assert!(counts.get(HpcEvent::CacheMisses) <= counts.get(HpcEvent::CacheReferences));
        assert_eq!(
            counts.get(HpcEvent::CacheMisses),
            counts.get(HpcEvent::LlcLoadMisses) + counts.get(HpcEvent::LlcStoreMisses)
        );
    }

    #[test]
    fn prefetcher_inflates_references_on_streams() {
        let cfg_off = MachineConfig::default();
        let mut cfg_on = MachineConfig::default();
        cfg_on.prefetch = PrefetchConfig::aggressive();
        let mut off = MemoryHierarchy::new(cfg_off);
        let mut on = MemoryHierarchy::new(cfg_on);
        for i in 0..256u64 {
            off.load(i * 64);
            on.load(i * 64);
        }
        assert!(
            on.stats().llc_references() > off.stats().llc_references(),
            "streaming loads must trigger prefetch traffic: {} vs {}",
            on.stats().llc_references(),
            off.stats().llc_references()
        );
        assert_eq!(
            off.stats().l1d_loads,
            on.stats().l1d_loads,
            "demand loads unchanged"
        );
    }

    #[test]
    fn range_apis_match_scalar_loops_across_levels() {
        let mut batched = small_machine();
        let mut scalar = small_machine();
        // A conv-like phase pattern: streamed loads and stores that alias
        // L1d sets (8 sets), dirty lines, plus instruction fetches.
        let phases: [(u8, u64, u64); 7] = [
            (b'f', 0x1000, 4),
            (b'l', 0x2000, 40),
            (b's', 0x6000, 24),
            (b'l', 0x2000, 16), // partial re-stream: hits + misses mixed
            (b's', 0x6000, 8),
            (b'l', 0x6000, 24), // read back dirty lines
            (b'f', 0x1000, 4),
        ];
        for (op, base, n) in phases {
            match op {
                b'l' => {
                    batched.load_range(base, n);
                    for i in 0..n {
                        scalar.load(base + i * 64);
                    }
                }
                b's' => {
                    batched.store_range(base, n);
                    for i in 0..n {
                        scalar.store(base + i * 64);
                    }
                }
                _ => {
                    batched.fetch_range(base, n);
                    for i in 0..n {
                        scalar.fetch(base + i * 64);
                    }
                }
            }
            assert_eq!(batched.stats(), scalar.stats());
        }
        assert!(
            batched.stats().llc_stores > 0,
            "pattern must exercise write-backs"
        );
    }

    #[test]
    fn load_range_with_prefetcher_enabled_matches_scalar() {
        let mut cfg = MachineConfig::default();
        cfg.prefetch = PrefetchConfig::aggressive();
        let mut batched = MemoryHierarchy::new(cfg);
        let mut scalar = MemoryHierarchy::new(cfg);
        batched.load_range(0x4000, 32);
        for i in 0..32 {
            scalar.load(0x4000 + i * 64);
        }
        assert_eq!(batched.stats(), scalar.stats());
        assert!(batched.stats().llc_loads > 32, "prefetch traffic present");
    }

    #[test]
    fn empty_ranges_are_no_ops() {
        let mut m = small_machine();
        m.load_range(0, 0);
        m.store_range(0, 0);
        m.fetch_range(0, 0);
        assert_eq!(m.stats(), &HierarchyStats::default());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = small_machine();
        m.load(0);
        m.store(64);
        m.fetch(128);
        m.reset();
        assert_eq!(m.stats(), &HierarchyStats::default());
    }
}
