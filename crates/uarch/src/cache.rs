//! A set-associative, write-back, write-allocate cache with LRU replacement.

use crate::LINE_BYTES;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data or instruction read.
    Read,
    /// Data write (write-allocate: misses fill the line first).
    Write,
}

/// Victim-selection policy of a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the default; what the paper-era
    /// Intel parts approximate).
    #[default]
    Lru,
    /// Evict the oldest-inserted way regardless of use (FIFO), as some
    /// embedded and older parts do.
    Fifo,
}

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use advhunter_uarch::CacheConfig;
///
/// let l1 = CacheConfig::new(32 * 1024, 8);
/// assert_eq!(l1.num_sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    ways: usize,
    policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration for a cache of `size_bytes` with `ways`
    /// associativity, LRU replacement, and the global 64-byte line size.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a positive power of two.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        Self::with_policy(size_bytes, ways, ReplacementPolicy::Lru)
    }

    /// Like [`new`](Self::new) with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a positive power of two.
    pub fn with_policy(size_bytes: u64, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            size_bytes.is_multiple_of(LINE_BYTES * ways as u64),
            "size must be a multiple of ways * line size"
        );
        let sets = size_bytes / (LINE_BYTES * ways as u64);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Self {
            size_bytes,
            ways,
            policy,
        }
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways as u64)
    }
}

/// What an access displaced, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Nothing was displaced (hit, or fill into an empty way).
    None,
    /// A clean line was silently dropped.
    Clean,
    /// A dirty line must be written back; its base address is given.
    Dirty(u64),
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub read_accesses: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub write_accesses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in `[0, 1]`, or 0 if there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    inserted_at: u64,
}

/// One level of set-associative cache.
///
/// Addresses are byte addresses; the cache operates on 64-byte lines.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{AccessKind, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2));
/// assert!(!c.access(0x40, AccessKind::Read).0); // cold miss
/// assert!(c.access(0x40, AccessKind::Read).0);  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let total = (config.num_sets() as usize) * config.ways();
        Self {
            config,
            lines: vec![Line::default(); total],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// Performs one access; returns `(hit, eviction)`.
    ///
    /// A miss allocates the line (write-allocate for writes) and may evict
    /// the LRU line of the set; if that line was dirty its base address is
    /// reported so the caller can write it back to the next level.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> (bool, Eviction) {
        self.clock += 1;
        let line_addr = addr / LINE_BYTES;
        let sets = self.config.num_sets();
        let set = (line_addr % sets) as usize;
        let tag = line_addr / sets;
        let ways = self.config.ways();
        let base = set * ways;

        match kind {
            AccessKind::Read => self.stats.read_accesses += 1,
            AccessKind::Write => self.stats.write_accesses += 1,
        }

        // Hit path.
        for w in 0..ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.last_use = self.clock;
                if kind == AccessKind::Write {
                    line.dirty = true;
                }
                return (true, Eviction::None);
            }
        }

        // Miss: count, then fill (write-allocate).
        match kind {
            AccessKind::Read => self.stats.read_misses += 1,
            AccessKind::Write => self.stats.write_misses += 1,
        }

        // Victim: first invalid way, else LRU.
        let mut victim = 0;
        let mut found_invalid = false;
        for w in 0..ways {
            if !self.lines[base + w].valid {
                victim = w;
                found_invalid = true;
                break;
            }
        }
        if !found_invalid {
            let mut oldest = u64::MAX;
            for w in 0..ways {
                let age = match self.config.policy {
                    ReplacementPolicy::Lru => self.lines[base + w].last_use,
                    ReplacementPolicy::Fifo => self.lines[base + w].inserted_at,
                };
                if age < oldest {
                    oldest = age;
                    victim = w;
                }
            }
        }

        let evicted = {
            let line = &self.lines[base + victim];
            if !line.valid {
                Eviction::None
            } else if line.dirty {
                self.stats.writebacks += 1;
                let victim_line_addr = line.tag * sets + set as u64;
                Eviction::Dirty(victim_line_addr * LINE_BYTES)
            } else {
                Eviction::Clean
            }
        };

        self.lines[base + victim] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            last_use: self.clock,
            inserted_at: self.clock,
        };
        (false, evicted)
    }

    /// Number of currently valid lines (useful for occupancy assertions).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B = 256B.
        Cache::new(CacheConfig::new(256, 2))
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::new(32 * 1024, 8);
        assert_eq!(cfg.num_sets(), 64);
        assert_eq!(cfg.ways(), 8);
        assert_eq!(cfg.size_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_non_power_of_two_sets() {
        CacheConfig::new(3 * 64 * 2, 2); // 3 sets
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0, AccessKind::Read), (false, Eviction::None));
        assert_eq!(c.access(0, AccessKind::Read), (true, Eviction::None));
        assert_eq!(
            c.access(63, AccessKind::Read),
            (true, Eviction::None),
            "same line"
        );
        assert_eq!(
            c.access(64, AccessKind::Read),
            (false, Eviction::None),
            "next line"
        );
        assert_eq!(c.stats().read_accesses, 4);
        assert_eq!(c.stats().read_misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(); // 2 sets; lines 0, 2, 4 map to set 0 (line_addr % 2 == 0)
        c.access(0 * 64, AccessKind::Read); // set0 way0
        c.access(2 * 64, AccessKind::Read); // set0 way1
        c.access(0 * 64, AccessKind::Read); // touch line0 -> line2 is LRU
        let (hit, ev) = c.access(4 * 64, AccessKind::Read); // evicts line2
        assert!(!hit);
        assert_eq!(ev, Eviction::Clean);
        assert_eq!(c.access(0 * 64, AccessKind::Read).0, true, "line0 survived");
        assert_eq!(c.access(2 * 64, AccessKind::Read).0, false, "line2 evicted");
    }

    #[test]
    fn fifo_evicts_oldest_insertion_even_if_recently_used() {
        // 2 sets x 2 ways; lines 0, 2, 4 map to set 0.
        let mut c = Cache::new(CacheConfig::with_policy(256, 2, ReplacementPolicy::Fifo));
        c.access(0, AccessKind::Read); // insert line 0
        c.access(2 * 64, AccessKind::Read); // insert line 2
        c.access(0, AccessKind::Read); // touch line 0 (FIFO ignores this)
        c.access(4 * 64, AccessKind::Read); // must evict line 0 (oldest insert)
        assert!(
            !c.access(0, AccessKind::Read).0,
            "line 0 was evicted under FIFO"
        );
        // Under LRU the same sequence would keep line 0 (see
        // lru_evicts_least_recently_used above).
    }

    #[test]
    fn policies_differ_only_in_victim_choice() {
        let mut lru = Cache::new(CacheConfig::new(256, 2));
        let mut fifo = Cache::new(CacheConfig::with_policy(256, 2, ReplacementPolicy::Fifo));
        // A streaming pattern with no reuse: identical stats either way.
        for i in 0..64u64 {
            lru.access(i * 64, AccessKind::Read);
            fifo.access(i * 64, AccessKind::Read);
        }
        assert_eq!(lru.stats(), fifo.stats());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0, AccessKind::Write); // dirty line 0 in set 0
        c.access(2 * 64, AccessKind::Read); // fills way 1
        let (_, ev) = c.access(4 * 64, AccessKind::Read); // evicts dirty line 0
        assert_eq!(ev, Eviction::Dirty(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_allocate_fills_on_write_miss() {
        let mut c = tiny();
        assert_eq!(c.access(128, AccessKind::Write).0, false);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(
            c.access(128, AccessKind::Read).0,
            true,
            "write allocated the line"
        );
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.reset();
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.stats(), &CacheStats::default());
        assert_eq!(c.access(0, AccessKind::Read).0, false);
    }

    #[test]
    fn miss_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        for i in 0..100u64 {
            c.access(i * 64, AccessKind::Read);
        }
        let mr = c.stats().miss_rate();
        assert!((0.0..=1.0).contains(&mr));
        assert_eq!(
            mr, 1.0,
            "streaming over 100 distinct lines in a 4-line cache"
        );
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny();
        for i in 0..32u64 {
            c.access(i * 64, AccessKind::Read);
        }
        assert_eq!(c.valid_lines(), 4, "2 sets x 2 ways");
    }
}
