//! A set-associative, write-back, write-allocate cache with LRU replacement.

use crate::LINE_BYTES;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data or instruction read.
    Read,
    /// Data write (write-allocate: misses fill the line first).
    Write,
}

/// Victim-selection policy of a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the default; what the paper-era
    /// Intel parts approximate).
    #[default]
    Lru,
    /// Evict the oldest-inserted way regardless of use (FIFO), as some
    /// embedded and older parts do.
    Fifo,
}

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use advhunter_uarch::CacheConfig;
///
/// let l1 = CacheConfig::new(32 * 1024, 8);
/// assert_eq!(l1.num_sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    ways: usize,
    policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration for a cache of `size_bytes` with `ways`
    /// associativity, LRU replacement, and the global 64-byte line size.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a positive power of two.
    pub fn new(size_bytes: u64, ways: usize) -> Self {
        Self::with_policy(size_bytes, ways, ReplacementPolicy::Lru)
    }

    /// Like [`new`](Self::new) with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a positive power of two.
    pub fn with_policy(size_bytes: u64, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            size_bytes.is_multiple_of(LINE_BYTES * ways as u64),
            "size must be a multiple of ways * line size"
        );
        let sets = size_bytes / (LINE_BYTES * ways as u64);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Self {
            size_bytes,
            ways,
            policy,
        }
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways as u64)
    }
}

/// What an access displaced, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Nothing was displaced (hit, or fill into an empty way).
    None,
    /// A clean line was silently dropped.
    Clean,
    /// A dirty line must be written back; its base address is given.
    Dirty(u64),
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub read_accesses: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub write_accesses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in `[0, 1]`, or 0 if there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

/// Packed line metadata: the tag lives in the low bits, VALID/DIRTY in the
/// top two. Tags are `line_addr / sets`, which for 64-bit byte addresses
/// fits in 58 bits with room to spare, so the packing is lossless.
const META_VALID: u64 = 1 << 63;
const META_DIRTY: u64 = 1 << 62;
const META_TAG: u64 = META_DIRTY - 1;

/// Routes to the access copy monomorphized on `(ways, policy)`. Common
/// associativities get fully unrolled scans (`0` = runtime way count); the
/// policy flag lets each copy skip the stamp array it never reads.
macro_rules! dispatch_geometry {
    ($self:ident, $method:ident, $($arg:expr),*) => {
        match ($self.config.policy, $self.config.ways) {
            (ReplacementPolicy::Lru, 2) => $self.$method::<2, false>($($arg),*),
            (ReplacementPolicy::Lru, 4) => $self.$method::<4, false>($($arg),*),
            (ReplacementPolicy::Lru, 8) => $self.$method::<8, false>($($arg),*),
            (ReplacementPolicy::Lru, 16) => $self.$method::<16, false>($($arg),*),
            (ReplacementPolicy::Lru, _) => $self.$method::<0, false>($($arg),*),
            (ReplacementPolicy::Fifo, 2) => $self.$method::<2, true>($($arg),*),
            (ReplacementPolicy::Fifo, 4) => $self.$method::<4, true>($($arg),*),
            (ReplacementPolicy::Fifo, 8) => $self.$method::<8, true>($($arg),*),
            (ReplacementPolicy::Fifo, 16) => $self.$method::<16, true>($($arg),*),
            (ReplacementPolicy::Fifo, _) => $self.$method::<0, true>($($arg),*),
        }
    };
}

/// One level of set-associative cache.
///
/// Addresses are byte addresses; the cache operates on 64-byte lines.
/// Internally the ways of a set are stored structure-of-arrays with packed
/// tag/valid/dirty words so the hit scan and victim scan compile to
/// branch-free compare/select loops.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{AccessKind, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2));
/// assert!(!c.access(0x40, AccessKind::Read).0); // cold miss
/// assert!(c.access(0x40, AccessKind::Read).0);  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `num_sets - 1`: the set count is a power of two, so set selection is
    /// a mask and tag extraction a shift — no division on the access path.
    set_mask: u64,
    /// `log2(num_sets)`.
    tag_shift: u32,
    /// Packed `VALID | DIRTY | tag` per way, indexed `set * ways + way`,
    /// with each set's valid ways kept as a prefix ordered newest-first by
    /// policy age (last touch under LRU, fill under FIFO). The order IS the
    /// replacement state — no timestamps — so the victim is always the back
    /// of the prefix, and one 8-way set is a single 64-byte row.
    meta: Vec<u64>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        let total = (sets as usize) * config.ways();
        Self {
            config,
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            meta: vec![0; total],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        self.meta.fill(0);
        self.stats = CacheStats::default();
    }

    /// Performs one access; returns `(hit, eviction)`.
    ///
    /// A miss allocates the line (write-allocate for writes) and may evict
    /// the LRU line of the set; if that line was dirty its base address is
    /// reported so the caller can write it back to the next level.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> (bool, Eviction) {
        self.access_line(addr / LINE_BYTES, kind)
    }

    /// Accesses `lines` consecutive cache lines starting at the line
    /// containing `base_addr`, all with the same `kind`.
    ///
    /// Semantically identical to calling [`access`](Self::access) once per
    /// line in ascending order (both delegate to the same per-line inner
    /// loop), but without per-call dispatch overhead. Returns the number of
    /// misses; for every line, in access order, it appends to `follow_ups`
    /// the traffic the next cache level must absorb: on a miss the aligned
    /// line address with the access kind (the allocating fill), followed by
    /// the write-back address with [`AccessKind::Write`] if the fill
    /// displaced a dirty line.
    pub fn access_range(
        &mut self,
        base_addr: u64,
        lines: u64,
        kind: AccessKind,
        follow_ups: &mut Vec<(u64, AccessKind)>,
    ) -> u64 {
        dispatch_geometry!(self, access_range_ways, base_addr, lines, kind, follow_ups)
    }

    /// Accesses each `(byte address, kind)` in order — the batched form the
    /// next cache level uses to absorb a range's follow-up traffic.
    /// Equivalent to one [`access`](Self::access) per item; evictions out of
    /// this level go to DRAM, which is not modeled.
    pub fn access_list(&mut self, items: &[(u64, AccessKind)]) {
        dispatch_geometry!(self, access_list_ways, items)
    }

    fn access_list_ways<const W: usize, const FIFO: bool>(&mut self, items: &[(u64, AccessKind)]) {
        for &(addr, kind) in items {
            let _ = self.access_line_ways::<W, FIFO>(addr / LINE_BYTES, kind);
        }
    }

    /// The per-line access shared by [`access`](Self::access) and
    /// [`access_range`](Self::access_range). Dispatches to a copy
    /// monomorphized on the associativity (so the way scans fully unroll;
    /// the `0` instantiation reads the runtime way count) and on the
    /// replacement policy (so each copy touches only the stamp array its
    /// policy reads).
    fn access_line(&mut self, line_addr: u64, kind: AccessKind) -> (bool, Eviction) {
        dispatch_geometry!(self, access_line_ways, line_addr, kind)
    }

    /// [`access_range`](Self::access_range) with the geometry dispatch
    /// hoisted out of the per-line loop, so the whole loop body inlines and
    /// the set mask, tag shift, and statistics stay in registers.
    fn access_range_ways<const W: usize, const FIFO: bool>(
        &mut self,
        base_addr: u64,
        lines: u64,
        kind: AccessKind,
        follow_ups: &mut Vec<(u64, AccessKind)>,
    ) -> u64 {
        let base_line = base_addr / LINE_BYTES;
        let mut misses = 0;
        for i in 0..lines {
            let line_addr = base_line + i;
            let (hit, ev) = self.access_line_ways::<W, FIFO>(line_addr, kind);
            if !hit {
                misses += 1;
                follow_ups.push((line_addr * LINE_BYTES, kind));
            }
            if let Eviction::Dirty(victim_addr) = ev {
                follow_ups.push((victim_addr, AccessKind::Write));
            }
        }
        misses
    }

    #[inline(always)]
    fn access_line_ways<const W: usize, const FIFO: bool>(
        &mut self,
        line_addr: u64,
        kind: AccessKind,
    ) -> (bool, Eviction) {
        let ways = if W == 0 { self.config.ways() } else { W };
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.tag_shift;
        let base = set * ways;
        let row = &mut self.meta[base..base + ways];

        match kind {
            AccessKind::Read => self.stats.read_accesses += 1,
            AccessKind::Write => self.stats.write_accesses += 1,
        }

        // Hit scan: one packed compare per way with the dirty bit masked
        // out, collected into a bitmask (which vectorizes). Tags within a
        // set are unique, so at most one bit is set.
        let want = META_VALID | tag;
        let mut hit_mask = 0u32;
        for (w, &m) in row.iter().enumerate() {
            hit_mask |= u32::from(m & !META_DIRTY == want) << w;
        }
        if hit_mask != 0 {
            let hit_way = hit_mask.trailing_zeros() as usize;
            let dirty = if kind == AccessKind::Write {
                META_DIRTY
            } else {
                0
            };
            if FIFO {
                // A FIFO hit leaves the insertion order alone.
                row[hit_way] |= dirty;
            } else {
                // LRU: rotate the touched way to the front of the order.
                let line = row[hit_way] | dirty;
                row.copy_within(0..hit_way, 1);
                row[0] = line;
            }
            return (true, Eviction::None);
        }

        // Miss: count, then fill (write-allocate).
        match kind {
            AccessKind::Read => self.stats.read_misses += 1,
            AccessKind::Write => self.stats.write_misses += 1,
        }

        // Victim: the first invalid way (valid ways form a prefix), or the
        // back of the order when the set is full — the oldest line under
        // both policies.
        let valid = row.iter().filter(|&&m| m & META_VALID != 0).count();
        let (victim, evicted) = if valid < ways {
            (valid, Eviction::None)
        } else {
            let vm = row[ways - 1];
            let ev = if vm & META_DIRTY != 0 {
                self.stats.writebacks += 1;
                let victim_line_addr = ((vm & META_TAG) << self.tag_shift) | set as u64;
                Eviction::Dirty(victim_line_addr * LINE_BYTES)
            } else {
                Eviction::Clean
            };
            (ways - 1, ev)
        };

        let dirty = if kind == AccessKind::Write {
            META_DIRTY
        } else {
            0
        };
        // Insert the fill at the front of the order.
        row.copy_within(0..victim, 1);
        row[0] = META_VALID | dirty | tag;
        (false, evicted)
    }

    /// Number of currently valid lines (useful for occupancy assertions).
    pub fn valid_lines(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B = 256B.
        Cache::new(CacheConfig::new(256, 2))
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::new(32 * 1024, 8);
        assert_eq!(cfg.num_sets(), 64);
        assert_eq!(cfg.ways(), 8);
        assert_eq!(cfg.size_bytes(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_non_power_of_two_sets() {
        CacheConfig::new(3 * 64 * 2, 2); // 3 sets
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0, AccessKind::Read), (false, Eviction::None));
        assert_eq!(c.access(0, AccessKind::Read), (true, Eviction::None));
        assert_eq!(
            c.access(63, AccessKind::Read),
            (true, Eviction::None),
            "same line"
        );
        assert_eq!(
            c.access(64, AccessKind::Read),
            (false, Eviction::None),
            "next line"
        );
        assert_eq!(c.stats().read_accesses, 4);
        assert_eq!(c.stats().read_misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(); // 2 sets; lines 0, 2, 4 map to set 0 (line_addr % 2 == 0)
        c.access(0 * 64, AccessKind::Read); // set0 way0
        c.access(2 * 64, AccessKind::Read); // set0 way1
        c.access(0 * 64, AccessKind::Read); // touch line0 -> line2 is LRU
        let (hit, ev) = c.access(4 * 64, AccessKind::Read); // evicts line2
        assert!(!hit);
        assert_eq!(ev, Eviction::Clean);
        assert_eq!(c.access(0 * 64, AccessKind::Read).0, true, "line0 survived");
        assert_eq!(c.access(2 * 64, AccessKind::Read).0, false, "line2 evicted");
    }

    #[test]
    fn fifo_evicts_oldest_insertion_even_if_recently_used() {
        // 2 sets x 2 ways; lines 0, 2, 4 map to set 0.
        let mut c = Cache::new(CacheConfig::with_policy(256, 2, ReplacementPolicy::Fifo));
        c.access(0, AccessKind::Read); // insert line 0
        c.access(2 * 64, AccessKind::Read); // insert line 2
        c.access(0, AccessKind::Read); // touch line 0 (FIFO ignores this)
        c.access(4 * 64, AccessKind::Read); // must evict line 0 (oldest insert)
        assert!(
            !c.access(0, AccessKind::Read).0,
            "line 0 was evicted under FIFO"
        );
        // Under LRU the same sequence would keep line 0 (see
        // lru_evicts_least_recently_used above).
    }

    #[test]
    fn policies_differ_only_in_victim_choice() {
        let mut lru = Cache::new(CacheConfig::new(256, 2));
        let mut fifo = Cache::new(CacheConfig::with_policy(256, 2, ReplacementPolicy::Fifo));
        // A streaming pattern with no reuse: identical stats either way.
        for i in 0..64u64 {
            lru.access(i * 64, AccessKind::Read);
            fifo.access(i * 64, AccessKind::Read);
        }
        assert_eq!(lru.stats(), fifo.stats());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0, AccessKind::Write); // dirty line 0 in set 0
        c.access(2 * 64, AccessKind::Read); // fills way 1
        let (_, ev) = c.access(4 * 64, AccessKind::Read); // evicts dirty line 0
        assert_eq!(ev, Eviction::Dirty(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn dirty_eviction_reports_nonzero_set_and_tag_address() {
        let mut c = tiny(); // 2 sets x 2 ways; odd lines map to set 1.
        c.access(3 * 64, AccessKind::Write); // dirty line 3 in set 1
        c.access(5 * 64, AccessKind::Read); // fills way 1 of set 1
        let (_, ev) = c.access(7 * 64, AccessKind::Read); // evicts line 3
        assert_eq!(
            ev,
            Eviction::Dirty(3 * 64),
            "writeback address reconstructs tag AND set bits"
        );
    }

    #[test]
    fn fifo_dirty_eviction_reports_writeback_address() {
        let mut c = Cache::new(CacheConfig::with_policy(256, 2, ReplacementPolicy::Fifo));
        c.access(2 * 64, AccessKind::Write); // dirty line 2, set 0, oldest
        c.access(4 * 64, AccessKind::Read); // fills way 1 of set 0
        c.access(2 * 64, AccessKind::Write); // touch again; FIFO ignores it
        let (_, ev) = c.access(6 * 64, AccessKind::Read); // evicts line 2
        assert_eq!(ev, Eviction::Dirty(2 * 64));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn fifo_write_hit_does_not_refresh_insertion_age() {
        let mut c = Cache::new(CacheConfig::with_policy(256, 2, ReplacementPolicy::Fifo));
        c.access(0, AccessKind::Read); // line 0 oldest
        c.access(2 * 64, AccessKind::Read);
        c.access(0, AccessKind::Write); // write hit: dirties, no re-insert
        let (_, ev) = c.access(4 * 64, AccessKind::Read);
        assert_eq!(ev, Eviction::Dirty(0), "line 0 still evicted first");
    }

    #[test]
    fn access_range_matches_single_access_loop() {
        let mut batched = tiny();
        let mut scalar = tiny();
        // Interleave ranges that wrap sets, alias, and mix kinds.
        let ranges = [
            (0u64, 6u64, AccessKind::Read),
            (2 * 64, 5, AccessKind::Write),
            (0, 3, AccessKind::Read),
            (7 * 64, 4, AccessKind::Write),
            (0, 0, AccessKind::Read), // empty range is a no-op
        ];
        let mut follow_ups = Vec::new();
        for (base, n, kind) in ranges {
            let mut expected = Vec::new();
            let mut misses = 0;
            for i in 0..n {
                let addr = base + i * LINE_BYTES;
                let (hit, ev) = scalar.access(addr, kind);
                if !hit {
                    misses += 1;
                    expected.push((addr, kind));
                }
                if let Eviction::Dirty(victim) = ev {
                    expected.push((victim, AccessKind::Write));
                }
            }
            follow_ups.clear();
            let got = batched.access_range(base, n, kind, &mut follow_ups);
            assert_eq!(got, misses);
            assert_eq!(follow_ups, expected);
            assert_eq!(batched.stats(), scalar.stats());
        }
    }

    #[test]
    fn write_allocate_fills_on_write_miss() {
        let mut c = tiny();
        assert_eq!(c.access(128, AccessKind::Write).0, false);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(
            c.access(128, AccessKind::Read).0,
            true,
            "write allocated the line"
        );
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.reset();
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.stats(), &CacheStats::default());
        assert_eq!(c.access(0, AccessKind::Read).0, false);
    }

    #[test]
    fn miss_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        for i in 0..100u64 {
            c.access(i * 64, AccessKind::Read);
        }
        let mr = c.stats().miss_rate();
        assert!((0.0..=1.0).contains(&mr));
        assert_eq!(
            mr, 1.0,
            "streaming over 100 distinct lines in a 4-line cache"
        );
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny();
        for i in 0..32u64 {
            c.access(i * 64, AccessKind::Read);
        }
        assert_eq!(c.valid_lines(), 4, "2 sets x 2 ways");
    }
}
