//! Measurement noise from background processes, and `R`-repeat sampling.
//!
//! On real hardware, HPC readings of the same program vary run to run:
//! interrupts, other processes, and counter multiplexing perturb every
//! event. The paper mitigates this by repeating each measurement `R = 10`
//! times and averaging (§5.2). Here the true counts come from a
//! deterministic simulation, so the run-to-run variation is modelled
//! explicitly: each reading gets multiplicative jitter (proportional to the
//! count, modelling time-share dilation) plus additive background activity.

use rand::Rng;

use crate::events::{HpcCounts, HpcEvent, HpcSample};

/// Stochastic model of HPC measurement noise.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{HpcCounts, HpcEvent, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut truth = HpcCounts::default();
/// truth.set(HpcEvent::CacheMisses, 10_000);
/// let noisy = NoiseModel::default().measure(&truth, &mut rng);
/// let v = noisy.get(HpcEvent::CacheMisses);
/// assert!(v > 8_000.0 && v < 12_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Global multiplier on the per-event relative sigmas
    /// ([`event_sigma`](Self::event_sigma)); 1.0 = calibrated defaults,
    /// 0.0 = no multiplicative jitter.
    pub sigma_scale: f64,
    /// Mean additive background count, per event, scaled by
    /// [`background_weights`](Self::background_weights).
    pub background_mean: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            sigma_scale: 1.0,
            background_mean: 50.0,
        }
    }
}

impl NoiseModel {
    /// A noise-free model, useful for tests.
    pub fn noiseless() -> Self {
        Self {
            sigma_scale: 0.0,
            background_mean: 0.0,
        }
    }

    /// Per-event relative standard deviation of run-to-run jitter,
    /// calibrated to how the events behave on real hardware: events fed by
    /// speculative and prefetch traffic (`cache-references`,
    /// `L1-dcache-load-misses`, `LLC-store-misses`) fluctuate far more than
    /// retirement-side counts, and demand-miss counts (`cache-misses`,
    /// `LLC-load-misses`) sit in between.
    pub fn event_sigma(event: HpcEvent) -> f64 {
        match event {
            HpcEvent::Instructions => 0.008,
            HpcEvent::Branches => 0.010,
            HpcEvent::BranchMisses => 0.060,
            HpcEvent::CacheReferences => 0.100,
            HpcEvent::CacheMisses => 0.012,
            HpcEvent::L1dLoadMisses => 0.070,
            HpcEvent::L1iLoadMisses => 0.040,
            HpcEvent::LlcLoadMisses => 0.018,
            HpcEvent::LlcStoreMisses => 0.050,
        }
    }

    /// Relative weight of background activity per event: busy events like
    /// `instructions` absorb far more background counts than rare events
    /// like `LLC-store-misses`.
    pub fn background_weights(event: HpcEvent) -> f64 {
        match event {
            HpcEvent::Instructions => 40.0,
            HpcEvent::Branches => 8.0,
            HpcEvent::BranchMisses => 0.5,
            HpcEvent::CacheReferences => 2.0,
            HpcEvent::CacheMisses => 0.4,
            HpcEvent::L1dLoadMisses => 1.5,
            HpcEvent::L1iLoadMisses => 0.6,
            HpcEvent::LlcLoadMisses => 0.3,
            HpcEvent::LlcStoreMisses => 0.2,
        }
    }

    /// Draws one noisy reading of `truth` — the paper's `e_n^{(r)}`.
    pub fn measure(&self, truth: &HpcCounts, rng: &mut impl Rng) -> HpcSample {
        let mut sample = HpcSample::default();
        for event in HpcEvent::ALL {
            let t = truth.get(event) as f64;
            let sigma = self.sigma_scale * Self::event_sigma(event);
            let jitter = 1.0 + sigma * standard_normal(rng);
            let background =
                self.background_mean * Self::background_weights(event) * rng.gen_range(0.0..2.0);
            sample.set(event, (t * jitter + background).max(0.0));
        }
        sample
    }

    /// Repeats [`measure`](Self::measure) `repeats` times and averages —
    /// the paper's `Ē_n` with `R = repeats`.
    ///
    /// # Panics
    ///
    /// Panics if `repeats == 0`.
    pub fn measure_mean(&self, truth: &HpcCounts, repeats: usize, rng: &mut impl Rng) -> HpcSample {
        assert!(repeats > 0, "at least one repetition required");
        let samples: Vec<HpcSample> = (0..repeats).map(|_| self.measure(truth, rng)).collect();
        HpcSample::mean_of(&samples)
    }
}

/// Convenience wrapper binding a [`NoiseModel`] to a repetition count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    /// The noise model applied to each repetition.
    pub noise: NoiseModel,
    /// The paper's `R`.
    pub repeats: usize,
}

impl Default for Sampler {
    fn default() -> Self {
        Self {
            noise: NoiseModel::default(),
            repeats: 10,
        }
    }
}

impl Sampler {
    /// Mean of `repeats` noisy readings of `truth`.
    pub fn sample(&self, truth: &HpcCounts, rng: &mut impl Rng) -> HpcSample {
        self.noise.measure_mean(truth, self.repeats, rng)
    }

    /// Like [`sample`](Self::sample), but drawing from the private noise
    /// stream of item `index` under batch seed `seed`.
    ///
    /// This is the entropy contract of the parallel batch APIs: the stream
    /// is a pure function of `(seed, index)` (see
    /// [`advhunter_runtime::derive_seed`]), so a batch measurement is
    /// independent of worker scheduling and thread count.
    pub fn sample_indexed(&self, truth: &HpcCounts, seed: u64, index: u64) -> HpcSample {
        use rand::SeedableRng;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(advhunter_runtime::derive_seed(seed, index));
        self.sample(truth, &mut rng)
    }
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> HpcCounts {
        let mut t = HpcCounts::default();
        t.set(HpcEvent::Instructions, 1_000_000);
        t.set(HpcEvent::CacheMisses, 20_000);
        t
    }

    #[test]
    fn noiseless_model_reproduces_truth() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = NoiseModel::noiseless().measure(&truth(), &mut rng);
        assert_eq!(s.get(HpcEvent::Instructions), 1_000_000.0);
        assert_eq!(s.get(HpcEvent::CacheMisses), 20_000.0);
        assert_eq!(s.get(HpcEvent::Branches), 0.0);
    }

    #[test]
    fn readings_are_nonnegative_and_near_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = NoiseModel::default();
        for _ in 0..200 {
            let s = model.measure(&truth(), &mut rng);
            for e in HpcEvent::ALL {
                assert!(s.get(e) >= 0.0);
            }
            let cm = s.get(HpcEvent::CacheMisses);
            assert!((cm - 20_000.0).abs() < 3_000.0, "cache misses {cm}");
        }
    }

    #[test]
    fn averaging_reduces_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = NoiseModel::default();
        let spread = |vals: &[f64]| {
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let single: Vec<f64> = (0..300)
            .map(|_| model.measure(&truth(), &mut rng).get(HpcEvent::CacheMisses))
            .collect();
        let averaged: Vec<f64> = (0..300)
            .map(|_| {
                model
                    .measure_mean(&truth(), 10, &mut rng)
                    .get(HpcEvent::CacheMisses)
            })
            .collect();
        assert!(
            spread(&averaged) < 0.6 * spread(&single),
            "R=10 averaging should shrink the spread: {} vs {}",
            spread(&averaged),
            spread(&single)
        );
    }

    #[test]
    fn sampler_defaults_to_paper_r() {
        assert_eq!(Sampler::default().repeats, 10);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repeats_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        NoiseModel::default().measure_mean(&truth(), 0, &mut rng);
    }

    #[test]
    fn same_seed_same_measurement() {
        let model = NoiseModel::default();
        let a = model.measure(&truth(), &mut StdRng::seed_from_u64(7));
        let b = model.measure(&truth(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
