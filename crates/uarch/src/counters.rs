//! A `perf_event_open`-flavoured counter group over the simulated machine.

use crate::branch::BranchPredictor;
use crate::events::{HpcCounts, HpcEvent};
use crate::hierarchy::{MachineConfig, MemoryHierarchy};

/// Programs the nine [`HpcEvent`]s over a simulated machine and exposes the
/// enable / run / disable / read workflow of Linux `perf`.
///
/// Memory and branch activity routed through the group while it is enabled
/// is counted; activity while disabled still updates the microarchitectural
/// state (caches stay warm) but is excluded from the readings, mirroring how
/// a defender measures only the inference window.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{CounterGroup, HpcEvent, MachineConfig};
///
/// let mut g = CounterGroup::new(MachineConfig::default());
/// g.load(0x40);               // not yet counted
/// g.enable();
/// g.load(0x40);               // counted: L1d hit
/// g.retire_instructions(10);
/// g.disable();
/// assert_eq!(g.read().get(HpcEvent::Instructions), 10);
/// ```
#[derive(Debug, Clone)]
pub struct CounterGroup {
    memory: MemoryHierarchy,
    predictor: BranchPredictor,
    enabled: bool,
    instructions: u64,
    /// Snapshot of everything at the last `enable()`.
    baseline: HpcCounts,
}

impl CounterGroup {
    /// Creates a disabled group over a cold machine.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            memory: MemoryHierarchy::new(config),
            predictor: BranchPredictor::new(config.predictor_log2_entries),
            enabled: false,
            instructions: 0,
            baseline: HpcCounts::default(),
        }
    }

    /// Whether the group is currently counting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts counting from the current machine state.
    pub fn enable(&mut self) {
        self.baseline = self.absolute_counts();
        self.enabled = true;
    }

    /// Stops counting.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Reads the counters accumulated since the last [`enable`](Self::enable).
    pub fn read(&self) -> HpcCounts {
        self.absolute_counts().since(&self.baseline)
    }

    /// Resets the machine to cold caches and zeroed counters.
    pub fn reset_machine(&mut self) {
        self.memory.reset();
        self.predictor.reset();
        self.instructions = 0;
        self.baseline = HpcCounts::default();
    }

    /// Data load at `addr`.
    pub fn load(&mut self, addr: u64) {
        self.memory.load(addr);
    }

    /// Data store at `addr`.
    pub fn store(&mut self, addr: u64) {
        self.memory.store(addr);
    }

    /// Instruction fetch at `addr`.
    pub fn fetch(&mut self, addr: u64) {
        self.memory.fetch(addr);
    }

    /// Streaming data reads of `lines` consecutive cache lines starting at
    /// `base_addr` — equivalent to one [`load`](Self::load) per line in
    /// ascending order, simulated through the batched hierarchy path.
    pub fn stream_read(&mut self, base_addr: u64, lines: u64) {
        self.memory.load_range(base_addr, lines);
    }

    /// Streaming data writes of `lines` consecutive cache lines starting at
    /// `base_addr` — equivalent to one [`store`](Self::store) per line.
    pub fn stream_write(&mut self, base_addr: u64, lines: u64) {
        self.memory.store_range(base_addr, lines);
    }

    /// Instruction fetches of `lines` consecutive cache lines starting at
    /// `base_addr` — equivalent to one [`fetch`](Self::fetch) per line.
    pub fn fetch_range(&mut self, base_addr: u64, lines: u64) {
        self.memory.fetch_range(base_addr, lines);
    }

    /// Retires `n` non-branch instructions.
    pub fn retire_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Retires one conditional branch at `pc` with direction `taken`.
    pub fn branch(&mut self, pc: u64, taken: bool) {
        self.predictor.predict(pc, taken);
        self.instructions += 1;
    }

    /// Retires a whole counted loop's branches at once (fast path).
    pub fn loop_branches(&mut self, pc: u64, iterations: u64) {
        let (branches, _) = self.predictor.predict_loop(pc, iterations);
        self.instructions += branches;
    }

    /// Retires `count` perfectly predicted branches (calls/unconditional jumps).
    pub fn predicted_branches(&mut self, count: u64) {
        self.predictor.retire_predicted(count);
        self.instructions += count;
    }

    /// Direct access to the memory hierarchy (e.g. for occupancy checks).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.memory
    }

    fn absolute_counts(&self) -> HpcCounts {
        let mut counts = HpcCounts::default();
        counts.set(HpcEvent::Instructions, self.instructions);
        counts.set(HpcEvent::Branches, self.predictor.branches());
        counts.set(HpcEvent::BranchMisses, self.predictor.misses());
        self.memory.fill_counts(&mut counts);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_reports_only_enabled_window() {
        let mut g = CounterGroup::new(MachineConfig::default());
        g.load(0);
        g.retire_instructions(100);
        g.enable();
        g.load(64);
        g.retire_instructions(5);
        g.disable();
        let c = g.read();
        assert_eq!(c.get(HpcEvent::Instructions), 5);
        assert_eq!(c.get(HpcEvent::L1dLoadMisses), 1);
    }

    #[test]
    fn warm_cache_before_enable_suppresses_misses() {
        let mut g = CounterGroup::new(MachineConfig::default());
        g.load(0); // warm the line
        g.enable();
        g.load(0);
        assert_eq!(g.read().get(HpcEvent::CacheMisses), 0);
    }

    #[test]
    fn branch_events_flow_into_counts() {
        let mut g = CounterGroup::new(MachineConfig::default());
        g.enable();
        g.loop_branches(0x40, 128);
        let c = g.read();
        assert_eq!(c.get(HpcEvent::Branches), 128);
        assert!(c.get(HpcEvent::BranchMisses) <= 2);
        assert_eq!(
            c.get(HpcEvent::Instructions),
            128,
            "branches retire as instructions"
        );
    }

    #[test]
    fn predicted_branches_never_miss() {
        let mut g = CounterGroup::new(MachineConfig::default());
        g.enable();
        g.predicted_branches(50);
        let c = g.read();
        assert_eq!(c.get(HpcEvent::Branches), 50);
        assert_eq!(c.get(HpcEvent::BranchMisses), 0);
    }

    #[test]
    fn reset_machine_restores_cold_state() {
        let mut g = CounterGroup::new(MachineConfig::default());
        g.enable();
        g.load(0);
        g.reset_machine();
        g.enable();
        g.load(0);
        assert_eq!(g.read().get(HpcEvent::CacheMisses), 1, "cold again");
    }
}
