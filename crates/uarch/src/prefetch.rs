//! A next-line hardware prefetcher.
//!
//! Real parts aggressively prefetch on streaming access patterns, and that
//! traffic lands in `cache-references` (and can displace useful lines).
//! The simulator keeps the prefetcher **off by default** — the calibrated
//! noise model already accounts for prefetch-induced variance statistically
//! — but the mechanism is available for the microarchitectural ablations
//! and for users who want the extra fidelity.

/// Configuration of the next-line prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Whether the prefetcher issues any requests.
    pub enabled: bool,
    /// How many sequential lines ahead to fetch on a detected stream.
    pub degree: u8,
    /// Consecutive-line accesses needed before a stream is "confirmed".
    pub confirm_after: u8,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            degree: 2,
            confirm_after: 2,
        }
    }
}

impl PrefetchConfig {
    /// An enabled prefetcher with typical settings.
    pub fn aggressive() -> Self {
        Self {
            enabled: true,
            degree: 4,
            confirm_after: 1,
        }
    }
}

/// Detects sequential streams over line addresses and proposes prefetch
/// candidates.
///
/// # Example
///
/// ```
/// use advhunter_uarch::{NextLinePrefetcher, PrefetchConfig};
///
/// let mut pf = NextLinePrefetcher::new(PrefetchConfig::aggressive());
/// assert!(pf.observe(0x1000).is_empty(), "first touch: no stream yet");
/// let lines = pf.observe(0x1040); // sequential: stream confirmed
/// assert_eq!(lines, vec![0x1080, 0x10C0, 0x1100, 0x1140]);
/// ```
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    config: PrefetchConfig,
    last_line: Option<u64>,
    run_length: u8,
    issued: u64,
}

impl NextLinePrefetcher {
    /// Creates a prefetcher.
    pub fn new(config: PrefetchConfig) -> Self {
        Self {
            config,
            last_line: None,
            run_length: 0,
            issued: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PrefetchConfig {
        &self.config
    }

    /// Total prefetch requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access at byte address `addr` and returns the byte
    /// addresses the prefetcher would fetch.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        if !self.config.enabled {
            return Vec::new();
        }
        let line = addr / crate::LINE_BYTES;
        let sequential = self.last_line == Some(line.wrapping_sub(1));
        if self.last_line == Some(line) {
            // Same line: no state change, no prefetch.
            return Vec::new();
        }
        self.run_length = if sequential {
            self.run_length.saturating_add(1)
        } else {
            0
        };
        self.last_line = Some(line);
        if self.run_length < self.config.confirm_after {
            return Vec::new();
        }
        let out: Vec<u64> = (1..=self.config.degree as u64)
            .map(|d| (line + d) * crate::LINE_BYTES)
            .collect();
        self.issued += out.len() as u64;
        out
    }

    /// Resets stream-detection state and counters.
    pub fn reset(&mut self) {
        self.last_line = None;
        self.run_length = 0;
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut pf = NextLinePrefetcher::new(PrefetchConfig::default());
        for i in 0..100u64 {
            assert!(pf.observe(i * 64).is_empty());
        }
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn stream_is_confirmed_after_threshold() {
        let mut pf = NextLinePrefetcher::new(PrefetchConfig {
            enabled: true,
            degree: 1,
            confirm_after: 2,
        });
        assert!(pf.observe(0).is_empty());
        assert!(pf.observe(64).is_empty(), "run length 1 < 2");
        assert_eq!(pf.observe(128), vec![192], "run length 2: confirmed");
        assert_eq!(pf.observe(192), vec![256], "stream continues");
    }

    #[test]
    fn random_accesses_never_confirm() {
        let mut pf = NextLinePrefetcher::new(PrefetchConfig::aggressive());
        // confirm_after = 1 still needs one sequential pair.
        assert!(pf.observe(0).is_empty());
        assert!(pf.observe(10 * 64).is_empty());
        assert!(pf.observe(3 * 64).is_empty());
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn repeated_same_line_does_not_advance_stream() {
        let mut pf = NextLinePrefetcher::new(PrefetchConfig::aggressive());
        pf.observe(0);
        assert!(pf.observe(0).is_empty());
        assert!(pf.observe(32).is_empty(), "same line, different offset");
        let fetched = pf.observe(64);
        assert!(!fetched.is_empty(), "sequential line after the repeats");
    }

    #[test]
    fn degree_controls_fanout() {
        let mut pf = NextLinePrefetcher::new(PrefetchConfig {
            enabled: true,
            degree: 3,
            confirm_after: 1,
        });
        pf.observe(0);
        let lines = pf.observe(64);
        assert_eq!(lines, vec![128, 192, 256]);
        assert_eq!(pf.issued(), 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut pf = NextLinePrefetcher::new(PrefetchConfig::aggressive());
        pf.observe(0);
        pf.observe(64);
        pf.reset();
        assert_eq!(pf.issued(), 0);
        assert!(pf.observe(128).is_empty(), "no stream after reset");
    }
}
