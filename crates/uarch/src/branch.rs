//! A bimodal (two-bit saturating counter) branch predictor.

/// Outcome of one predicted branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the prediction matched the actual direction.
    pub correct: bool,
}

/// Bimodal branch predictor: a table of two-bit saturating counters indexed
/// by (hashed) branch PC.
///
/// Inference kernels are dominated by loop back-edges, which this predictor
/// learns after one iteration — reproducing the paper's observation that
/// `branches` and `branch-misses` carry almost no input-dependent signal.
///
/// # Example
///
/// ```
/// use advhunter_uarch::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(10);
/// // A loop branch: taken 99 times, then falls through once.
/// let (branches, misses) = bp.predict_loop(0x400, 100);
/// assert_eq!(branches, 100);
/// assert!(misses <= 2, "warm-up plus the final fall-through");
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: u64,
    branches: u64,
    misses: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^log2_entries` counters, initialized to
    /// weakly-taken.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or exceeds 24.
    pub fn new(log2_entries: u32) -> Self {
        assert!((1..=24).contains(&log2_entries), "table size out of range");
        let n = 1usize << log2_entries;
        Self {
            counters: vec![2; n], // weakly taken
            mask: (n - 1) as u64,
            branches: 0,
            misses: 0,
        }
    }

    /// Total predicted branches.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Total mispredictions.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets prediction state and counters.
    pub fn reset(&mut self) {
        self.counters.fill(2);
        self.branches = 0;
        self.misses = 0;
    }

    /// Predicts and retires a single branch at `pc` with direction `taken`.
    pub fn predict(&mut self, pc: u64, taken: bool) -> BranchOutcome {
        let idx = (hash_pc(pc) & self.mask) as usize;
        let counter = &mut self.counters[idx];
        let predicted_taken = *counter >= 2;
        let correct = predicted_taken == taken;
        self.branches += 1;
        if !correct {
            self.misses += 1;
        }
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        BranchOutcome { correct }
    }

    /// Fast path for a counted loop at `pc`: `iterations - 1` taken
    /// back-edges followed by one not-taken exit. Returns
    /// `(branches, misses)` contributed.
    ///
    /// Equivalent to calling [`predict`](Self::predict) in a loop, but runs
    /// in O(1) for hot predictors — inference traces contain millions of
    /// loop branches.
    pub fn predict_loop(&mut self, pc: u64, iterations: u64) -> (u64, u64) {
        if iterations == 0 {
            return (0, 0);
        }
        let idx = (hash_pc(pc) & self.mask) as usize;
        let counter = &mut self.counters[idx];
        let mut misses = 0u64;
        let taken_count = iterations - 1;

        // Simulate the first (at most) two taken iterations exactly; after
        // that the counter is saturated at 3 and every taken branch hits.
        let mut c = *counter;
        let exact = taken_count.min(2);
        for _ in 0..exact {
            if c < 2 {
                misses += 1;
            }
            c = (c + 1).min(3);
        }
        // The final not-taken exit: mispredicted iff counter predicts taken.
        if c >= 2 {
            misses += 1;
        }
        c = c.saturating_sub(1);
        *counter = c;

        self.branches += iterations;
        self.misses += misses;
        (iterations, misses)
    }

    /// Retires `count` always-taken (or otherwise perfectly predicted)
    /// branches without touching the table — a fast path for unconditional
    /// jumps and calls.
    pub fn retire_predicted(&mut self, count: u64) {
        self.branches += count;
    }
}

fn hash_pc(pc: u64) -> u64 {
    // Fibonacci hashing spreads structured PCs across the table.
    pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut bp = BranchPredictor::new(8);
        for _ in 0..100 {
            bp.predict(0x1234, true);
        }
        assert_eq!(bp.branches(), 100);
        assert!(bp.misses() <= 1, "only possible warm-up miss");
    }

    #[test]
    fn alternating_branch_mispredicts_heavily() {
        let mut bp = BranchPredictor::new(8);
        let mut taken = false;
        for _ in 0..100 {
            bp.predict(0x88, taken);
            taken = !taken;
        }
        assert!(
            bp.misses() >= 40,
            "bimodal cannot learn alternation: {}",
            bp.misses()
        );
    }

    #[test]
    fn predict_loop_matches_explicit_simulation() {
        for iters in [1u64, 2, 3, 10, 1000] {
            let mut fast = BranchPredictor::new(8);
            let mut slow = BranchPredictor::new(8);
            let (b, m) = fast.predict_loop(0x40, iters);
            for i in 0..iters {
                slow.predict(0x40, i + 1 < iters);
            }
            assert_eq!(b, slow.branches(), "iters={iters}");
            assert_eq!(m, slow.misses(), "iters={iters}");
            assert_eq!(fast.branches(), slow.branches());
            assert_eq!(fast.misses(), slow.misses());
        }
    }

    #[test]
    fn repeated_loops_settle_to_one_miss_per_execution() {
        let mut bp = BranchPredictor::new(8);
        bp.predict_loop(0x40, 64);
        let before = bp.misses();
        bp.predict_loop(0x40, 64);
        let per_loop = bp.misses() - before;
        assert_eq!(per_loop, 1, "steady state: only the exit mispredicts");
    }

    #[test]
    fn retire_predicted_counts_branches_only() {
        let mut bp = BranchPredictor::new(8);
        bp.retire_predicted(42);
        assert_eq!(bp.branches(), 42);
        assert_eq!(bp.misses(), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut bp = BranchPredictor::new(8);
        bp.predict(1, false);
        bp.reset();
        assert_eq!(bp.branches(), 0);
        assert_eq!(bp.misses(), 0);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut bp = BranchPredictor::new(12);
        // Train pc A taken, pc B not-taken; both should be learned.
        for _ in 0..10 {
            bp.predict(0xA000, true);
            bp.predict(0xB000, false);
        }
        let before = bp.misses();
        bp.predict(0xA000, true);
        bp.predict(0xB000, false);
        assert_eq!(bp.misses(), before);
    }
}
