//! Property-based tests for the microarchitecture simulator.

use advhunter_uarch::{
    AccessKind, BranchPredictor, Cache, CacheConfig, HpcEvent, MachineConfig, MemoryHierarchy,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_hits_plus_misses_equal_accesses(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..400),
        writes in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        for (a, w) in addrs.iter().zip(writes.iter().cycle()) {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            c.access(*a, kind);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.misses() <= s.accesses());
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..300)
    ) {
        let cfg = CacheConfig::new(2048, 2);
        let capacity = (cfg.num_sets() as usize) * cfg.ways();
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a, AccessKind::Read);
            prop_assert!(c.valid_lines() <= capacity);
        }
    }

    #[test]
    fn repeated_access_to_one_line_hits_after_first(
        addr in 0u64..1_000_000, n in 2usize..50
    ) {
        let mut c = Cache::new(CacheConfig::new(4096, 4));
        c.access(addr, AccessKind::Read);
        for _ in 1..n {
            let (hit, _) = c.access(addr, AccessKind::Read);
            prop_assert!(hit);
        }
    }

    #[test]
    fn access_range_matches_loop_of_single_accesses(
        lines in proptest::collection::vec(0u64..512, 1..40),
        lens in proptest::collection::vec(0u64..48, 1..40),
        writes in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut batched = Cache::new(CacheConfig::new(2048, 2));
        let mut scalar = Cache::new(CacheConfig::new(2048, 2));
        let mut follow_ups = Vec::new();
        for ((line, n), w) in lines
            .iter()
            .zip(lens.iter().cycle())
            .zip(writes.iter().cycle())
        {
            let base = line * 64;
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            let mut expected = Vec::new();
            let mut expected_misses = 0u64;
            for i in 0..*n {
                let addr = base + i * 64;
                let (hit, ev) = scalar.access(addr, kind);
                if !hit {
                    expected_misses += 1;
                    expected.push((addr, kind));
                }
                if let advhunter_uarch::Eviction::Dirty(victim) = ev {
                    expected.push((victim, AccessKind::Write));
                }
            }
            follow_ups.clear();
            let misses = batched.access_range(base, *n, kind, &mut follow_ups);
            prop_assert_eq!(misses, expected_misses);
            prop_assert_eq!(&follow_ups, &expected);
            prop_assert_eq!(batched.stats(), scalar.stats());
        }
    }

    #[test]
    fn hierarchy_range_apis_match_scalar_loops(
        lines in proptest::collection::vec(0u64..2048, 1..30),
        lens in proptest::collection::vec(0u64..32, 1..30),
        ops in proptest::collection::vec(0u8..3, 1..30),
    ) {
        let mut batched = MemoryHierarchy::new(MachineConfig::default());
        let mut scalar = MemoryHierarchy::new(MachineConfig::default());
        for ((line, n), op) in lines
            .iter()
            .zip(lens.iter().cycle())
            .zip(ops.iter().cycle())
        {
            let base = line * 64;
            match op {
                0 => {
                    batched.load_range(base, *n);
                    for i in 0..*n { scalar.load(base + i * 64); }
                }
                1 => {
                    batched.store_range(base, *n);
                    for i in 0..*n { scalar.store(base + i * 64); }
                }
                _ => {
                    batched.fetch_range(base, *n);
                    for i in 0..*n { scalar.fetch(base + i * 64); }
                }
            }
            prop_assert_eq!(batched.stats(), scalar.stats());
        }
    }

    #[test]
    fn hierarchy_event_invariants(
        addrs in proptest::collection::vec(0u64..4_000_000, 1..500),
        ops in proptest::collection::vec(0u8..3, 1..500),
    ) {
        let mut m = MemoryHierarchy::new(MachineConfig::default());
        for (a, op) in addrs.iter().zip(ops.iter().cycle()) {
            match op {
                0 => m.load(*a),
                1 => m.store(*a),
                _ => m.fetch(*a),
            }
        }
        let s = m.stats();
        // LLC sees only L1 misses and write-backs.
        prop_assert!(s.llc_loads <= s.l1d_load_misses + s.l1i_fetch_misses);
        prop_assert!(s.llc_load_misses <= s.llc_loads);
        prop_assert!(s.llc_store_misses <= s.llc_stores);
        prop_assert!(s.l1d_load_misses <= s.l1d_loads);
        prop_assert!(s.l1i_fetch_misses <= s.l1i_fetches);
        // perf identity: cache-misses = LLC load misses + LLC store misses.
        prop_assert_eq!(s.llc_misses(), s.llc_load_misses + s.llc_store_misses);
        prop_assert!(s.llc_misses() <= s.llc_references());
    }

    #[test]
    fn predictor_misses_never_exceed_branches(
        dirs in proptest::collection::vec(any::<bool>(), 1..300),
        pcs in proptest::collection::vec(0u64..1024, 1..300),
    ) {
        let mut bp = BranchPredictor::new(8);
        for (d, pc) in dirs.iter().zip(pcs.iter().cycle()) {
            bp.predict(*pc, *d);
        }
        prop_assert_eq!(bp.branches(), dirs.len() as u64);
        prop_assert!(bp.misses() <= bp.branches());
    }

    #[test]
    fn predict_loop_equals_elementwise_prediction(
        iters in proptest::collection::vec(1u64..64, 1..20),
        pcs in proptest::collection::vec(0u64..256, 1..20),
    ) {
        let mut fast = BranchPredictor::new(8);
        let mut slow = BranchPredictor::new(8);
        for (n, pc) in iters.iter().zip(pcs.iter().cycle()) {
            fast.predict_loop(*pc, *n);
            for i in 0..*n {
                slow.predict(*pc, i + 1 < *n);
            }
        }
        prop_assert_eq!(fast.branches(), slow.branches());
        prop_assert_eq!(fast.misses(), slow.misses());
    }

    #[test]
    fn noise_mean_tracks_truth(seed in 0u64..1000) {
        use advhunter_uarch::{HpcCounts, NoiseModel};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut truth = HpcCounts::default();
        truth.set(HpcEvent::CacheMisses, 100_000);
        let model = NoiseModel::default();
        let mean = model.measure_mean(&truth, 50, &mut rng).get(HpcEvent::CacheMisses);
        prop_assert!((mean - 100_000.0).abs() < 2_000.0, "mean {mean}");
    }
}
