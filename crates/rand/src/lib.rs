//! A self-contained, dependency-free drop-in for the subset of the `rand`
//! 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rand` crate
//! cannot be fetched; this workspace member shadows it (the workspace
//! dependency `rand` points here by path). Only the surface the repo
//! actually calls is provided:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive, integer and
//!   float), `gen_bool`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! [`rngs::StdRng`] here is xoshiro256++ seeded through SplitMix64 — *not*
//! the ChaCha12 generator of the real crate, so absolute streams differ
//! from upstream `rand`. Every consumer in this repo only relies on
//! seed-determinism (same seed ⇒ same stream), which holds.

pub mod rngs;
pub mod seq;

/// The raw generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (uniform over
    /// the full integer range, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types drawable uniformly from a range via [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "gen_range: empty range");
                // Modulo reduction: the bias over a u64 stream is far below
                // anything observable in this simulator's span sizes.
                (lo_w + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                let unit = <$t as Standard>::sample_standard(rng);
                // A half-open unit draw keeps `lo..hi` half-open; for
                // inclusive ranges the endpoint has measure zero anyway.
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        let mut rng = StdRng::seed_from_u64(4);
        let seen: std::collections::HashSet<u8> = (0..500).map(|_| rng.gen_range(0u8..4)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(7);
        let by_ref = &mut rng;
        let _ = takes_impl(by_ref);
        let _ = takes_impl(&mut rng);
    }
}
