//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ with its
/// state expanded from the seed by SplitMix64 (the initialization the
/// xoshiro authors recommend).
///
/// Statistically strong, fast, and — the property everything in this repo
/// depends on — a pure function of the `u64` seed. It intentionally does
/// not match the byte stream of upstream `rand`'s ChaCha12 `StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<u64> = first.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        // SplitMix64 expansion keeps the all-zero seed healthy.
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
