//! Sequence helpers (`rand::seq`).

use crate::{Rng, SampleUniform};

/// Slice extensions driven by a generator.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, high-to-low, matching the
    /// upstream algorithm shape so draws-per-shuffle agree).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_uniform(rng, 0, i, true);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes_and_is_seed_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_slices_are_fine() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [7u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [7]);
    }
}
