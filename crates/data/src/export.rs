//! Image export: write synthetic images (and adversarial perturbations) to
//! PGM/PPM files for visual inspection.
//!
//! Both formats are written in their binary variants (`P5`/`P6`), readable
//! by practically every image viewer, with no external dependencies.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use advhunter_tensor::Tensor;

/// Error writing an image file.
#[derive(Debug)]
pub enum ExportImageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The tensor is not a 1- or 3-channel CHW image.
    UnsupportedShape(Vec<usize>),
}

impl fmt::Display for ExportImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "image export I/O failed: {e}"),
            Self::UnsupportedShape(dims) => {
                write!(
                    f,
                    "expected a 1- or 3-channel CHW image, got shape {dims:?}"
                )
            }
        }
    }
}

impl std::error::Error for ExportImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ExportImageError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes a CHW image tensor (values in `[0, 1]`) as binary PGM (1 channel)
/// or PPM (3 channels).
///
/// Values are clamped to `[0, 1]` and quantized to 8 bits.
///
/// # Errors
///
/// Returns [`ExportImageError`] for unsupported shapes or I/O failures.
///
/// # Example
///
/// ```no_run
/// use advhunter_data::export::write_image;
/// use advhunter_tensor::Tensor;
///
/// let img = Tensor::full(&[3, 8, 8], 0.5);
/// write_image(&img, std::path::Path::new("/tmp/example.ppm"))?;
/// # Ok::<(), advhunter_data::export::ExportImageError>(())
/// ```
pub fn write_image(image: &Tensor, path: &Path) -> Result<(), ExportImageError> {
    if image.shape().rank() != 3 {
        return Err(ExportImageError::UnsupportedShape(
            image.shape().dims().to_vec(),
        ));
    }
    let (c, h, w) = image.shape().as_chw();
    if c != 1 && c != 3 {
        return Err(ExportImageError::UnsupportedShape(
            image.shape().dims().to_vec(),
        ));
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(64 + c * h * w);
    let magic = if c == 1 { "P5" } else { "P6" };
    buf.extend_from_slice(format!("{magic}\n{w} {h}\n255\n").as_bytes());
    let data = image.data();
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                let v = data[(ch * h + y) * w + x].clamp(0.0, 1.0);
                buf.push((v * 255.0).round() as u8);
            }
        }
    }
    fs::File::create(path)?.write_all(&buf)?;
    Ok(())
}

/// Writes the (scaled, recentered) difference of two same-shape images —
/// useful for visualizing adversarial perturbations. The difference is
/// mapped as `0.5 + gain · (a − b)` and clamped.
///
/// # Errors
///
/// Returns [`ExportImageError`] for unsupported shapes or I/O failures.
///
/// # Panics
///
/// Panics if the two images differ in shape.
pub fn write_difference(
    a: &Tensor,
    b: &Tensor,
    gain: f32,
    path: &Path,
) -> Result<(), ExportImageError> {
    let mut diff = a - b;
    diff.scale_inplace(gain);
    diff.map_inplace(|v| (0.5 + v).clamp(0.0, 1.0));
    write_image(&diff, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("advhunter-export-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_valid_ppm_header_and_size() {
        let img = Tensor::full(&[3, 4, 6], 0.25);
        let path = tempfile("a.ppm");
        write_image(&img, &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n6 4\n255\n"));
        assert_eq!(bytes.len(), b"P6\n6 4\n255\n".len() + 3 * 4 * 6);
        // 0.25 -> 64.
        assert_eq!(bytes[b"P6\n6 4\n255\n".len()], 64);
    }

    #[test]
    fn writes_valid_pgm_for_grayscale() {
        let img = Tensor::full(&[1, 2, 2], 1.0);
        let path = tempfile("a.pgm");
        write_image(&img, &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert!(bytes.ends_with(&[255, 255, 255, 255]));
    }

    #[test]
    fn rejects_unsupported_channel_counts() {
        let img = Tensor::zeros(&[2, 4, 4]);
        assert!(matches!(
            write_image(&img, &tempfile("bad.ppm")),
            Err(ExportImageError::UnsupportedShape(_))
        ));
    }

    #[test]
    fn difference_maps_zero_to_midgray() {
        let a = Tensor::full(&[1, 2, 2], 0.7);
        let path = tempfile("diff.pgm");
        write_difference(&a, &a, 5.0, &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        let pixel = bytes[bytes.len() - 1];
        assert!((126..=129).contains(&pixel), "mid-gray, got {pixel}");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut img = Tensor::zeros(&[1, 1, 2]);
        img.data_mut()[0] = -3.0;
        img.data_mut()[1] = 3.0;
        let path = tempfile("clamp.pgm");
        write_image(&img, &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert_eq!(&bytes[bytes.len() - 2..], &[0, 255]);
    }
}
