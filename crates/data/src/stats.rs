//! Dataset statistics: per-class pixel statistics and a class-confusability
//! matrix — useful for sanity-checking synthesized datasets against the
//! properties the detector relies on (distinct, multimodal classes).

use advhunter_tensor::Tensor;

use crate::Dataset;

/// Pixel statistics of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The class index.
    pub class: usize,
    /// Number of images.
    pub count: usize,
    /// Mean image.
    pub mean_image: Tensor,
    /// Mean pixel value over all images.
    pub mean: f32,
    /// Pixel standard deviation over all images.
    pub std: f32,
    /// Mean within-class distance of an image to the class mean (L2).
    pub spread: f32,
}

/// Statistics of a whole dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    per_class: Vec<ClassStats>,
}

impl DatasetStats {
    /// Computes statistics for every class of `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn compute(dataset: &Dataset) -> Self {
        assert!(!dataset.is_empty(), "statistics of an empty dataset");
        let dims = dataset.dims().to_vec();
        let per_class = (0..dataset.num_classes())
            .map(|class| {
                let images = dataset.images_of_class(class);
                let count = images.len();
                let mut mean_image = Tensor::zeros(&dims);
                for img in &images {
                    mean_image.add_scaled(img, 1.0 / count.max(1) as f32);
                }
                let mut sum = 0.0f64;
                let mut sum_sq = 0.0f64;
                let mut n = 0usize;
                let mut spread = 0.0f32;
                for img in &images {
                    for &v in img.data() {
                        sum += v as f64;
                        sum_sq += (v as f64) * (v as f64);
                        n += 1;
                    }
                    spread += (*img - &mean_image).l2_norm();
                }
                let mean = (sum / n.max(1) as f64) as f32;
                let var = (sum_sq / n.max(1) as f64 - (sum / n.max(1) as f64).powi(2)).max(0.0);
                ClassStats {
                    class,
                    count,
                    mean_image,
                    mean,
                    std: (var as f32).sqrt(),
                    spread: spread / count.max(1) as f32,
                }
            })
            .collect();
        Self { per_class }
    }

    /// Statistics of class `c`.
    pub fn class(&self, c: usize) -> &ClassStats {
        &self.per_class[c]
    }

    /// Number of classes covered.
    pub fn num_classes(&self) -> usize {
        self.per_class.len()
    }

    /// L2 distance between two class mean images.
    pub fn between_class_distance(&self, a: usize, b: usize) -> f32 {
        (&self.per_class[a].mean_image - &self.per_class[b].mean_image).l2_norm()
    }

    /// Fisher-style separability of two classes: distance between means
    /// divided by the average within-class spread. Values well above 1 mean
    /// the classes are easy; near or below 1 they are confusable.
    pub fn separability(&self, a: usize, b: usize) -> f32 {
        let spread = 0.5 * (self.per_class[a].spread + self.per_class[b].spread);
        if spread <= 0.0 {
            return f32::INFINITY;
        }
        self.between_class_distance(a, b) / spread
    }

    /// The most confusable pair of distinct classes (lowest separability).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two classes are present.
    pub fn most_confusable_pair(&self) -> (usize, usize, f32) {
        assert!(self.num_classes() >= 2, "need at least two classes");
        let mut best = (0, 1, f32::INFINITY);
        for a in 0..self.num_classes() {
            for b in a + 1..self.num_classes() {
                let s = self.separability(a, b);
                if s < best.2 {
                    best = (a, b, s);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_dataset() -> Dataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let jitter = (i % 3) as f32 * 0.01;
            images.push(Tensor::full(&[1, 2, 2], 0.2 + jitter));
            labels.push(0);
            images.push(Tensor::full(&[1, 2, 2], 0.8 + jitter));
            labels.push(1);
        }
        Dataset::new("stats-test", images, labels, 2)
    }

    #[test]
    fn per_class_means_are_correct() {
        let stats = DatasetStats::compute(&two_class_dataset());
        assert_eq!(stats.num_classes(), 2);
        assert!((stats.class(0).mean - 0.21).abs() < 0.01);
        assert!((stats.class(1).mean - 0.81).abs() < 0.01);
        assert_eq!(stats.class(0).count, 10);
    }

    #[test]
    fn distinct_classes_are_separable() {
        let stats = DatasetStats::compute(&two_class_dataset());
        assert!(stats.between_class_distance(0, 1) > 1.0);
        assert!(stats.separability(0, 1) > 5.0, "tight classes far apart");
        assert_eq!(stats.separability(0, 1), stats.separability(1, 0));
    }

    #[test]
    fn identical_classes_are_confusable() {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..6 {
            images.push(Tensor::full(&[1, 2, 2], 0.5 + (i % 3) as f32 * 0.1));
            labels.push(i % 2);
        }
        let stats = DatasetStats::compute(&Dataset::new("same", images, labels, 2));
        let (_, _, s) = stats.most_confusable_pair();
        assert!(
            s < 1.0,
            "identical distributions must look confusable, got {s}"
        );
    }

    #[test]
    fn synthetic_scenarios_have_separable_classes() {
        // 32 images per class so the separability statistic is not
        // dominated by small-sample noise in the per-class means. The
        // thresholds are per family: the CIFAR-10 stand-in is deliberately
        // the hardest (heavy pixel noise and jitter keep model accuracy
        // near the paper's 88 %), so its best pixel-space separability
        // sits below 1 while the cleaner families clear it.
        let sizes = crate::SplitSizes {
            train: 32,
            val: 1,
            test: 1,
        };
        for (name, split, min_best) in [
            (
                "fashion",
                crate::scenarios::fashion_mnist_like(5, &sizes),
                1.0,
            ),
            ("cifar", crate::scenarios::cifar10_like(5, &sizes), 0.5),
            ("gtsrb", crate::scenarios::gtsrb_like(5, &sizes), 1.0),
        ] {
            let stats = DatasetStats::compute(&split.train);
            let n = split.train.num_classes();
            let (a, b, min_s) = stats.most_confusable_pair();
            assert!(
                min_s > 0.1,
                "{name}: classes {a},{b} collapsed: separability {min_s}"
            );
            let mut max_s = 0.0f32;
            for x in 0..n {
                for y in x + 1..n {
                    max_s = max_s.max(stats.separability(x, y));
                }
            }
            assert!(
                max_s > min_best,
                "{name}: no separable pair at all: {max_s}"
            );
        }
    }
}
