//! Labeled image collections and train/val/test splits.

use advhunter_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labeled set of CHW images.
///
/// # Example
///
/// ```
/// use advhunter_data::Dataset;
/// use advhunter_tensor::Tensor;
///
/// let ds = Dataset::new(
///     "toy",
///     vec![Tensor::zeros(&[1, 2, 2]), Tensor::ones(&[1, 2, 2])],
///     vec![0, 1],
///     2,
/// );
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.indices_of_class(1), vec![1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` differ in length, a label is out of
    /// range, or images disagree on shape.
    pub fn new(name: &str, images: Vec<Tensor>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.len(), labels.len(), "one label per image");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        if let Some(first) = images.first() {
            assert!(
                images.iter().all(|i| i.shape() == first.shape()),
                "all images must share one shape"
            );
        }
        Self {
            name: name.to_string(),
            images,
            labels,
            num_classes,
        }
    }

    /// Dataset name (e.g. `"cifar10-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// CHW dimensions of each image.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn dims(&self) -> &[usize] {
        self.images
            .first()
            .expect("dims of empty dataset")
            .shape()
            .dims()
    }

    /// The images.
    pub fn images(&self) -> &[Tensor] {
        &self.images
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Image `i` and its label.
    pub fn item(&self, i: usize) -> (&Tensor, usize) {
        (&self.images[i], self.labels[i])
    }

    /// Indices of every image of class `c`.
    pub fn indices_of_class(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == c).then_some(i))
            .collect()
    }

    /// Images of class `c` (borrowed).
    pub fn images_of_class(&self, c: usize) -> Vec<&Tensor> {
        self.indices_of_class(c)
            .into_iter()
            .map(|i| &self.images[i])
            .collect()
    }

    /// A new dataset with at most `per_class` randomly chosen images per
    /// class (used for the validation-size sweep, paper Figure 6).
    pub fn subsample_per_class(&self, per_class: usize, rng: &mut impl Rng) -> Dataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for c in 0..self.num_classes {
            let mut idx = self.indices_of_class(c);
            idx.shuffle(rng);
            for &i in idx.iter().take(per_class) {
                images.push(self.images[i].clone());
                labels.push(c);
            }
        }
        Dataset::new(&self.name, images, labels, self.num_classes)
    }
}

/// Images per class in each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSizes {
    /// Training images per class.
    pub train: usize,
    /// Clean validation images per class (the defender's `M` budget pool).
    pub val: usize,
    /// Held-out test images per class.
    pub test: usize,
}

impl Default for SplitSizes {
    fn default() -> Self {
        Self {
            train: 150,
            val: 80,
            test: 60,
        }
    }
}

/// A train/val/test split of one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitDataset {
    /// Training split.
    pub train: Dataset,
    /// Validation split (clean images the defender may use).
    pub val: Dataset,
    /// Test split.
    pub test: Dataset,
}

impl SplitDataset {
    /// The per-class [`SplitSizes`] this split was generated from.
    ///
    /// Scenario splits are class-balanced (every generator produces the
    /// same count per class), so the sizes are recoverable as
    /// `len / num_classes` — useful for re-deriving the pipeline
    /// configuration that addresses an existing split's artifacts.
    pub fn sizes_per_class(&self) -> SplitSizes {
        let per_class = |d: &Dataset| {
            if d.num_classes() == 0 {
                0
            } else {
                d.len() / d.num_classes()
            }
        };
        SplitSizes {
            train: per_class(&self.train),
            val: per_class(&self.val),
            test: per_class(&self.test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n_per_class: usize, classes: usize) -> Dataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            for i in 0..n_per_class {
                images.push(Tensor::full(&[1, 2, 2], (c * 100 + i) as f32));
                labels.push(c);
            }
        }
        Dataset::new("toy", images, labels, classes)
    }

    #[test]
    fn class_indexing_finds_all_members() {
        let ds = toy(3, 4);
        for c in 0..4 {
            assert_eq!(ds.indices_of_class(c).len(), 3);
            assert!(ds.indices_of_class(c).iter().all(|&i| ds.labels()[i] == c));
        }
    }

    #[test]
    fn subsample_caps_per_class() {
        let ds = toy(10, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let sub = ds.subsample_per_class(4, &mut rng);
        assert_eq!(sub.len(), 12);
        for c in 0..3 {
            assert_eq!(sub.indices_of_class(c).len(), 4);
        }
    }

    #[test]
    fn subsample_with_excess_budget_keeps_everything() {
        let ds = toy(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ds.subsample_per_class(100, &mut rng).len(), 4);
    }

    #[test]
    fn different_seeds_give_different_subsamples() {
        let ds = toy(50, 1);
        let a = ds.subsample_per_class(5, &mut StdRng::seed_from_u64(0));
        let b = ds.subsample_per_class(5, &mut StdRng::seed_from_u64(1));
        assert_ne!(a.images(), b.images());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        Dataset::new("bad", vec![Tensor::zeros(&[1, 1, 1])], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "share one shape")]
    fn rejects_ragged_images() {
        Dataset::new(
            "bad",
            vec![Tensor::zeros(&[1, 1, 1]), Tensor::zeros(&[1, 2, 2])],
            vec![0, 0],
            1,
        );
    }
}
