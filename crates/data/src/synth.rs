//! The procedural image generator.

use advhunter_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, SplitDataset, SplitSizes};

/// Configuration of one synthetic dataset family.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Dataset name.
    pub name: String,
    /// CHW image dimensions.
    pub dims: [usize; 3],
    /// Number of classes.
    pub num_classes: usize,
    /// Prototypes per class (≥ 2 gives intra-class multimodality).
    pub prototypes_per_class: usize,
    /// Pixel noise standard deviation.
    pub noise: f32,
    /// Maximum spatial jitter in pixels.
    pub jitter: usize,
    /// Master seed: fixes classes, prototypes, and image instances.
    pub seed: u64,
    /// Strength of the traffic-sign-style shape mask (0 disables).
    pub shape_strength: f32,
    /// Probability that an image blends in a neighboring class's prototype,
    /// creating genuinely ambiguous images that cap achievable accuracy
    /// (the synthetic analogue of the real datasets' hard examples).
    pub class_confusion: f32,
}

/// One class prototype: a parametric pattern combining an oriented grating,
/// a few Gaussian blobs, and an optional centered shape mask.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPrototype {
    grating_freq: f32,
    grating_theta: f32,
    grating_phase: f32,
    grating_amp: [f32; 3],
    blobs: Vec<Blob>,
    shape: ShapeMask,
    base: [f32; 3],
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Blob {
    cx: f32,
    cy: f32,
    sigma: f32,
    amp: [f32; 3],
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ShapeMask {
    None,
    Disk { r: f32 },
    Triangle { r: f32 },
    Square { r: f32 },
}

impl ClassPrototype {
    /// Draws a prototype for class `class` / prototype slot `proto` under
    /// the master seed of `cfg`.
    pub fn derive(cfg: &SynthConfig, class: usize, proto: usize) -> Self {
        // A dedicated RNG per (class, prototype) keeps prototypes stable no
        // matter how many images are generated.
        let mut rng = StdRng::seed_from_u64(
            cfg.seed ^ (class as u64).wrapping_mul(0x9E37_79B9) ^ ((proto as u64) << 40),
        );
        let n_blobs = rng.gen_range(2..=4);
        let blobs = (0..n_blobs)
            .map(|_| Blob {
                cx: rng.gen_range(0.2..0.8),
                cy: rng.gen_range(0.2..0.8),
                sigma: rng.gen_range(0.06..0.2),
                amp: [
                    rng.gen_range(-0.9..0.9),
                    rng.gen_range(-0.9..0.9),
                    rng.gen_range(-0.9..0.9),
                ],
            })
            .collect();
        let shape = if cfg.shape_strength > 0.0 {
            match class % 3 {
                0 => ShapeMask::Disk {
                    r: rng.gen_range(0.28..0.38),
                },
                1 => ShapeMask::Triangle {
                    r: rng.gen_range(0.3..0.42),
                },
                _ => ShapeMask::Square {
                    r: rng.gen_range(0.25..0.36),
                },
            }
        } else {
            ShapeMask::None
        };
        Self {
            grating_freq: rng.gen_range(1.0..5.0),
            grating_theta: rng.gen_range(0.0..std::f32::consts::PI),
            grating_phase: rng.gen_range(0.0..std::f32::consts::TAU),
            grating_amp: [
                rng.gen_range(0.1..0.5),
                rng.gen_range(0.1..0.5),
                rng.gen_range(0.1..0.5),
            ],
            blobs,
            shape,
            base: [
                rng.gen_range(0.3..0.7),
                rng.gen_range(0.3..0.7),
                rng.gen_range(0.3..0.7),
            ],
        }
    }

    /// Renders one image instance with the given jitter offset, per-instance
    /// amplitude scale, and pixel noise.
    pub fn render(
        &self,
        cfg: &SynthConfig,
        dx: f32,
        dy: f32,
        scale: f32,
        rng: &mut impl Rng,
    ) -> Tensor {
        let [c, h, w] = cfg.dims;
        let mut img = Tensor::zeros(&[c, h, w]);
        let data = img.data_mut();
        let (st, ct) = self.grating_theta.sin_cos();
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let u = x as f32 / w as f32 - 0.5 + dx;
                    let v = y as f32 / h as f32 - 0.5 + dy;
                    // Oriented grating.
                    let t = (u * ct + v * st) * self.grating_freq * std::f32::consts::TAU
                        + self.grating_phase;
                    let mut val = self.base[ch % 3] + scale * self.grating_amp[ch % 3] * t.sin();
                    // Gaussian blobs.
                    for b in &self.blobs {
                        let du = u + 0.5 - b.cx;
                        let dv = v + 0.5 - b.cy;
                        let g = (-(du * du + dv * dv) / (2.0 * b.sigma * b.sigma)).exp();
                        val += scale * b.amp[ch % 3] * g;
                    }
                    // Shape mask (traffic-sign-style silhouette).
                    let inside = match self.shape {
                        ShapeMask::None => 0.0,
                        ShapeMask::Disk { r } => {
                            if u * u + v * v < r * r {
                                1.0
                            } else {
                                -0.4
                            }
                        }
                        ShapeMask::Triangle { r } => {
                            // Upward triangle: inside when below the two edges.
                            if v > -r && v < r && u.abs() < (r - v) * 0.6 {
                                1.0
                            } else {
                                -0.4
                            }
                        }
                        ShapeMask::Square { r } => {
                            if u.abs() < r && v.abs() < r {
                                1.0
                            } else {
                                -0.4
                            }
                        }
                    };
                    val += cfg.shape_strength * inside * (0.4 + 0.2 * (ch % 3) as f32);
                    // Pixel noise.
                    val += cfg.noise * standard_normal(rng);
                    data[(ch * h + y) * w + x] = val.clamp(0.0, 1.0);
                }
            }
        }
        img
    }
}

/// Generates the full train/val/test split for a configuration.
///
/// Every image is drawn independently: pick a prototype of its class, jitter
/// it, scale it, add noise. Splits are disjoint by construction because each
/// image is a fresh sample.
pub(crate) fn generate(cfg: &SynthConfig, sizes: &SplitSizes) -> SplitDataset {
    let prototypes: Vec<Vec<ClassPrototype>> = (0..cfg.num_classes)
        .map(|class| {
            (0..cfg.prototypes_per_class)
                .map(|p| ClassPrototype::derive(cfg, class, p))
                .collect()
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let mut make_split = |per_class: usize, tag: &str| {
        let mut images = Vec::with_capacity(per_class * cfg.num_classes);
        let mut labels = Vec::with_capacity(per_class * cfg.num_classes);
        for class in 0..cfg.num_classes {
            for _ in 0..per_class {
                let proto = &prototypes[class][rng.gen_range(0..cfg.prototypes_per_class)];
                let jit = cfg.jitter as f32 / cfg.dims[2] as f32;
                let dx = rng.gen_range(-jit..=jit);
                let dy = rng.gen_range(-jit..=jit);
                let scale = rng.gen_range(0.9..1.1);
                let mut img = proto.render(cfg, dx, dy, scale, &mut rng);
                if cfg.class_confusion > 0.0 && rng.gen::<f32>() < cfg.class_confusion {
                    // Hard example: blend with a neighboring class.
                    let other_class =
                        (class + 1 + rng.gen_range(0..cfg.num_classes - 1)) % cfg.num_classes;
                    let other =
                        &prototypes[other_class][rng.gen_range(0..cfg.prototypes_per_class)];
                    let blend = other.render(cfg, dx, dy, scale, &mut rng);
                    img.scale_inplace(0.72);
                    img.add_scaled(&blend, 0.28);
                }
                images.push(img);
                labels.push(class);
            }
        }
        Dataset::new(
            &format!("{}-{tag}", cfg.name),
            images,
            labels,
            cfg.num_classes,
        )
    };

    SplitDataset {
        train: make_split(sizes.train, "train"),
        val: make_split(sizes.val, "val"),
        test: make_split(sizes.test, "test"),
    }
}

fn standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SynthConfig {
        SynthConfig {
            name: "test".into(),
            dims: [3, 16, 16],
            num_classes: 4,
            prototypes_per_class: 2,
            noise: 0.05,
            jitter: 2,
            seed: 11,
            shape_strength: 0.0,
            class_confusion: 0.0,
        }
    }

    #[test]
    fn images_are_in_unit_range() {
        let split = generate(
            &cfg(),
            &SplitSizes {
                train: 3,
                val: 2,
                test: 2,
            },
        );
        for img in split.train.images() {
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn split_sizes_are_respected() {
        let split = generate(
            &cfg(),
            &SplitSizes {
                train: 5,
                val: 3,
                test: 2,
            },
        );
        assert_eq!(split.train.len(), 20);
        assert_eq!(split.val.len(), 12);
        assert_eq!(split.test.len(), 8);
        assert_eq!(split.train.dims(), &[3, 16, 16]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(
            &cfg(),
            &SplitSizes {
                train: 2,
                val: 1,
                test: 1,
            },
        );
        let b = generate(
            &cfg(),
            &SplitSizes {
                train: 2,
                val: 1,
                test: 1,
            },
        );
        assert_eq!(a.train, b.train);
        assert_eq!(a.val, b.val);
    }

    #[test]
    fn different_seeds_differ() {
        let mut c2 = cfg();
        c2.seed = 12;
        let a = generate(
            &cfg(),
            &SplitSizes {
                train: 2,
                val: 1,
                test: 1,
            },
        );
        let b = generate(
            &c2,
            &SplitSizes {
                train: 2,
                val: 1,
                test: 1,
            },
        );
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn classes_are_statistically_distinct() {
        // Mean image of one class should be far from the mean image of
        // another relative to the within-class spread.
        let split = generate(
            &cfg(),
            &SplitSizes {
                train: 20,
                val: 1,
                test: 1,
            },
        );
        let mean_of = |c: usize| {
            let imgs = split.train.images_of_class(c);
            let mut acc = Tensor::zeros(split.train.dims());
            for img in &imgs {
                acc.add_scaled(img, 1.0 / imgs.len() as f32);
            }
            acc
        };
        let m0 = mean_of(0);
        let m1 = mean_of(1);
        let between = (&m0 - &m1).l2_norm();
        assert!(between > 0.5, "class means too close: {between}");
    }

    #[test]
    fn prototypes_within_class_differ() {
        let c = cfg();
        let p0 = ClassPrototype::derive(&c, 0, 0);
        let p1 = ClassPrototype::derive(&c, 0, 1);
        assert_ne!(p0, p1);
    }

    #[test]
    fn shape_masks_produce_different_silhouettes() {
        let mut c = cfg();
        c.shape_strength = 0.8;
        let mut rng = StdRng::seed_from_u64(0);
        let disk = ClassPrototype::derive(&c, 0, 0).render(&c, 0.0, 0.0, 1.0, &mut rng);
        let tri = ClassPrototype::derive(&c, 1, 0).render(&c, 0.0, 0.0, 1.0, &mut rng);
        assert!((&disk - &tri).l2_norm() > 1.0);
    }
}
