//! Seeded procedural stand-ins for the paper's image datasets.
//!
//! The paper evaluates on FashionMNIST, CIFAR-10, and GTSRB. Those corpora
//! are not available offline, so this crate synthesizes datasets with the
//! same shapes and class structure:
//!
//! * [`scenarios::fashion_mnist_like`] — 1×28×28 grayscale, 10 classes.
//! * [`scenarios::cifar10_like`] — 3×32×32 color, 10 classes.
//! * [`scenarios::gtsrb_like`] — 3×32×32 color, 43 classes (traffic-sign
//!   style: strong shape/border structure).
//!
//! Each class is defined by a handful of *prototype* pattern generators
//! (oriented gratings, Gaussian blobs, shape masks) drawn from a seeded RNG;
//! each image instantiates one prototype with jitter and noise. Multiple
//! prototypes per class give intra-class multimodality — the property that
//! makes per-class HPC distributions mixtures of Gaussians, which is the
//! modelling assumption AdvHunter's GMMs rest on (paper §5.3, Figure 3).
//!
//! Everything is deterministic given the configuration seed.
//!
//! # Example
//!
//! ```
//! use advhunter_data::{scenarios, SplitSizes};
//!
//! let split = scenarios::cifar10_like(7, &SplitSizes { train: 4, val: 2, test: 2 });
//! assert_eq!(split.train.len(), 40); // 4 per class × 10 classes
//! assert_eq!(split.train.dims(), &[3, 32, 32]);
//! ```

mod dataset;
mod synth;

pub mod export;
pub mod scenarios;
pub mod stats;

pub use dataset::{Dataset, SplitDataset, SplitSizes};
pub use scenarios::DatasetFamily;
pub use synth::{ClassPrototype, SynthConfig};
