//! Ready-made dataset families matching the paper's three scenarios.
//!
//! [`DatasetFamily`] is the slug-addressed form graph specs use: a `.ahg`
//! file names a family (`dataset cifar10-like`) and supplies its own
//! dimensions, class count, and seed; the family contributes the noise /
//! jitter / prototype character of the distribution plus human-readable
//! class names. The three original helpers are thin wrappers over the
//! family table with the canonical scenario geometry.

use crate::synth::{generate, SynthConfig};
use crate::{SplitDataset, SplitSizes};

/// A synthetic dataset family, addressed by the slug that appears in
/// `.ahg` graph specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// FashionMNIST stand-in (grayscale apparel, soft shape masks).
    FashionMnist,
    /// CIFAR-10 stand-in (noisy color photos, no shape masks).
    Cifar10,
    /// GTSRB stand-in (high-contrast traffic-sign shape masks).
    Gtsrb,
}

impl DatasetFamily {
    /// Every family, in scenario order.
    pub const ALL: [DatasetFamily; 3] = [Self::FashionMnist, Self::Cifar10, Self::Gtsrb];

    /// The slug used in `.ahg` specs.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Self::FashionMnist => "fashionmnist-like",
            Self::Cifar10 => "cifar10-like",
            Self::Gtsrb => "gtsrb-like",
        }
    }

    /// Resolves a spec slug.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.slug() == slug)
    }

    /// Human-readable family name.
    #[must_use]
    pub fn display_name(self) -> &'static str {
        match self {
            Self::FashionMnist => "FashionMNIST-like",
            Self::Cifar10 => "CIFAR10-like",
            Self::Gtsrb => "GTSRB-like",
        }
    }

    /// The family's generator configuration for the given geometry. The
    /// noise / jitter / prototype knobs are fixed per family (they define
    /// it); dimensions, class count, and seed come from the spec.
    #[must_use]
    pub fn synth_config(self, dims: [usize; 3], num_classes: usize, seed: u64) -> SynthConfig {
        match self {
            Self::FashionMnist => SynthConfig {
                name: self.slug().into(),
                dims,
                num_classes,
                prototypes_per_class: 3,
                noise: 0.22,
                jitter: 4,
                seed,
                shape_strength: 0.4,
                class_confusion: 0.08,
            },
            Self::Cifar10 => SynthConfig {
                name: self.slug().into(),
                dims,
                num_classes,
                prototypes_per_class: 3,
                noise: 0.28,
                jitter: 5,
                seed,
                shape_strength: 0.0,
                class_confusion: 0.12,
            },
            Self::Gtsrb => SynthConfig {
                name: self.slug().into(),
                dims,
                num_classes,
                prototypes_per_class: 2,
                noise: 0.15,
                jitter: 3,
                seed,
                shape_strength: 0.6,
                class_confusion: 0.05,
            },
        }
    }

    /// Generates train/val/test splits with the family's character at the
    /// given geometry — the data half of running a graph spec end to end.
    #[must_use]
    pub fn generate(
        self,
        dims: [usize; 3],
        num_classes: usize,
        seed: u64,
        sizes: &SplitSizes,
    ) -> SplitDataset {
        generate(&self.synth_config(dims, num_classes, seed), sizes)
    }

    /// Human-readable class names for an `n`-class instance of the family
    /// (from the real datasets the synthetic ones stand in for; classes
    /// past the named table get a generic name).
    #[must_use]
    pub fn class_names(self, n: usize) -> Vec<String> {
        match self {
            Self::FashionMnist => named_or(
                &[
                    "t-shirt",
                    "trouser",
                    "pullover",
                    "dress",
                    "coat",
                    "sandal",
                    "shirt",
                    "sneaker",
                    "bag",
                    "ankle boot",
                ],
                n,
            ),
            Self::Cifar10 => named_or(
                &[
                    "airplane",
                    "automobile",
                    "bird",
                    "cat",
                    "deer",
                    "dog",
                    "frog",
                    "horse",
                    "ship",
                    "truck",
                ],
                n,
            ),
            Self::Gtsrb => {
                let named = [
                    (0, "speed limit (20km/h)"),
                    (1, "speed limit (30km/h)"),
                    (2, "speed limit (50km/h)"),
                    (3, "speed limit (60km/h)"),
                    (4, "speed limit (70km/h)"),
                    (5, "speed limit (80km/h)"),
                    (7, "speed limit (100km/h)"),
                    (8, "speed limit (120km/h)"),
                    (9, "no passing"),
                    (11, "right-of-way"),
                    (12, "priority road"),
                    (13, "yield"),
                    (14, "stop"),
                    (17, "no entry"),
                    (18, "general caution"),
                    (25, "road work"),
                    (33, "turn right ahead"),
                    (34, "turn left ahead"),
                    (35, "ahead only"),
                    (40, "roundabout mandatory"),
                ];
                (0..n)
                    .map(|i| {
                        named
                            .iter()
                            .find(|(idx, _)| *idx == i)
                            .map(|(_, name)| (*name).to_string())
                            .unwrap_or_else(|| format!("sign class {i}"))
                    })
                    .collect()
            }
        }
    }
}

fn named_or(names: &[&str], n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            names
                .get(i)
                .map(|s| (*s).to_string())
                .unwrap_or_else(|| format!("class {i}"))
        })
        .collect()
}

/// FashionMNIST stand-in: 1×28×28 grayscale, 10 classes (scenario S1).
///
/// Noise and jitter are tuned so micro CNNs land near the paper's clean
/// accuracy (92.3 % on the real dataset), not at a trivial 100 %.
pub fn fashion_mnist_like(seed: u64, sizes: &SplitSizes) -> SplitDataset {
    DatasetFamily::FashionMnist.generate([1, 28, 28], 10, seed, sizes)
}

/// CIFAR-10 stand-in: 3×32×32 color, 10 classes (scenario S2).
///
/// The hardest of the three (matching the real datasets' ordering): heavy
/// pixel noise and jitter keep clean accuracy near the paper's 88.6 %.
pub fn cifar10_like(seed: u64, sizes: &SplitSizes) -> SplitDataset {
    DatasetFamily::Cifar10.generate([3, 32, 32], 10, seed, sizes)
}

/// GTSRB stand-in: 3×32×32 color, 43 classes with traffic-sign-style shape
/// masks (scenario S3). Signs are high-contrast, so moderate noise keeps
/// accuracy near the paper's 96.7 %.
pub fn gtsrb_like(seed: u64, sizes: &SplitSizes) -> SplitDataset {
    DatasetFamily::Gtsrb.generate([3, 32, 32], 43, seed, sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shapes_match_the_paper() {
        let sizes = SplitSizes {
            train: 1,
            val: 1,
            test: 1,
        };
        let s1 = fashion_mnist_like(0, &sizes);
        assert_eq!(s1.train.dims(), &[1, 28, 28]);
        assert_eq!(s1.train.num_classes(), 10);

        let s2 = cifar10_like(0, &sizes);
        assert_eq!(s2.train.dims(), &[3, 32, 32]);
        assert_eq!(s2.train.num_classes(), 10);

        let s3 = gtsrb_like(0, &sizes);
        assert_eq!(s3.train.dims(), &[3, 32, 32]);
        assert_eq!(s3.train.num_classes(), 43);
    }

    #[test]
    fn scenario_names_distinguish_splits() {
        let sizes = SplitSizes {
            train: 1,
            val: 1,
            test: 1,
        };
        let s = cifar10_like(0, &sizes);
        assert!(s.train.name().contains("train"));
        assert!(s.val.name().contains("val"));
        assert!(s.test.name().contains("test"));
    }
}
