//! Ready-made dataset families matching the paper's three scenarios.

use crate::synth::{generate, SynthConfig};
use crate::{SplitDataset, SplitSizes};

/// FashionMNIST stand-in: 1×28×28 grayscale, 10 classes (scenario S1).
///
/// Noise and jitter are tuned so micro CNNs land near the paper's clean
/// accuracy (92.3 % on the real dataset), not at a trivial 100 %.
pub fn fashion_mnist_like(seed: u64, sizes: &SplitSizes) -> SplitDataset {
    generate(
        &SynthConfig {
            name: "fashionmnist-like".into(),
            dims: [1, 28, 28],
            num_classes: 10,
            prototypes_per_class: 3,
            noise: 0.22,
            jitter: 4,
            seed,
            shape_strength: 0.4,
            class_confusion: 0.08,
        },
        sizes,
    )
}

/// CIFAR-10 stand-in: 3×32×32 color, 10 classes (scenario S2).
///
/// The hardest of the three (matching the real datasets' ordering): heavy
/// pixel noise and jitter keep clean accuracy near the paper's 88.6 %.
pub fn cifar10_like(seed: u64, sizes: &SplitSizes) -> SplitDataset {
    generate(
        &SynthConfig {
            name: "cifar10-like".into(),
            dims: [3, 32, 32],
            num_classes: 10,
            prototypes_per_class: 3,
            noise: 0.28,
            jitter: 5,
            seed,
            shape_strength: 0.0,
            class_confusion: 0.12,
        },
        sizes,
    )
}

/// GTSRB stand-in: 3×32×32 color, 43 classes with traffic-sign-style shape
/// masks (scenario S3). Signs are high-contrast, so moderate noise keeps
/// accuracy near the paper's 96.7 %.
pub fn gtsrb_like(seed: u64, sizes: &SplitSizes) -> SplitDataset {
    generate(
        &SynthConfig {
            name: "gtsrb-like".into(),
            dims: [3, 32, 32],
            num_classes: 43,
            prototypes_per_class: 2,
            noise: 0.15,
            jitter: 3,
            seed,
            shape_strength: 0.6,
            class_confusion: 0.05,
        },
        sizes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shapes_match_the_paper() {
        let sizes = SplitSizes {
            train: 1,
            val: 1,
            test: 1,
        };
        let s1 = fashion_mnist_like(0, &sizes);
        assert_eq!(s1.train.dims(), &[1, 28, 28]);
        assert_eq!(s1.train.num_classes(), 10);

        let s2 = cifar10_like(0, &sizes);
        assert_eq!(s2.train.dims(), &[3, 32, 32]);
        assert_eq!(s2.train.num_classes(), 10);

        let s3 = gtsrb_like(0, &sizes);
        assert_eq!(s3.train.dims(), &[3, 32, 32]);
        assert_eq!(s3.train.num_classes(), 43);
    }

    #[test]
    fn scenario_names_distinguish_splits() {
        let sizes = SplitSizes {
            train: 1,
            val: 1,
            test: 1,
        };
        let s = cifar10_like(0, &sizes);
        assert!(s.train.name().contains("train"));
        assert!(s.val.name().contains("val"));
        assert!(s.test.name().contains("test"));
    }
}
