//! Scalar metrics: monotone counters and last-value gauges.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
///
/// All updates are relaxed atomic RMWs: safe from any thread, never a
/// lock, and cheap enough to leave permanently enabled on hot paths.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, like Prometheus counters on overflow).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written value with a separate high-watermark.
///
/// `set` records the current level (e.g. queue depth after a drain) and
/// transparently maintains the maximum ever seen; `record_max` bumps only
/// the watermark (e.g. depth at admission without claiming it is the
/// *current* depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Sets the current level and folds it into the high-watermark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Raises the high-watermark without touching the current level.
    pub fn record_max(&self, v: u64) {
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The most recently set level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever set or recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_watermark() {
        let g = Gauge::new();
        g.set(5);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn concurrent_counter_updates_are_exact() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
