//! Fixed-bucket log₂-scale histograms, mergeable across threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::span::StageSpan;

/// Number of buckets in every histogram. Bucket `i` holds values whose
/// highest set bit is bit `i - 1` (bucket 0 holds exactly 0), giving full
/// `u64` range at ~2x relative resolution — the right trade for latency
/// distributions spanning nanoseconds to seconds.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped to [`BUCKETS`]` - 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label):
/// bucket 0 → 0, bucket `i` → `2^i - 1`, last bucket → `u64::MAX`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        0
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log₂-bucketed distribution over `u64` values.
///
/// Everything is a relaxed atomic, so any number of threads record
/// concurrently without locks, and a [`snapshot`](Self::snapshot) taken
/// at quiescence is exact. Snapshots [`merge`](HistogramSnapshot::merge)
/// associatively and commutatively — per-thread or per-shard histograms
/// combine into the same totals no matter the grouping.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a stage span over this histogram: the span records the wall
    /// time from this call to its drop (or [`StageSpan::finish`]). When
    /// telemetry is disabled the span is inert — it never reads the clock
    /// and records nothing.
    pub fn span(&self) -> StageSpan<'_> {
        StageSpan::start(self)
    }

    /// Times `f` through a [`span`](Self::span) and returns its result.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let span = self.span();
        let r = f();
        span.finish();
        r
    }

    /// A point-in-time copy of the distribution. Exact when no thread is
    /// concurrently recording; during recording each component is atomic
    /// but the tuple is not cut at a single instant.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty — use
    /// [`min`](Self::min)).
    min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub const fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Smallest observed value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combines two snapshots as if their observations had been recorded
    /// into one histogram. Associative and commutative with
    /// [`empty`](Self::empty) as identity.
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = [0u64; BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&other.buckets))
        {
            *out = a + b;
        }
        Self {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` clamped to [0, 1]), or `None` when empty. Log-scale buckets
    /// make this accurate to a factor of 2 — plenty for p50/p99 summary
    /// lines.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Cap the reported bound at the observed max: tighter and
                // keeps the last bucket from reporting u64::MAX.
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_their_log2_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_inclusive_and_contiguous() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        // Every non-final bucket's bound is one below the next power of 2.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let h = Histogram::new();
        for v in [3u64, 0, 900, 17] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 920);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max, 900);
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[5], 1); // 17
        assert_eq!(s.buckets[10], 1); // 900
        assert!((s.mean() - 230.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_identity_for_merge() {
        let h = Histogram::new();
        h.record(5);
        h.record(6);
        let s = h.snapshot();
        assert_eq!(s.merge(&HistogramSnapshot::empty()), s);
        assert_eq!(HistogramSnapshot::empty().merge(&s), s);
        assert_eq!(HistogramSnapshot::empty().min(), None);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
    }

    #[test]
    fn quantiles_report_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, bound 127
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), Some(127));
        assert_eq!(s.quantile(0.5), Some(127));
        // The single large observation is the p100 and caps at max.
        assert_eq!(s.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn duration_recording_is_in_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(2));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2_000);
    }
}
