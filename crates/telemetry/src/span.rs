//! RAII stage spans: scope-shaped wall-time recording into a histogram.

use std::time::Instant;

use crate::histogram::Histogram;

/// Times a stage from creation to drop (or [`finish`](Self::finish)) and
/// records the elapsed nanoseconds into its histogram.
///
/// When telemetry is disabled ([`crate::disabled`]) the span is inert: it
/// holds no start time, never reads the clock, and its drop records
/// nothing — the no-op mode the zero-impact contract requires. The enable
/// check is a single relaxed atomic load at construction.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct StageSpan<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> StageSpan<'a> {
    pub(crate) fn start(hist: &'a Histogram) -> Self {
        Self {
            hist,
            start: crate::now(),
        }
    }

    /// Ends the span now. Equivalent to dropping it, spelled out for
    /// mid-function stage boundaries.
    pub fn finish(self) {}
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_per_scope() {
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        h.span().finish();
        let r = h.time(|| 21 * 2);
        assert_eq!(r, 42);
        // Either all three recorded (enabled) or none did (a concurrent
        // test had the switch off) — both respect the contract.
        let count = h.snapshot().count;
        assert!(count == 3 || count == 0, "unexpected span count {count}");
    }

    #[test]
    fn inert_span_skips_the_clock() {
        let h = Histogram::new();
        let span = StageSpan {
            hist: &h,
            start: None,
        };
        drop(span);
        assert_eq!(h.snapshot().count, 0);
    }
}
