//! Zero-overhead observability substrate for the AdvHunter serving stack.
//!
//! AdvHunter's premise is that low-level execution telemetry carries a
//! security signal; this crate makes the serving stack's *own* telemetry a
//! first-class citizen so the defense's overhead and health are
//! continuously measurable (the deployability bar stressed by the HPC
//! countermeasure surveys). It is dependency-free and leaf-level, so every
//! crate in the workspace can instrument itself without cycles.
//!
//! # Model
//!
//! * [`Counter`] — monotone atomic `u64` (requests, events, cache totals).
//! * [`Gauge`] — last-written atomic `u64` with a high-watermark
//!   (`record_max`) for things like queue depth.
//! * [`Histogram`] — fixed-bucket log₂-scale distribution over `u64`
//!   values (latencies in nanoseconds, batch sizes). All buckets are
//!   atomics, so worker threads record concurrently and snapshots merge
//!   associatively across threads and processes.
//! * [`StageSpan`] — an RAII timer over a histogram:
//!   `let _s = hist.span();` records the enclosing scope's wall time.
//! * [`Registry`] — a named family table rendering both a
//!   Prometheus-style text exposition and a JSON snapshot. A process-wide
//!   [`global`] registry serves static instrumentation; services that need
//!   per-instance counters (the monitor) own private registries and merge
//!   snapshots.
//!
//! # The zero-impact contract
//!
//! Telemetry is *observational only*: nothing recorded here may feed back
//! into seeded measurement or scoring, and wall-clock reads live only
//! here. When the crate is disabled ([`disable`]), [`Histogram::span`] and
//! [`now`] return inert values without ever touching the clock — spans
//! become no-ops — so the instrumented hot paths carry only a relaxed
//! atomic load. Counter and gauge updates always land (they cost one
//! uncontended atomic RMW and keep service accounting exact either way).
//! Measured results are bit-identical with telemetry enabled, disabled, or
//! absent; `tests/telemetry_zero_impact.rs` and the `golden_counts` /
//! `determinism` / `api_equivalence` suites pin that down.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

mod histogram;
mod metrics;
mod registry;
mod span;

pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{MetricSnapshot, MetricValue, Registry, Snapshot};
pub use span::StageSpan;

/// Process-wide recording switch. Defaults to enabled.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide registry for static instrumentation (engine, runtime).
static GLOBAL: Registry = Registry::new();

/// The process-wide registry. Static instrumentation (the trace engine,
/// the parallel runtime) registers here once via `OnceLock`; services
/// with per-instance counters own private [`Registry`] values instead.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Turns recording on (the default).
pub fn enable() {
    set_enabled(true);
}

/// Turns recording off: spans and [`now`] become no-ops that never read
/// the clock.
pub fn disable() {
    set_enabled(false);
}

/// Sets the process-wide recording switch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether recording is currently disabled (the no-op mode).
pub fn disabled() -> bool {
    !enabled()
}

/// Reads the clock only when telemetry is enabled. The building block for
/// explicit timed sections: pair with [`elapsed_nanos`] and feed the
/// result to [`Histogram::record`].
pub fn now() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Nanoseconds since `start`, or 0 if the start was taken while disabled.
/// Saturates at `u64::MAX` (585 years).
pub fn elapsed_nanos(start: Option<Instant>) -> u64 {
    match start {
        Some(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_respects_the_switch() {
        // Tests in this binary run concurrently; flip the switch inside a
        // short window and restore it so neighbours see it enabled.
        assert!(enabled());
        assert!(now().is_some());
        disable();
        assert!(disabled());
        assert_eq!(now(), None);
        assert_eq!(elapsed_nanos(None), 0);
        enable();
        assert!(enabled());
        let t = now();
        assert!(elapsed_nanos(t) < 1_000_000_000);
    }
}
