//! The metric registry and its snapshot/exposition formats.

use std::sync::{Arc, Mutex};

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::metrics::{Counter, Gauge};
use crate::Histogram;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    name: String,
    help: String,
    metric: Metric,
}

/// A named table of metrics that renders point-in-time [`Snapshot`]s.
///
/// Registration is get-or-create: registering a name twice with the same
/// kind returns the existing handle, so instrumented code can register
/// from `OnceLock` initializers without coordination. The registry lock is
/// only taken at registration and snapshot time — never on the record
/// path, which goes straight to the atomic handles.
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "Registry({n} families)")
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            families: Mutex::new(Vec::new()),
        }
    }

    /// Registers (or retrieves) a counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(name, help, || Metric::Counter(Arc::new(Counter::new())))
    }

    /// Registers (or retrieves) a gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(name, help, || Metric::Gauge(Arc::new(Gauge::new())))
    }

    /// Registers (or retrieves) a histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register(name, help, || Metric::Histogram(Arc::new(Histogram::new())))
    }

    fn register<M: HandleKind>(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> M {
        let mut families = self.families.lock().expect("registry lock poisoned");
        if let Some(existing) = families.iter().find(|f| f.name == name) {
            return M::from_metric(&existing.metric).unwrap_or_else(|| {
                panic!(
                    "metric {name} already registered as a {}",
                    existing.metric.kind()
                )
            });
        }
        let metric = make();
        let handle = M::from_metric(&metric).expect("freshly made metric matches its kind");
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
        handle
    }

    /// A point-in-time copy of every registered metric, sorted by name —
    /// the deterministic order makes snapshots diffable and testable.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("registry lock poisoned");
        let mut metrics: Vec<MetricSnapshot> = families
            .iter()
            .map(|f| MetricSnapshot {
                name: f.name.clone(),
                help: f.help.clone(),
                value: match &f.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge {
                        value: g.get(),
                        max: g.max(),
                    },
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        drop(families);
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { metrics }
    }
}

/// Internal: maps the type-erased [`Metric`] back to a typed handle.
trait HandleKind: Sized {
    fn from_metric(m: &Metric) -> Option<Self>;
}

impl HandleKind for Arc<Counter> {
    fn from_metric(m: &Metric) -> Option<Self> {
        match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        }
    }
}

impl HandleKind for Arc<Gauge> {
    fn from_metric(m: &Metric) -> Option<Self> {
        match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        }
    }
}

impl HandleKind for Arc<Histogram> {
    fn from_metric(m: &Metric) -> Option<Self> {
        match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        }
    }
}

/// The value side of one metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level and its high-watermark.
    Gauge {
        /// The most recently set level.
        value: u64,
        /// The highest level ever seen.
        max: u64,
    },
    /// A histogram distribution (boxed: a snapshot carries the full
    /// bucket array, which would otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

/// One named metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The registered metric name (Prometheus-compatible).
    pub name: String,
    /// The registered help line.
    pub help: String,
    /// The metric's value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// The total of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The level and high-watermark of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<(u64, u64)> {
        match self.get(name)? {
            MetricValue::Gauge { value, max } => Some((*value, *max)),
            _ => None,
        }
    }

    /// The distribution of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Combines two snapshots (e.g. a service's private registry with the
    /// process-wide one) into one sorted snapshot. On a name collision the
    /// entry from `self` wins.
    pub fn merge(mut self, other: Snapshot) -> Snapshot {
        for m in other.metrics {
            if self.get(&m.name).is_none() {
                self.metrics.push(m);
            }
        }
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for m in &self.metrics {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::Gauge { value, max } => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {value}", m.name);
                    let _ = writeln!(out, "{}_max {max}", m.name);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {cumulative}",
                            m.name,
                            bucket_upper_bound(i)
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count);
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", m.name, h.count);
                }
            }
        }
        out
    }

    /// Renders a JSON snapshot:
    /// `{"metrics": [{"name", "help", "type", ...}, ...]}`. Histograms
    /// list only their non-empty buckets as `{"le", "count"}` pairs.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"help\": {}, ",
                json_string(&m.name),
                json_string(&m.help)
            );
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}}}");
                }
                MetricValue::Gauge { value, max } => {
                    let _ = write!(
                        out,
                        "\"type\": \"gauge\", \"value\": {value}, \"max\": {max}}}"
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, ",
                        h.count, h.sum
                    );
                    if let Some(min) = h.min() {
                        let _ = write!(out, "\"min\": {min}, \"max\": {}, ", h.max);
                    }
                    let _ = write!(out, "\"buckets\": [");
                    let mut first = true;
                    for (b, &c) in h.buckets.iter().enumerate().take(BUCKETS) {
                        if c == 0 {
                            continue;
                        }
                        let sep = if first { "" } else { ", " };
                        first = false;
                        let _ = write!(
                            out,
                            "{sep}{{\"le\": {}, \"count\": {c}}}",
                            bucket_upper_bound(b)
                        );
                    }
                    let _ = write!(out, "]}}");
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string encoder (the names and help lines are ASCII, but
/// escape defensively).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x_total"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _c = r.counter("x", "");
        let _g = r.gauge("x", "");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.gauge("b_gauge", "").set(7);
        r.counter("a_total", "").add(4);
        r.histogram("c_ns", "").record(100);
        let s = r.snapshot();
        let names: Vec<&str> = s.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "b_gauge", "c_ns"]);
        assert_eq!(s.counter("a_total"), Some(4));
        assert_eq!(s.gauge("b_gauge"), Some((7, 7)));
        assert_eq!(s.histogram("c_ns").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.counter("b_gauge"), None, "kind-checked accessors");
    }

    #[test]
    fn merge_prefers_self_and_sorts() {
        let r1 = Registry::new();
        r1.counter("m_total", "").add(1);
        let r2 = Registry::new();
        r2.counter("m_total", "").add(99);
        r2.counter("a_total", "").add(5);
        let merged = r1.snapshot().merge(r2.snapshot());
        assert_eq!(merged.counter("m_total"), Some(1));
        assert_eq!(merged.counter("a_total"), Some(5));
        assert_eq!(merged.metrics[0].name, "a_total");
    }

    #[test]
    fn prometheus_rendering_has_types_and_cumulative_buckets() {
        let r = Registry::new();
        r.counter("req_total", "requests").add(3);
        let h = r.histogram("lat_ns", "latency");
        h.record(1);
        h.record(1000);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total 3"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum 1001"));
        assert!(text.contains("lat_ns_count 2"));
    }

    #[test]
    fn json_rendering_is_structurally_sound() {
        let r = Registry::new();
        r.counter("a_total", "say \"hi\"").add(2);
        r.gauge("d_depth", "").set(3);
        let h = r.histogram("b_ns", "");
        h.record(7);
        let json = r.snapshot().render_json();
        assert!(json.contains("\"name\": \"a_total\""));
        assert!(json.contains("\"say \\\"hi\\\"\""));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("{\"le\": 7, \"count\": 1}"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser (CI runs a real parser over the CLI's output).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let s = Registry::new().snapshot();
        assert_eq!(s.render_prometheus(), "");
        assert!(s.render_json().contains("\"metrics\": [\n  ]"));
    }
}
