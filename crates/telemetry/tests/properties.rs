//! Property tests for the telemetry substrate: bucket-boundary
//! correctness, cross-thread merge associativity, and snapshot exactness
//! under concurrent recording.

use advhunter_telemetry::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, Registry, BUCKETS,
};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_value_lands_inside_its_bucket_bounds(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        // Inclusive upper bound, exclusive lower bound (previous bucket's
        // upper bound) — the `le` semantics of the exposition format.
        prop_assert!(v <= bucket_upper_bound(i), "{v} above bucket {i} bound");
        if i > 0 {
            prop_assert!(
                v > bucket_upper_bound(i - 1),
                "{v} not above bucket {} bound",
                i - 1
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn merge_is_associative_and_commutative(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        zs in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        // Associativity: per-thread partials combine identically no
        // matter which workers' results merge first.
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // Commutativity: merge order across threads is irrelevant.
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        // Identity.
        prop_assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
    }

    #[test]
    fn merged_snapshot_equals_single_histogram_over_the_union(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let merged = hist_of(&xs).merge(&hist_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&all));
    }

    #[test]
    fn quantile_bounds_cover_observations(
        xs in proptest::collection::vec(0u64..1_000_000_000, 1..60),
    ) {
        let s = hist_of(&xs);
        let min = *xs.iter().min().unwrap();
        let max = *xs.iter().max().unwrap();
        let p0 = s.quantile(0.0).unwrap();
        let p100 = s.quantile(1.0).unwrap();
        // p0's bucket bound is at least the smallest observation and the
        // p100 bound is exactly the maximum (capped there by design).
        prop_assert!(p0 >= min);
        prop_assert_eq!(p100, max);
        prop_assert!(s.quantile(0.5).unwrap() <= p100);
    }
}

#[test]
fn concurrent_recording_yields_an_exact_snapshot() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let registry = Registry::new();
    let counter = registry.counter("t_ops_total", "ops");
    let gauge = registry.gauge("t_depth", "depth");
    let hist = registry.histogram("t_val", "values");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (counter, gauge, hist) = (&counter, &gauge, &hist);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.record_max(t * PER_THREAD + i + 1);
                    hist.record(i % 1024);
                }
            });
        }
    });
    // After all writers join, the snapshot must be exact — not merely
    // approximately consistent.
    let s = registry.snapshot();
    assert_eq!(s.counter("t_ops_total"), Some(THREADS * PER_THREAD));
    assert_eq!(s.gauge("t_depth"), Some((0, THREADS * PER_THREAD)));
    let h = s.histogram("t_val").unwrap();
    assert_eq!(h.count, THREADS * PER_THREAD);
    let expected_sum: u64 = THREADS * (0..PER_THREAD).map(|i| i % 1024).sum::<u64>();
    assert_eq!(h.sum, expected_sum);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max, 1023);
    // And repeated snapshots of a quiescent registry are identical.
    assert_eq!(registry.snapshot(), s);
}

#[test]
fn snapshot_during_concurrent_recording_is_internally_sane() {
    let registry = Registry::new();
    let hist = registry.histogram("live_val", "values");
    std::thread::scope(|scope| {
        let h = &hist;
        let writer = scope.spawn(move || {
            for i in 0..50_000u64 {
                h.record(i % 4096);
            }
        });
        // Snapshots raced against the writer: bucket totals never exceed
        // the final count and counters only move forward.
        let mut last_count = 0;
        while !writer.is_finished() {
            let s = registry.snapshot();
            let h = s.histogram("live_val").unwrap();
            let bucket_total: u64 = h.buckets.iter().sum();
            assert!(bucket_total <= 50_000);
            assert!(h.count >= last_count, "count went backwards");
            last_count = h.count;
        }
    });
    assert_eq!(
        registry.snapshot().histogram("live_val").unwrap().count,
        50_000
    );
}
