//! Configuration of the query-fingerprint stage.

use std::fmt;

/// All knobs of the fingerprint defense.
///
/// The configuration is `Copy` and fully scalar so it can ride inside
/// monitor and pipeline configurations, be hashed into content-addressed
/// fingerprints, and be compared for exact equality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintConfig {
    /// Pixel quantization step. Perturbations smaller than roughly half a
    /// step collapse onto the same quantized level, which is what makes
    /// near-duplicate attack queries hash alike. The paper-calibrated
    /// attack step sizes (σ ≈ 0.01–0.02) sit well inside the default 0.05.
    pub quant_step: f32,
    /// Length (in quantized elements) of each sliding hash window.
    pub probe_window: usize,
    /// Stride between consecutive hash windows. Larger strides hash fewer
    /// windows per query (faster) at slightly coarser localization.
    pub stride: usize,
    /// Number of probe hashes kept per query (the `k` smallest distinct
    /// window hashes — a min-hash sketch of the query).
    pub probes: usize,
    /// Fingerprints remembered per tenant (sliding window, oldest evicted
    /// first). `0` disables the stage entirely: every query degrades
    /// gracefully to an HPC-only verdict.
    pub window: usize,
    /// Fraction of the incoming query's probes that must overlap a single
    /// stored fingerprint to flag the query as attack-correlated.
    pub match_threshold: f64,
    /// Salt mixed into every probe hash. Per-deployment salts keep an
    /// adaptive adversary from predicting hash collisions offline.
    pub salt: u64,
    /// Hard cap on concurrently tracked tenants. Queries from new tenants
    /// beyond the cap are shed from fingerprinting (HPC-only verdicts),
    /// never admitted at unbounded memory cost.
    pub max_tenants: usize,
}

impl FingerprintConfig {
    /// The disabled configuration: `window == 0`, so no store is built and
    /// every verdict is HPC-only. This is the monitor's default — the
    /// defense is strictly opt-in.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            window: 0,
            ..Self::default()
        }
    }

    /// Whether the stage is active (a nonzero sliding window).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.window > 0
    }

    /// The same configuration with a different per-tenant window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// The same configuration with a different quantization step.
    #[must_use]
    pub fn with_quant_step(mut self, quant_step: f32) -> Self {
        self.quant_step = quant_step;
        self
    }

    /// The same configuration with a different match threshold.
    #[must_use]
    pub fn with_match_threshold(mut self, match_threshold: f64) -> Self {
        self.match_threshold = match_threshold;
        self
    }

    /// The same configuration with a different salt.
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The same configuration with a different tenant cap.
    #[must_use]
    pub fn with_max_tenants(mut self, max_tenants: usize) -> Self {
        self.max_tenants = max_tenants;
        self
    }

    /// Worst-case bytes of fingerprint payload the store can hold:
    /// `max_tenants × window × probes × 8` (each probe is a `u64`), plus
    /// the same again for the inverted index entries. Container sizing can
    /// take this as the hard ceiling — the store never exceeds it
    /// regardless of traffic.
    #[must_use]
    pub fn max_bytes(&self) -> usize {
        2 * self.max_tenants * self.window * self.probes * std::mem::size_of::<u64>()
    }

    /// Checks the configuration for nonsense values. A disabled
    /// configuration (`window == 0`) is always valid.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a
    /// [`FingerprintConfigError`].
    pub fn validate(&self) -> Result<(), FingerprintConfigError> {
        if !self.is_enabled() {
            return Ok(());
        }
        if self.quant_step <= 0.0 || !self.quant_step.is_finite() {
            return Err(FingerprintConfigError::BadQuantStep);
        }
        if self.probe_window == 0 {
            return Err(FingerprintConfigError::ZeroProbeWindow);
        }
        if self.stride == 0 {
            return Err(FingerprintConfigError::ZeroStride);
        }
        if self.probes == 0 {
            return Err(FingerprintConfigError::ZeroProbes);
        }
        if !(self.match_threshold > 0.0 && self.match_threshold <= 1.0) {
            return Err(FingerprintConfigError::BadMatchThreshold);
        }
        if self.max_tenants == 0 {
            return Err(FingerprintConfigError::ZeroMaxTenants);
        }
        Ok(())
    }
}

impl Default for FingerprintConfig {
    /// Blacklight-flavored defaults tuned for the repo's 3×32×32 queries:
    /// 20 quantization levels, 16-element windows at stride 4, 32 probes,
    /// a 256-deep per-tenant window, and a 50 % overlap threshold.
    fn default() -> Self {
        Self {
            quant_step: 0.05,
            probe_window: 16,
            stride: 4,
            probes: 32,
            window: 256,
            match_threshold: 0.5,
            salt: 0xB1AC_1147,
            max_tenants: 1024,
        }
    }
}

/// An invalid [`FingerprintConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintConfigError {
    /// `quant_step` was zero, negative, or non-finite.
    BadQuantStep,
    /// `probe_window` was zero: no window could ever be hashed.
    ZeroProbeWindow,
    /// `stride` was zero: the window scan could never advance.
    ZeroStride,
    /// `probes` was zero: fingerprints would be empty and never match.
    ZeroProbes,
    /// `match_threshold` was outside `(0, 1]`.
    BadMatchThreshold,
    /// `max_tenants` was zero while the stage was enabled.
    ZeroMaxTenants,
}

impl fmt::Display for FingerprintConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadQuantStep => write!(f, "fingerprint quantization step must be positive"),
            Self::ZeroProbeWindow => write!(f, "fingerprint probe window must be positive"),
            Self::ZeroStride => write!(f, "fingerprint stride must be positive"),
            Self::ZeroProbes => write!(f, "fingerprint probe count must be positive"),
            Self::BadMatchThreshold => {
                write!(f, "fingerprint match threshold must be in (0, 1]")
            }
            Self::ZeroMaxTenants => write!(f, "fingerprint tenant cap must be positive"),
        }
    }
}

impl std::error::Error for FingerprintConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_disabled_is_always_valid() {
        assert!(FingerprintConfig::default().validate().is_ok());
        assert!(FingerprintConfig::default().is_enabled());
        let off = FingerprintConfig::disabled();
        assert!(!off.is_enabled());
        assert!(off.validate().is_ok());
        // Even nonsense knobs are fine while disabled.
        let mut nonsense = off;
        nonsense.quant_step = -1.0;
        assert!(nonsense.validate().is_ok());
    }

    #[test]
    fn each_constraint_is_reported() {
        let base = FingerprintConfig::default();
        let cases = [
            (
                FingerprintConfig {
                    quant_step: 0.0,
                    ..base
                },
                FingerprintConfigError::BadQuantStep,
            ),
            (
                FingerprintConfig {
                    probe_window: 0,
                    ..base
                },
                FingerprintConfigError::ZeroProbeWindow,
            ),
            (
                FingerprintConfig { stride: 0, ..base },
                FingerprintConfigError::ZeroStride,
            ),
            (
                FingerprintConfig { probes: 0, ..base },
                FingerprintConfigError::ZeroProbes,
            ),
            (
                FingerprintConfig {
                    match_threshold: 0.0,
                    ..base
                },
                FingerprintConfigError::BadMatchThreshold,
            ),
            (
                FingerprintConfig {
                    match_threshold: 1.5,
                    ..base
                },
                FingerprintConfigError::BadMatchThreshold,
            ),
            (
                FingerprintConfig {
                    max_tenants: 0,
                    ..base
                },
                FingerprintConfigError::ZeroMaxTenants,
            ),
        ];
        for (config, expected) in cases {
            assert_eq!(config.validate(), Err(expected));
        }
    }

    #[test]
    fn memory_bound_is_closed_form() {
        let config = FingerprintConfig::default()
            .with_window(100)
            .with_max_tenants(10);
        assert_eq!(config.max_bytes(), 2 * 10 * 100 * 32 * 8);
    }
}
