//! Query-fingerprint defense against iterative black-box attacks, in the
//! spirit of Blacklight (Li et al., USENIX Security 2022).
//!
//! Query-based attacks (NES, boundary/square refinement) necessarily issue
//! *thousands of near-duplicate queries*: each refinement step probes small
//! perturbations of the same image. Individually every such query can look
//! benign to a per-query detector like AdvHunter's GMM-over-cache-misses;
//! collectively they are glaringly self-similar. This crate detects that
//! self-similarity with probabilistic content fingerprints under a strict
//! memory bound:
//!
//! 1. **Quantize** the query's pixels with a coarse step, so perturbations
//!    smaller than the step collapse onto the same representation.
//! 2. **Hash** the quantized sequence with a salted rolling polynomial hash
//!    over sliding windows, and keep the `k` smallest distinct window
//!    hashes (a min-hash style sketch). Near-duplicate queries share most
//!    of their probe hashes; unrelated queries share almost none.
//! 3. **Match** the probe set against a per-tenant sliding window of the
//!    tenant's recent fingerprints via an inverted probe index. A query
//!    whose best overlap with any stored fingerprint reaches the match
//!    threshold is flagged *attack-correlated*.
//!
//! Every structure is bounded: at most `window` fingerprints per tenant, at
//! most `probes` hashes per fingerprint, at most `max_tenants` tenants —
//! see [`FingerprintConfig::max_bytes`] for the closed-form bound. Inserts
//! and evictions are O(k) amortized (hash-map updates per probe), so
//! lookups sustain well over 100 k queries/s on one core.
//!
//! Everything here is deterministic: the same query sequence against the
//! same configuration produces bit-identical [`MatchReport`]s, which is
//! what lets the monitor service fuse these verdicts with HPC verdicts
//! while staying reproducible across thread counts and arrival batching.

mod config;
mod hash;
mod store;

pub use config::{FingerprintConfig, FingerprintConfigError};
pub use hash::QueryFingerprint;
pub use store::{FingerprintStore, MatchReport, StoreStats, TenantId};
