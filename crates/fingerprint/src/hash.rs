//! Quantization and salted probe hashing: raw pixels → a small, sorted set
//! of `u64` probe hashes (a min-hash style sketch of the query).

use crate::config::FingerprintConfig;

/// Base of the rolling polynomial hash (an arbitrary odd 64-bit constant;
/// quality comes from the final mix, not from the base).
const BASE: u64 = 0x100_0000_01B3;

/// `splitmix64` finalizer: turns the structurally weak rolling-hash value
/// into a well-distributed probe hash. The salt is XORed in *before*
/// mixing, so different salts produce unrelated probe spaces.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One pixel's quantized level, as hash input. `as i64` saturates for
/// non-finite values, so hostile inputs still hash deterministically.
#[inline]
fn quantize(value: f32, step: f32) -> u64 {
    (value / step).round() as i64 as u64
}

/// A query's content fingerprint: the `k` smallest distinct salted window
/// hashes, sorted ascending.
///
/// Two properties the property-test suite pins:
///
/// * **Self-similarity** — identical queries produce identical probe sets,
///   so a repeated query always matches itself with score 1.0.
/// * **Permutation invariance** — the probe set is canonical (sorted,
///   deduplicated), so any permutation of the same probe hashes compares
///   and matches identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryFingerprint {
    probes: Vec<u64>,
}

impl QueryFingerprint {
    /// Fingerprints `data` under `config`: quantize, hash every sliding
    /// window of `probe_window` elements advancing by `stride`, keep the
    /// `probes` smallest distinct hashes.
    ///
    /// Inputs shorter than one window are hashed as a single window; empty
    /// input yields an empty fingerprint (which never matches anything).
    #[must_use]
    pub fn compute(data: &[f32], config: &FingerprintConfig) -> Self {
        if data.is_empty() {
            return Self { probes: Vec::new() };
        }
        let w = config.probe_window.min(data.len());
        let step = config.quant_step;
        let mut keeper = SmallestDistinct::new(config.probes);

        // Rolling polynomial hash: one multiply-add per element, O(1) per
        // advanced position — the whole scan is linear in the query size.
        let top_power = BASE.wrapping_pow(u32::try_from(w - 1).unwrap_or(u32::MAX));
        let mut h: u64 = 0;
        for &v in &data[..w] {
            h = h.wrapping_mul(BASE).wrapping_add(quantize(v, step));
        }
        keeper.offer(mix(h ^ config.salt));
        let mut start = 0usize;
        let last_start = data.len() - w;
        let mut next_emit = config.stride;
        while start < last_start {
            let out = quantize(data[start], step);
            let inc = quantize(data[start + w], step);
            h = h
                .wrapping_sub(out.wrapping_mul(top_power))
                .wrapping_mul(BASE)
                .wrapping_add(inc);
            start += 1;
            if start == next_emit || start == last_start {
                keeper.offer(mix(h ^ config.salt));
                next_emit += config.stride;
            }
        }
        Self {
            probes: keeper.into_sorted(),
        }
    }

    /// Builds a fingerprint from raw probe hashes, canonicalizing them
    /// (sorted, deduplicated). Any permutation of the same hashes builds
    /// the same fingerprint.
    #[must_use]
    pub fn from_probes(mut probes: Vec<u64>) -> Self {
        probes.sort_unstable();
        probes.dedup();
        Self { probes }
    }

    /// The canonical probe set: sorted ascending, distinct.
    #[must_use]
    pub fn probes(&self) -> &[u64] {
        &self.probes
    }

    /// Number of probes (at most the configured `probes`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the fingerprint is empty (only possible for empty input).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

/// Bounded keeper of the `k` smallest distinct values, as a small sorted
/// array. `offer` is one comparison for the common case (candidate larger
/// than the current maximum) and O(k) on acceptance — with k ≈ 32 this is
/// far cheaper than sorting every window hash.
struct SmallestDistinct {
    k: usize,
    sorted: Vec<u64>,
}

impl SmallestDistinct {
    fn new(k: usize) -> Self {
        Self {
            k,
            sorted: Vec::with_capacity(k),
        }
    }

    fn offer(&mut self, value: u64) {
        if self.k == 0 {
            return;
        }
        if self.sorted.len() == self.k && value >= *self.sorted.last().expect("non-empty") {
            return;
        }
        if let Err(pos) = self.sorted.binary_search(&value) {
            if self.sorted.len() == self.k {
                self.sorted.pop();
            }
            self.sorted.insert(pos, value);
        }
    }

    fn into_sorted(self) -> Vec<u64> {
        self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FingerprintConfig {
        FingerprintConfig::default()
    }

    #[test]
    fn identical_inputs_hash_identically() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin().abs()).collect();
        let a = QueryFingerprint::compute(&data, &config());
        let b = QueryFingerprint::compute(&data, &config());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.len() <= config().probes);
    }

    #[test]
    fn probes_are_sorted_and_distinct() {
        let data: Vec<f32> = (0..512).map(|i| ((i * 7) % 23) as f32 * 0.04).collect();
        let fp = QueryFingerprint::compute(&data, &config());
        for pair in fp.probes().windows(2) {
            assert!(pair[0] < pair[1], "probes must be strictly ascending");
        }
    }

    #[test]
    fn sub_quantization_perturbations_collapse() {
        // Values on quantization-cell centers (multiples of the step), so a
        // small perturbation stays well inside the cell.
        let data: Vec<f32> = (0..256).map(|i| (i % 17) as f32 * 0.05).collect();
        // Perturb every pixel by much less than half a quantization step:
        // the quantized levels are unchanged, so the probes are identical.
        let perturbed: Vec<f32> = data.iter().map(|v| v + 0.004).collect();
        let cfg = config();
        assert_eq!(
            QueryFingerprint::compute(&data, &cfg),
            QueryFingerprint::compute(&perturbed, &cfg)
        );
    }

    #[test]
    fn unrelated_inputs_share_few_probes() {
        let a: Vec<f32> = (0..1024)
            .map(|i| ((i * 31 + 7) % 97) as f32 / 97.0)
            .collect();
        let b: Vec<f32> = (0..1024)
            .map(|i| ((i * 17 + 3) % 89) as f32 / 89.0)
            .collect();
        let cfg = config();
        let fa = QueryFingerprint::compute(&a, &cfg);
        let fb = QueryFingerprint::compute(&b, &cfg);
        let shared = fa
            .probes()
            .iter()
            .filter(|p| fb.probes().contains(p))
            .count();
        assert!(
            shared * 4 < fa.len(),
            "unrelated queries shared {shared}/{} probes",
            fa.len()
        );
    }

    #[test]
    fn salt_changes_the_probe_space() {
        let data: Vec<f32> = (0..256).map(|i| (i % 13) as f32 * 0.07).collect();
        let fa = QueryFingerprint::compute(&data, &config());
        let fb = QueryFingerprint::compute(&data, &config().with_salt(99));
        assert_ne!(fa, fb);
    }

    #[test]
    fn short_and_empty_inputs_are_handled() {
        let cfg = config();
        assert!(QueryFingerprint::compute(&[], &cfg).is_empty());
        let short = QueryFingerprint::compute(&[0.5, 0.25], &cfg);
        assert_eq!(short.len(), 1, "sub-window input hashes as one window");
    }

    #[test]
    fn from_probes_is_permutation_invariant() {
        let a = QueryFingerprint::from_probes(vec![3, 1, 2, 2, 9]);
        let b = QueryFingerprint::from_probes(vec![9, 2, 3, 1, 1]);
        assert_eq!(a, b);
        assert_eq!(a.probes(), &[1, 2, 3, 9]);
    }

    #[test]
    fn hostile_values_hash_deterministically() {
        let data = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e30, -1e30];
        let cfg = config();
        assert_eq!(
            QueryFingerprint::compute(&data, &cfg),
            QueryFingerprint::compute(&data, &cfg)
        );
    }
}
