//! The per-tenant sliding-window fingerprint store with bounded memory and
//! O(k) amortized insert/evict.
//!
//! Layout (DESIGN.md §14):
//!
//! ```text
//! FingerprintStore
//! ├── tenants: HashMap<TenantId, TenantWindow>     (≤ max_tenants)
//! │     TenantWindow
//! │     ├── entries: VecDeque<Entry>               (≤ window, FIFO)
//! │     │     Entry { seq, probes: Vec<u64> }      (≤ probes hashes)
//! │     └── index: HashMap<u64, Vec<u64>>          (probe → seq list)
//! └── scratch: Vec<u64>                            (reused per match)
//! ```
//!
//! A lookup walks the incoming query's ≤ k probes through the tenant's
//! inverted index, collects the sequence numbers of stored fingerprints
//! sharing each probe, and takes the *maximum per-sequence hit count* —
//! the best overlap with any single stored query. Insert appends to the
//! FIFO and adds ≤ k index entries; evict pops the oldest entry and
//! removes its ≤ k index entries. Nothing is ever scanned linearly over
//! the window, so cost is independent of `window` size.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, OnceLock};

use advhunter_telemetry::{global, Counter, Gauge};

use crate::config::FingerprintConfig;
use crate::hash::QueryFingerprint;

/// A splitmix64 finalizer over `u64` keys: probe hashes and tenant ids are
/// already well-mixed or attacker-opaque (probes carry the store's salt),
/// so the default DoS-resistant SipHash only costs throughput here. This
/// shaves ~40% off `observe` — the difference between meeting and missing
/// the 100k queries/s floor.
#[derive(Default, Clone, Copy)]
struct ProbeHasher(u64);

impl Hasher for ProbeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type ProbeMap<V> = HashMap<u64, V, BuildHasherDefault<ProbeHasher>>;

/// Tenant identifier. The monitor's single-tenant entry points use
/// [`DEFAULT_TENANT`](FingerprintStore::DEFAULT_TENANT).
pub type TenantId = u64;

/// Outcome of matching one query against its tenant's window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchReport {
    /// Best overlap fraction with any single stored fingerprint, in
    /// `[0, 1]`: `best_overlap / probes`.
    pub score: f64,
    /// Raw probe overlap count behind `score`.
    pub best_overlap: usize,
    /// Probe count of the incoming query (the score's denominator).
    pub probes: usize,
    /// Stored fingerprints in the tenant's window at match time.
    pub window_len: usize,
    /// Whether `score` reached the configured match threshold — the
    /// query-correlated bit fused into the monitor verdict.
    pub matched: bool,
    /// The store was at its tenant cap and this query's tenant was not
    /// tracked: the query was not fingerprinted (HPC-only verdict).
    pub shed: bool,
}

impl MatchReport {
    fn shed() -> Self {
        Self {
            score: 0.0,
            best_overlap: 0,
            probes: 0,
            window_len: 0,
            matched: false,
            shed: true,
        }
    }
}

/// Point-in-time counters of one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Tenants currently tracked.
    pub tenants: usize,
    /// Fingerprints currently stored across all tenant windows.
    pub entries: usize,
    /// Probe-hash slots currently held in inverted indexes (≤
    /// `entries × probes`).
    pub probe_slots: usize,
    /// Queries observed (matched-then-inserted).
    pub observed: u64,
    /// Queries whose match score reached the threshold.
    pub matched: u64,
    /// Fingerprints evicted from full tenant windows.
    pub evictions: u64,
    /// Queries shed because the tenant cap was reached.
    pub shed: u64,
}

struct Entry {
    seq: u64,
    probes: Vec<u64>,
}

/// One inverted-index bucket. The common case by far is a single stored
/// fingerprint per probe hash, so that case is inline — in steady state an
/// observe cycle then allocates nothing for the index at all.
enum Bucket {
    /// Exactly one stored fingerprint carries this probe.
    One(u64),
    /// Two or more do (an all-duplicates window bounds this at `window`).
    Many(Vec<u64>),
}

impl Bucket {
    fn push(&mut self, seq: u64) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, seq]),
            Bucket::Many(seqs) => seqs.push(seq),
        }
    }

    /// Removes `seq`; true when the bucket is now empty and should be
    /// dropped from the index.
    fn remove(&mut self, seq: u64) -> bool {
        match self {
            Bucket::One(only) => *only == seq,
            Bucket::Many(seqs) => {
                seqs.retain(|&s| s != seq);
                if let [only] = seqs.as_slice() {
                    *self = Bucket::One(*only);
                }
                false
            }
        }
    }
}

#[derive(Default)]
struct TenantWindow {
    entries: VecDeque<Entry>,
    index: ProbeMap<Bucket>,
    next_seq: u64,
}

impl TenantWindow {
    /// Sequence numbers of stored fingerprints sharing each incoming
    /// probe, appended into `hits`.
    fn collect_hits(&self, probes: &[u64], hits: &mut Vec<u64>) {
        for probe in probes {
            match self.index.get(probe) {
                Some(Bucket::One(seq)) => hits.push(*seq),
                Some(Bucket::Many(seqs)) => hits.extend_from_slice(seqs),
                None => {}
            }
        }
    }

    fn insert(&mut self, fingerprint: &QueryFingerprint, window: usize) -> bool {
        // Evict the oldest entry of a full window, recycling its probe
        // buffer for the incoming entry (steady state allocates nothing).
        let mut recycled = Vec::new();
        let evicted = self.entries.len() == window;
        if evicted {
            let old = self.entries.pop_front().expect("window non-empty");
            for probe in &old.probes {
                if let Some(bucket) = self.index.get_mut(probe) {
                    if bucket.remove(old.seq) {
                        self.index.remove(probe);
                    }
                }
            }
            recycled = old.probes;
            recycled.clear();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        for &probe in fingerprint.probes() {
            match self.index.entry(probe) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(seq),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Bucket::One(seq));
                }
            }
        }
        recycled.extend_from_slice(fingerprint.probes());
        self.entries.push_back(Entry {
            seq,
            probes: recycled,
        });
        evicted
    }
}

/// Process-global telemetry for every fingerprint store (merged into the
/// monitor's unified metrics snapshot like the exec and runtime families).
struct StoreMetrics {
    observed: Arc<Counter>,
    matched: Arc<Counter>,
    inserts: Arc<Counter>,
    evictions: Arc<Counter>,
    shed: Arc<Counter>,
    tenants: Arc<Gauge>,
}

fn metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        StoreMetrics {
            observed: r.counter(
                "advhunter_fingerprint_observed_total",
                "Queries matched against and inserted into a fingerprint store",
            ),
            matched: r.counter(
                "advhunter_fingerprint_matched_total",
                "Queries whose best-overlap score reached the match threshold",
            ),
            inserts: r.counter(
                "advhunter_fingerprint_inserts_total",
                "Fingerprints inserted into tenant windows",
            ),
            evictions: r.counter(
                "advhunter_fingerprint_evictions_total",
                "Fingerprints evicted from full tenant windows",
            ),
            shed: r.counter(
                "advhunter_fingerprint_shed_total",
                "Queries shed because the store was at its tenant cap",
            ),
            tenants: r.gauge(
                "advhunter_fingerprint_tenants",
                "Tenants currently tracked (level per store; _max is the high watermark)",
            ),
        }
    })
}

/// The bounded, deterministic query-fingerprint store.
///
/// Determinism contract: [`observe`](Self::observe) outcomes are a pure
/// function of the configuration and the *sequence* of `(tenant, query)`
/// observations — hash-map iteration order never influences a score (the
/// best-overlap maximum is order-free), so the monitor can replay the same
/// admission order at any thread count and get bit-identical reports.
pub struct FingerprintStore {
    config: FingerprintConfig,
    tenants: ProbeMap<TenantWindow>,
    scratch: Vec<u64>,
    stats: StoreStats,
}

impl FingerprintStore {
    /// The tenant id used by single-tenant callers.
    pub const DEFAULT_TENANT: TenantId = 0;

    /// A store for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not [`validate`](FingerprintConfig::validate)
    /// or is disabled — callers gate on
    /// [`is_enabled`](FingerprintConfig::is_enabled) first.
    #[must_use]
    pub fn new(config: FingerprintConfig) -> Self {
        config.validate().expect("invalid fingerprint config");
        assert!(
            config.is_enabled(),
            "a disabled fingerprint config builds no store"
        );
        Self {
            config,
            tenants: ProbeMap::default(),
            scratch: Vec::new(),
            stats: StoreStats::default(),
        }
    }

    /// The store's configuration.
    #[must_use]
    pub fn config(&self) -> &FingerprintConfig {
        &self.config
    }

    /// Fingerprints raw query data under this store's configuration.
    #[must_use]
    pub fn fingerprint(&self, data: &[f32]) -> QueryFingerprint {
        QueryFingerprint::compute(data, &self.config)
    }

    /// The full observation step: match `fingerprint` against `tenant`'s
    /// window, then insert it (evicting the oldest entry if the window is
    /// full). Matching happens *before* insertion, so a query never
    /// matches itself — only earlier queries.
    ///
    /// When the store is at `max_tenants` and `tenant` is not yet tracked,
    /// the query is shed: nothing is stored and the report carries
    /// `shed = true` (the monitor degrades that request to an HPC-only
    /// verdict).
    pub fn observe(&mut self, tenant: TenantId, fingerprint: &QueryFingerprint) -> MatchReport {
        if !self.tenants.contains_key(&tenant) {
            if self.tenants.len() >= self.config.max_tenants {
                self.stats.shed += 1;
                metrics().shed.inc();
                return MatchReport::shed();
            }
            self.tenants.insert(tenant, TenantWindow::default());
            metrics().tenants.set(self.tenants.len() as u64);
        }
        let window = self.tenants.get_mut(&tenant).expect("tenant admitted");

        // Match: best overlap with any single stored fingerprint, via the
        // inverted index. `scratch` holds one seq per (probe, entry) hit;
        // sorting it groups hits by entry, and the longest run is the best
        // overlap. Hit lists are tiny (≤ k per probe in the worst case of
        // an all-duplicate window), so the sort is cheap and, crucially,
        // the maximum is independent of any hash-map ordering.
        self.scratch.clear();
        window.collect_hits(fingerprint.probes(), &mut self.scratch);
        self.scratch.sort_unstable();
        let mut best_overlap = 0usize;
        let mut run = 0usize;
        let mut prev: Option<u64> = None;
        for &seq in &self.scratch {
            run = if prev == Some(seq) { run + 1 } else { 1 };
            prev = Some(seq);
            best_overlap = best_overlap.max(run);
        }
        let probes = fingerprint.len();
        let score = if probes == 0 {
            0.0
        } else {
            best_overlap as f64 / probes as f64
        };
        let matched = probes > 0 && score >= self.config.match_threshold;
        let report = MatchReport {
            score,
            best_overlap,
            probes,
            window_len: window.entries.len(),
            matched,
            shed: false,
        };

        // Insert (and evict the oldest entry of a full window).
        let evicted = window.insert(fingerprint, self.config.window);

        self.stats.observed += 1;
        let m = metrics();
        m.observed.inc();
        m.inserts.inc();
        if matched {
            self.stats.matched += 1;
            m.matched.inc();
        }
        if evicted {
            self.stats.evictions += 1;
            m.evictions.inc();
        }
        report
    }

    /// Convenience: fingerprint raw data and [`observe`](Self::observe) it.
    pub fn observe_query(&mut self, tenant: TenantId, data: &[f32]) -> MatchReport {
        let fp = self.fingerprint(data);
        self.observe(tenant, &fp)
    }

    /// Current counters. `entries` and `probe_slots` are recomputed from
    /// the live structures, so they are exact bounds, not estimates.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats;
        stats.tenants = self.tenants.len();
        stats.entries = self.tenants.values().map(|t| t.entries.len()).sum();
        stats.probe_slots = self
            .tenants
            .values()
            .map(|t| t.entries.iter().map(|e| e.probes.len()).sum::<usize>())
            .sum();
        stats
    }

    /// Number of tenants currently tracked.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The per-tenant sequence numbers currently stored, oldest first
    /// (`None` for an untracked tenant). Sequence numbers count that
    /// tenant's insertions from zero, so tests can pin exactly which
    /// observations survived the sliding window.
    #[must_use]
    pub fn window_seqs(&self, tenant: TenantId) -> Option<Vec<u64>> {
        self.tenants
            .get(&tenant)
            .map(|t| t.entries.iter().map(|e| e.seq).collect())
    }
}

impl std::fmt::Debug for FingerprintStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FingerprintStore")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FingerprintConfig {
        FingerprintConfig::default()
            .with_window(4)
            .with_max_tenants(2)
    }

    fn query(seed: u64) -> Vec<f32> {
        (0..256)
            .map(|i| (((i as u64).wrapping_mul(seed * 2 + 31) % 101) as f32) / 101.0)
            .collect()
    }

    #[test]
    fn repeated_query_matches_itself_with_full_score() {
        let mut store = FingerprintStore::new(tiny_config());
        let first = store.observe_query(0, &query(7));
        assert!(!first.matched, "nothing stored yet");
        assert_eq!(first.window_len, 0);
        let second = store.observe_query(0, &query(7));
        assert!(second.matched);
        assert_eq!(second.score, 1.0);
        assert_eq!(second.best_overlap, second.probes);
        assert_eq!(second.window_len, 1);
    }

    #[test]
    fn unrelated_queries_do_not_match() {
        let mut store = FingerprintStore::new(tiny_config());
        store.observe_query(0, &query(7));
        let other = store.observe_query(0, &query(1234));
        assert!(!other.matched, "score {}", other.score);
        assert!(other.score < 0.5);
    }

    #[test]
    fn sliding_window_evicts_oldest_and_forgets_it() {
        let mut store = FingerprintStore::new(tiny_config());
        for seed in 0..5 {
            store.observe_query(0, &query(seed));
        }
        // Window of 4: seq 0 evicted, 1..=4 retained in order.
        assert_eq!(store.window_seqs(0), Some(vec![1, 2, 3, 4]));
        assert_eq!(store.stats().evictions, 1);
        // The evicted query no longer matches; a retained one still does.
        assert!(!store.observe_query(0, &query(0)).matched);
        assert!(store.observe_query(0, &query(3)).matched);
    }

    #[test]
    fn tenant_cap_sheds_new_tenants_only() {
        let mut store = FingerprintStore::new(tiny_config());
        store.observe_query(0, &query(1));
        store.observe_query(1, &query(2));
        let shed = store.observe_query(2, &query(3));
        assert!(shed.shed);
        assert!(!shed.matched);
        assert_eq!(store.tenant_count(), 2);
        assert_eq!(store.stats().shed, 1);
        // Existing tenants keep full service.
        assert!(store.observe_query(1, &query(2)).matched);
    }

    #[test]
    fn tenants_never_see_each_other() {
        let mut store = FingerprintStore::new(tiny_config());
        store.observe_query(0, &query(7));
        let other_tenant = store.observe_query(1, &query(7));
        assert!(
            !other_tenant.matched,
            "tenant 1 must not match tenant 0's history"
        );
        assert_eq!(other_tenant.window_len, 0);
    }

    #[test]
    fn stats_track_exact_bounds() {
        let config = tiny_config();
        let mut store = FingerprintStore::new(config);
        for seed in 0..9 {
            store.observe_query(seed % 2, &query(seed));
        }
        let stats = store.stats();
        assert_eq!(stats.tenants, 2);
        assert!(stats.entries <= config.window * config.max_tenants);
        assert!(stats.probe_slots <= stats.entries * config.probes);
        assert_eq!(stats.observed, 9);
    }
}
