//! Property-test net over the fingerprint store (ISSUE 6, satellite 1):
//! memory bounds, eviction order, self-matching, and permutation
//! invariance, each over hundreds of generated configurations and query
//! streams.

use advhunter_fingerprint::{FingerprintConfig, FingerprintStore, QueryFingerprint};
use proptest::prelude::*;

/// A deterministic pseudo-random query derived from a seed: values in
/// `[0, 1]` with enough structure that distinct seeds rarely collide.
fn query(seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(seed.wrapping_mul(1_442_695_040_888_963_407));
            (x >> 33) as f32 / (u32::MAX >> 1) as f32
        })
        .collect()
}

fn small_config(window: usize, max_tenants: usize, probes: usize) -> FingerprintConfig {
    let mut config = FingerprintConfig::default()
        .with_window(window)
        .with_max_tenants(max_tenants);
    config.probes = probes;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store never exceeds its closed-form memory bound, no matter
    /// the configuration or traffic pattern.
    #[test]
    fn memory_bound_is_never_exceeded(
        window in 1usize..6,
        max_tenants in 1usize..4,
        probes in 1usize..16,
        traffic_seed in any::<u64>(),
    ) {
        let config = small_config(window, max_tenants, probes);
        let mut store = FingerprintStore::new(config);
        for i in 0..64u64 {
            let tenant = (traffic_seed.rotate_left(i as u32) ^ i) % 7;
            store.observe_query(tenant, &query(traffic_seed.wrapping_add(i), 96));
            let stats = store.stats();
            prop_assert!(stats.tenants <= max_tenants);
            prop_assert!(stats.entries <= max_tenants * window);
            prop_assert!(stats.probe_slots <= stats.entries * probes);
            // Stored probes plus their inverted-index mirror stay under
            // the documented byte ceiling.
            prop_assert!(2 * stats.probe_slots * 8 <= config.max_bytes());
        }
    }

    /// Eviction is strictly oldest-first: after n single-tenant
    /// observations the window holds exactly the last min(n, window)
    /// sequence numbers, in insertion order.
    #[test]
    fn eviction_preserves_sliding_window_order(
        window in 1usize..8,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut store = FingerprintStore::new(small_config(window, 2, 8));
        for i in 0..n {
            store.observe_query(0, &query(seed.wrapping_add(i as u64), 64));
        }
        let kept = n.min(window);
        let expected: Vec<u64> = ((n - kept) as u64..n as u64).collect();
        prop_assert_eq!(store.window_seqs(0).unwrap(), expected);
        prop_assert_eq!(store.stats().evictions, (n - kept) as u64);
    }

    /// A repeated query always matches its earlier self with full score,
    /// regardless of what else the tenant sent in between (as long as the
    /// original has not slid out of the window).
    #[test]
    fn identical_queries_always_match_themselves(
        seed in any::<u64>(),
        interleaved in 0usize..4,
    ) {
        let mut store = FingerprintStore::new(small_config(8, 2, 16));
        let data = query(seed, 128);
        let first = store.observe_query(0, &data);
        prop_assert!(!first.matched, "an empty window matches nothing");
        for i in 0..interleaved {
            store.observe_query(0, &query(seed ^ (0xABCD + i as u64), 128));
        }
        let again = store.observe_query(0, &data);
        prop_assert!(again.matched);
        prop_assert_eq!(again.best_overlap, again.probes);
        prop_assert!((again.score - 1.0).abs() < 1e-12);
    }

    /// Match scores are invariant under any permutation of the probe-hash
    /// order: fingerprints are canonical sets, so two arbitrary orderings
    /// of the same probes produce bit-identical reports.
    #[test]
    fn match_scores_are_permutation_invariant(
        stored_seed in any::<u64>(),
        probe_seed in any::<u64>(),
        len in 1usize..24,
    ) {
        // An arbitrary probe list (duplicates allowed) and a pseudo-random
        // permutation of it.
        let probes: Vec<u64> = (0..len)
            .map(|i| probe_seed.rotate_left((i * 7 % 64) as u32) ^ (i as u64) << 3)
            .collect();
        let mut permuted = probes.clone();
        for i in (1..permuted.len()).rev() {
            let j = (stored_seed.rotate_right(i as u32) as usize) % (i + 1);
            permuted.swap(i, j);
        }
        let a = QueryFingerprint::from_probes(probes);
        let b = QueryFingerprint::from_probes(permuted);
        prop_assert_eq!(a.probes(), b.probes());

        // And the full store agrees: identical histories, then the same
        // query in both probe orders, yield bit-identical reports.
        let mut store_a = FingerprintStore::new(small_config(4, 1, 32));
        let mut store_b = FingerprintStore::new(small_config(4, 1, 32));
        for i in 0..3u64 {
            let history = store_a.fingerprint(&query(stored_seed.wrapping_add(i), 96));
            store_a.observe(0, &history);
            store_b.observe(0, &history);
        }
        prop_assert_eq!(store_a.observe(0, &a), store_b.observe(0, &b));
    }
}
