//! Gaussian mixture models fit by expectation-maximization, with BIC model
//! selection — the statistical core of the AdvHunter detector (paper §3,
//! §5.3, Algorithm 1).
//!
//! The detector models each (output-category, HPC-event) pair with a 1-D GMM
//! ([`Gmm1d`]) whose component count is chosen by the Bayesian Information
//! Criterion ([`fit_bic_1d`]). A diagonal-covariance multivariate variant
//! ([`GmmDiag`]) is provided for the event-fusion ablation.
//!
//! # Example
//!
//! ```
//! use advhunter_gmm::{fit_bic_1d, EmConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // Two well-separated modes.
//! let data: Vec<f64> = (0..50)
//!     .map(|i| if i % 2 == 0 { i as f64 * 1e-3 } else { 10.0 + i as f64 * 1e-3 })
//!     .collect();
//! let fit = fit_bic_1d(&data, 1..=4, &EmConfig::default(), &mut rng)?;
//! assert_eq!(fit.model.num_components(), 2);
//! # Ok::<(), advhunter_gmm::FitGmmError>(())
//! ```

mod em;
mod multivariate;
mod select;
mod univariate;

pub use em::{EmConfig, FitGmmError};
pub use multivariate::GmmDiag;
pub use select::{fit_aic_1d, fit_bic_1d, fit_bic_diag, BicFit};
pub use univariate::Gmm1d;

/// Natural log of 2π, used by every Gaussian density in this crate.
pub(crate) const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// Numerically stable `log(Σ exp(x_i))`.
pub(crate) fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let xs = [0.0f64, 1.0, -2.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_large_magnitudes() {
        let xs = [-1000.0, -1000.5];
        let v = log_sum_exp(&xs);
        assert!(v.is_finite());
        assert!((v - (-1000.0 + (1.0 + (-0.5f64).exp()).ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_of_empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }
}
