//! One-dimensional Gaussian mixture models.

use rand::Rng;

use crate::{log_sum_exp, EmConfig, FitGmmError, LN_2PI};

/// A fitted one-dimensional Gaussian mixture model.
///
/// This is the model AdvHunter builds per (output category, HPC event): the
/// offline phase fits it to the mean counter values of clean validation
/// images, and the online phase scores unknown inputs by negative
/// log-likelihood.
///
/// # Example
///
/// ```
/// use advhunter_gmm::{EmConfig, Gmm1d};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data = [1.0, 1.1, 0.9, 5.0, 5.2, 4.8];
/// let gmm = Gmm1d::fit(&data, 2, &EmConfig::default(), &mut rng)?;
/// // A point near a mode scores much better than an outlier.
/// assert!(gmm.nll(1.0) < gmm.nll(30.0));
/// # Ok::<(), advhunter_gmm::FitGmmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm1d {
    weights: Vec<f64>,
    means: Vec<f64>,
    variances: Vec<f64>,
}

impl Gmm1d {
    /// Builds a mixture directly from parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameter vectors differ in length, are empty, the
    /// weights do not sum to ~1, or any variance is non-positive.
    pub fn from_parameters(weights: Vec<f64>, means: Vec<f64>, variances: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "mixture needs at least one component");
        assert_eq!(weights.len(), means.len(), "weights/means length mismatch");
        assert_eq!(
            weights.len(),
            variances.len(),
            "weights/variances length mismatch"
        );
        let sum: f64 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights must sum to 1, got {sum}");
        assert!(
            variances.iter().all(|&v| v > 0.0),
            "variances must be positive"
        );
        Self {
            weights,
            means,
            variances,
        }
    }

    /// Fits a `k`-component mixture to `data` with EM (paper Algorithm 1).
    ///
    /// Runs `config.restarts` k-means++-seeded restarts and keeps the fit
    /// with the best log-likelihood.
    ///
    /// # Errors
    ///
    /// Returns [`FitGmmError`] if `k == 0`, `data.len() < k`, or `data`
    /// contains non-finite values.
    pub fn fit(
        data: &[f64],
        k: usize,
        config: &EmConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, FitGmmError> {
        if k == 0 {
            return Err(FitGmmError::ZeroComponents);
        }
        if data.len() < k {
            return Err(FitGmmError::NotEnoughData {
                points: data.len(),
                components: k,
            });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(FitGmmError::NonFiniteData);
        }

        let mut best: Option<(f64, Gmm1d)> = None;
        for _ in 0..config.restarts.max(1) {
            let model = Self::fit_once(data, k, config, rng);
            let ll = model.log_likelihood(data);
            if best.as_ref().is_none_or(|(b, _)| ll > *b) {
                best = Some((ll, model));
            }
        }
        Ok(best.expect("at least one restart ran").1)
    }

    fn fit_once(data: &[f64], k: usize, config: &EmConfig, rng: &mut impl Rng) -> Self {
        let n = data.len();
        let global_var = variance(data).max(config.variance_floor);
        let floor = (config.relative_floor * global_var).max(config.variance_floor);

        // k-means++-style seeding for the means.
        let mut means = kmeanspp_seeds(data, k, rng);
        let mut weights = vec![1.0 / k as f64; k];
        let mut variances = vec![global_var; k];

        let mut resp = vec![0.0f64; n * k];
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..config.max_iters {
            // E-step: responsibilities γ_ik.
            let mut ll = 0.0;
            for (i, &x) in data.iter().enumerate() {
                let row = &mut resp[i * k..(i + 1) * k];
                for c in 0..k {
                    row[c] = weights[c].ln() + log_normal_pdf(x, means[c], variances[c]);
                }
                let lse = log_sum_exp(row);
                ll += lse;
                for v in row.iter_mut() {
                    *v = (*v - lse).exp();
                }
            }
            // M-step.
            for c in 0..k {
                let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
                if nk < 1e-12 {
                    // Dead component: re-seed it on a random data point.
                    means[c] = data[rng.gen_range(0..n)];
                    variances[c] = global_var;
                    weights[c] = 1.0 / n as f64;
                    continue;
                }
                let mu: f64 = (0..n).map(|i| resp[i * k + c] * data[i]).sum::<f64>() / nk;
                let var: f64 = (0..n)
                    .map(|i| {
                        let d = data[i] - mu;
                        resp[i * k + c] * d * d
                    })
                    .sum::<f64>()
                    / nk;
                means[c] = mu;
                variances[c] = var.max(floor);
                weights[c] = nk / n as f64;
            }
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= wsum;
            }

            let mean_ll = ll / n as f64;
            if (mean_ll - prev_ll).abs() < config.tol {
                break;
            }
            prev_ll = mean_ll;
        }
        Self {
            weights,
            means,
            variances,
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Mixing coefficients π_k (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means μ_k.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Component variances σ²_k.
    pub fn variances(&self) -> &[f64] {
        &self.variances
    }

    /// Log-density of a single point under the mixture.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let terms: Vec<f64> = (0..self.num_components())
            .map(|c| self.weights[c].ln() + log_normal_pdf(x, self.means[c], self.variances[c]))
            .collect();
        log_sum_exp(&terms)
    }

    /// Negative log-likelihood of a single point — AdvHunter's anomaly score
    /// `l_n^u` (paper §5.4).
    pub fn nll(&self, x: f64) -> f64 {
        -self.log_pdf(x)
    }

    /// Total log-likelihood of a dataset.
    pub fn log_likelihood(&self, data: &[f64]) -> f64 {
        data.iter().map(|&x| self.log_pdf(x)).sum()
    }

    /// Bayesian Information Criterion on `data`: `p·ln(n) − 2·ln L` where a
    /// 1-D k-component mixture has `p = 3k − 1` free parameters.
    pub fn bic(&self, data: &[f64]) -> f64 {
        let k = self.num_components() as f64;
        let p = 3.0 * k - 1.0;
        p * (data.len() as f64).ln() - 2.0 * self.log_likelihood(data)
    }
}

/// Log-density of `N(mean, var)` at `x`.
fn log_normal_pdf(x: f64, mean: f64, var: f64) -> f64 {
    let d = x - mean;
    -0.5 * (LN_2PI + var.ln() + d * d / var)
}

fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64
}

/// k-means++ seeding: first seed uniform, later seeds proportional to the
/// squared distance to the nearest existing seed.
fn kmeanspp_seeds(data: &[f64], k: usize, rng: &mut impl Rng) -> Vec<f64> {
    let n = data.len();
    let mut seeds = Vec::with_capacity(k);
    seeds.push(data[rng.gen_range(0..n)]);
    let mut d2 = vec![0.0f64; n];
    while seeds.len() < k {
        let mut total = 0.0;
        for (i, &x) in data.iter().enumerate() {
            let nearest = seeds
                .iter()
                .map(|&s| (x - s) * (x - s))
                .fold(f64::INFINITY, f64::min);
            d2[i] = nearest;
            total += nearest;
        }
        if total <= 0.0 {
            // All points coincide with seeds; fall back to uniform picks.
            seeds.push(data[rng.gen_range(0..n)]);
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = n - 1;
        for (i, &w) in d2.iter().enumerate() {
            if target < w {
                chosen = i;
                break;
            }
            target -= w;
        }
        seeds.push(data[chosen]);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal_data() -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.push(10.0 + gauss(&mut rng) * 0.5);
            data.push(50.0 + gauss(&mut rng) * 1.0);
        }
        data
    }

    fn gauss(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn fit_recovers_two_separated_modes() {
        let data = bimodal_data();
        let mut rng = StdRng::seed_from_u64(3);
        let gmm = Gmm1d::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        let mut means = gmm.means().to_vec();
        means.sort_by(f64::total_cmp);
        assert!((means[0] - 10.0).abs() < 0.5, "mode 1 at {}", means[0]);
        assert!((means[1] - 50.0).abs() < 1.5, "mode 2 at {}", means[1]);
        for &w in gmm.weights() {
            assert!((w - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn nll_flags_outliers() {
        let data = bimodal_data();
        let mut rng = StdRng::seed_from_u64(4);
        let gmm = Gmm1d::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        assert!(gmm.nll(10.0) < gmm.nll(30.0));
        assert!(gmm.nll(50.0) < gmm.nll(200.0));
    }

    #[test]
    fn em_does_not_decrease_likelihood_vs_single_gaussian() {
        // A 2-component fit on bimodal data must beat the 1-component fit.
        let data = bimodal_data();
        let mut rng = StdRng::seed_from_u64(5);
        let g1 = Gmm1d::fit(&data, 1, &EmConfig::default(), &mut rng).unwrap();
        let g2 = Gmm1d::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        assert!(g2.log_likelihood(&data) > g1.log_likelihood(&data));
    }

    #[test]
    fn bic_prefers_two_components_for_bimodal_data() {
        let data = bimodal_data();
        let mut rng = StdRng::seed_from_u64(6);
        let g1 = Gmm1d::fit(&data, 1, &EmConfig::default(), &mut rng).unwrap();
        let g2 = Gmm1d::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        assert!(g2.bic(&data) < g1.bic(&data));
    }

    #[test]
    fn single_component_matches_sample_moments() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gmm1d::fit(&data, 1, &EmConfig::default(), &mut rng).unwrap();
        assert!((g.means()[0] - 49.5).abs() < 1e-6);
        let var = variance(&data);
        assert!((g.variances()[0] - var).abs() / var < 1e-4);
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(
            Gmm1d::fit(&[1.0], 2, &EmConfig::default(), &mut rng).unwrap_err(),
            FitGmmError::NotEnoughData {
                points: 1,
                components: 2
            }
        );
        assert_eq!(
            Gmm1d::fit(&[1.0], 0, &EmConfig::default(), &mut rng).unwrap_err(),
            FitGmmError::ZeroComponents
        );
        assert_eq!(
            Gmm1d::fit(&[1.0, f64::NAN], 1, &EmConfig::default(), &mut rng).unwrap_err(),
            FitGmmError::NonFiniteData
        );
    }

    #[test]
    fn fit_handles_constant_data() {
        let data = vec![5.0; 40];
        let mut rng = StdRng::seed_from_u64(9);
        let g = Gmm1d::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        assert!(g.nll(5.0).is_finite());
        assert!(g.nll(6.0) > g.nll(5.0));
    }

    #[test]
    fn from_parameters_validates() {
        let g = Gmm1d::from_parameters(vec![0.5, 0.5], vec![0.0, 1.0], vec![1.0, 1.0]);
        assert_eq!(g.num_components(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn from_parameters_rejects_bad_weights() {
        Gmm1d::from_parameters(vec![0.5, 0.6], vec![0.0, 1.0], vec![1.0, 1.0]);
    }

    #[test]
    fn log_pdf_integrates_to_one_approximately() {
        let g = Gmm1d::from_parameters(vec![0.3, 0.7], vec![-2.0, 3.0], vec![0.5, 2.0]);
        // Riemann sum of the density over a wide interval.
        let step = 0.01;
        let mut integral = 0.0;
        let mut x = -20.0;
        while x < 20.0 {
            integral += g.log_pdf(x).exp() * step;
            x += step;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }
}
