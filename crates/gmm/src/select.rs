//! BIC-based model selection over the number of mixture components.

use std::ops::RangeInclusive;

use rand::Rng;

use crate::{EmConfig, FitGmmError, Gmm1d, GmmDiag};

/// Result of BIC model selection: the winning model and the score table.
#[derive(Debug, Clone, PartialEq)]
pub struct BicFit<M> {
    /// The model with the lowest BIC.
    pub model: M,
    /// `(k, bic)` for every candidate component count that could be fit.
    pub scores: Vec<(usize, f64)>,
}

impl<M> BicFit<M> {
    /// The component count that won selection.
    pub fn chosen_k(&self) -> usize {
        self.scores
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(k, _)| k)
            .unwrap_or(0)
    }
}

/// Fits 1-D mixtures for every `k` in `k_range` and returns the one with the
/// lowest BIC (paper §5.3: "the model with the lowest BIC value is typically
/// selected as the best model").
///
/// Candidate `k`s that exceed the data size are skipped; at least one
/// candidate must be fittable.
///
/// # Errors
///
/// Returns [`FitGmmError`] if no candidate can be fit (empty range, empty
/// data, or non-finite data).
pub fn fit_bic_1d(
    data: &[f64],
    k_range: RangeInclusive<usize>,
    config: &EmConfig,
    rng: &mut impl Rng,
) -> Result<BicFit<Gmm1d>, FitGmmError> {
    let mut best: Option<(f64, Gmm1d)> = None;
    let mut scores = Vec::new();
    let mut last_err = FitGmmError::ZeroComponents;
    for k in k_range {
        match Gmm1d::fit(data, k, config, rng) {
            Ok(model) => {
                let bic = model.bic(data);
                scores.push((k, bic));
                if best.as_ref().is_none_or(|(b, _)| bic < *b) {
                    best = Some((bic, model));
                }
            }
            Err(e) => last_err = e,
        }
    }
    match best {
        Some((_, model)) => Ok(BicFit { model, scores }),
        None => Err(last_err),
    }
}

/// Fits 1-D mixtures for every `k` in `k_range` and selects by the Akaike
/// Information Criterion instead of BIC: `2p − 2 ln L`. AIC penalizes
/// parameters less than BIC and tends to pick more components — exposed for
/// the model-selection ablation.
///
/// # Errors
///
/// Returns [`FitGmmError`] if no candidate can be fit.
pub fn fit_aic_1d(
    data: &[f64],
    k_range: RangeInclusive<usize>,
    config: &EmConfig,
    rng: &mut impl Rng,
) -> Result<BicFit<Gmm1d>, FitGmmError> {
    let mut best: Option<(f64, Gmm1d)> = None;
    let mut scores = Vec::new();
    let mut last_err = FitGmmError::ZeroComponents;
    for k in k_range {
        match Gmm1d::fit(data, k, config, rng) {
            Ok(model) => {
                let p = 3.0 * k as f64 - 1.0;
                let aic = 2.0 * p - 2.0 * model.log_likelihood(data);
                scores.push((k, aic));
                if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                    best = Some((aic, model));
                }
            }
            Err(e) => last_err = e,
        }
    }
    match best {
        Some((_, model)) => Ok(BicFit { model, scores }),
        None => Err(last_err),
    }
}

/// Multivariate (diagonal-covariance) analogue of [`fit_bic_1d`].
///
/// # Errors
///
/// Returns [`FitGmmError`] if no candidate can be fit.
pub fn fit_bic_diag(
    data: &[Vec<f64>],
    k_range: RangeInclusive<usize>,
    config: &EmConfig,
    rng: &mut impl Rng,
) -> Result<BicFit<GmmDiag>, FitGmmError> {
    let mut best: Option<(f64, GmmDiag)> = None;
    let mut scores = Vec::new();
    let mut last_err = FitGmmError::ZeroComponents;
    for k in k_range {
        match GmmDiag::fit(data, k, config, rng) {
            Ok(model) => {
                let bic = model.bic(data);
                scores.push((k, bic));
                if best.as_ref().is_none_or(|(b, _)| bic < *b) {
                    best = Some((bic, model));
                }
            }
            Err(e) => last_err = e,
        }
    }
    match best {
        Some((_, model)) => Ok(BicFit { model, scores }),
        None => Err(last_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trimodal() -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(17);
        let mut data = Vec::new();
        for _ in 0..120 {
            data.push(0.0 + rng.gen_range(-0.3..0.3));
            data.push(10.0 + rng.gen_range(-0.3..0.3));
            data.push(25.0 + rng.gen_range(-0.3..0.3));
        }
        data
    }

    #[test]
    fn bic_selects_three_components_for_trimodal_data() {
        let data = trimodal();
        let mut rng = StdRng::seed_from_u64(0);
        let fit = fit_bic_1d(&data, 1..=5, &EmConfig::default(), &mut rng).unwrap();
        assert_eq!(fit.chosen_k(), 3, "scores: {:?}", fit.scores);
        assert_eq!(fit.model.num_components(), 3);
    }

    #[test]
    fn bic_selects_one_component_for_gaussian_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f64> = (0..300)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let fit = fit_bic_1d(&data, 1..=4, &EmConfig::default(), &mut rng).unwrap();
        assert_eq!(fit.chosen_k(), 1, "scores: {:?}", fit.scores);
    }

    #[test]
    fn oversized_candidates_are_skipped() {
        let data = vec![1.0, 2.0, 3.0];
        let mut rng = StdRng::seed_from_u64(2);
        let fit = fit_bic_1d(&data, 1..=10, &EmConfig::default(), &mut rng).unwrap();
        assert!(fit.scores.iter().all(|&(k, _)| k <= 3));
    }

    #[test]
    fn empty_data_is_an_error() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(fit_bic_1d(&[], 1..=3, &EmConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn aic_never_picks_fewer_components_than_bic_here() {
        let data = trimodal();
        let mut rng = StdRng::seed_from_u64(21);
        let bic = fit_bic_1d(&data, 1..=5, &EmConfig::default(), &mut rng).unwrap();
        let aic = fit_aic_1d(&data, 1..=5, &EmConfig::default(), &mut rng).unwrap();
        assert!(
            aic.chosen_k() >= bic.chosen_k(),
            "AIC {} vs BIC {}",
            aic.chosen_k(),
            bic.chosen_k()
        );
        assert_eq!(aic.chosen_k(), 3, "AIC also finds the three modes");
    }

    #[test]
    fn diag_selection_works_on_clusters() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut data = Vec::new();
        for _ in 0..100 {
            data.push(vec![rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2)]);
            data.push(vec![
                5.0 + rng.gen_range(-0.2..0.2),
                5.0 + rng.gen_range(-0.2..0.2),
            ]);
        }
        let fit = fit_bic_diag(&data, 1..=4, &EmConfig::default(), &mut rng).unwrap();
        assert_eq!(fit.chosen_k(), 2, "scores: {:?}", fit.scores);
    }
}
