//! Shared EM configuration and error type.

use std::fmt;

/// Configuration for expectation-maximization fitting.
///
/// The defaults follow common practice (and scikit-learn's defaults, which
/// the paper's open-source implementation relies on): up to 100 iterations,
/// convergence when the per-sample log-likelihood improves by less than
/// `tol`, and a small variance floor for numerical robustness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Maximum EM iterations per restart.
    pub max_iters: usize,
    /// Convergence threshold on the change in mean log-likelihood.
    pub tol: f64,
    /// Absolute lower bound applied to every variance estimate.
    pub variance_floor: f64,
    /// Relative lower bound: every component variance is at least this
    /// fraction of the overall data variance. Prevents near-singular
    /// components on small samples, which would make out-of-sample NLLs
    /// explode (sklearn's `reg_covar` plays the same role).
    pub relative_floor: f64,
    /// Independent k-means++-seeded restarts; the best likelihood wins.
    pub restarts: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            variance_floor: 1e-9,
            relative_floor: 5e-3,
            restarts: 3,
        }
    }
}

/// Error produced when a GMM cannot be fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitGmmError {
    /// Fewer data points than mixture components.
    NotEnoughData {
        /// Points provided.
        points: usize,
        /// Components requested.
        components: usize,
    },
    /// Zero components requested.
    ZeroComponents,
    /// The data contained NaN or infinity.
    NonFiniteData,
    /// Dimension mismatch in multivariate data.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Offending row length.
        actual: usize,
    },
}

impl fmt::Display for FitGmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotEnoughData { points, components } => write!(
                f,
                "cannot fit {components} components to {points} data points"
            ),
            Self::ZeroComponents => write!(f, "a mixture needs at least one component"),
            Self::NonFiniteData => write!(f, "data contains NaN or infinite values"),
            Self::DimensionMismatch { expected, actual } => write!(
                f,
                "expected rows of dimension {expected}, found a row of dimension {actual}"
            ),
        }
    }
}

impl std::error::Error for FitGmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = EmConfig::default();
        assert!(cfg.max_iters >= 10);
        assert!(cfg.tol > 0.0);
        assert!(cfg.variance_floor > 0.0);
        assert!(cfg.restarts >= 1);
    }

    #[test]
    fn errors_render_helpful_messages() {
        let e = FitGmmError::NotEnoughData {
            points: 2,
            components: 5,
        };
        assert!(e.to_string().contains("5 components"));
        assert!(FitGmmError::ZeroComponents
            .to_string()
            .contains("at least one"));
    }
}
