//! Diagonal-covariance multivariate Gaussian mixtures.
//!
//! Used by the event-fusion ablation, where one mixture models the joint
//! distribution of several HPC events instead of one mixture per event.

use rand::Rng;

use crate::{log_sum_exp, EmConfig, FitGmmError, LN_2PI};

/// A fitted multivariate Gaussian mixture with diagonal covariances.
///
/// # Example
///
/// ```
/// use advhunter_gmm::{EmConfig, GmmDiag};
/// use rand::SeedableRng;
///
/// use rand::Rng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let data: Vec<Vec<f64>> = (0..40)
///     .map(|i| {
///         let c = if i % 2 == 0 { 0.0 } else { 8.0 };
///         vec![c + rng.gen_range(-0.5..0.5), c + rng.gen_range(-0.5..0.5)]
///     })
///     .collect();
/// let gmm = GmmDiag::fit(&data, 2, &EmConfig::default(), &mut rng)?;
/// assert!(gmm.nll(&[0.0, 0.0]) < gmm.nll(&[4.0, 4.0]));
/// # Ok::<(), advhunter_gmm::FitGmmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GmmDiag {
    dim: usize,
    weights: Vec<f64>,
    /// `k × dim`, row-major.
    means: Vec<f64>,
    /// `k × dim`, row-major.
    variances: Vec<f64>,
}

impl GmmDiag {
    /// Fits a `k`-component diagonal-covariance mixture to row-major `data`.
    ///
    /// # Errors
    ///
    /// Returns [`FitGmmError`] if `k == 0`, there are fewer rows than
    /// components, rows have inconsistent dimensions, or values are
    /// non-finite.
    pub fn fit(
        data: &[Vec<f64>],
        k: usize,
        config: &EmConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, FitGmmError> {
        if k == 0 {
            return Err(FitGmmError::ZeroComponents);
        }
        if data.len() < k {
            return Err(FitGmmError::NotEnoughData {
                points: data.len(),
                components: k,
            });
        }
        let dim = data[0].len();
        for row in data {
            if row.len() != dim {
                return Err(FitGmmError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
            if row.iter().any(|x| !x.is_finite()) {
                return Err(FitGmmError::NonFiniteData);
            }
        }

        let mut best: Option<(f64, GmmDiag)> = None;
        for _ in 0..config.restarts.max(1) {
            let model = Self::fit_once(data, k, dim, config, rng);
            let ll: f64 = data.iter().map(|row| model.log_pdf(row)).sum();
            if best.as_ref().is_none_or(|(b, _)| ll > *b) {
                best = Some((ll, model));
            }
        }
        Ok(best.expect("at least one restart ran").1)
    }

    fn fit_once(
        data: &[Vec<f64>],
        k: usize,
        dim: usize,
        config: &EmConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let n = data.len();
        // Global per-dimension variance as the starting spread.
        let mut gmean = vec![0.0f64; dim];
        for row in data {
            for (m, &x) in gmean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut gmean {
            *m /= n as f64;
        }
        let mut gvar = vec![0.0f64; dim];
        for row in data {
            for ((v, &x), &m) in gvar.iter_mut().zip(row).zip(&gmean) {
                *v += (x - m) * (x - m);
            }
        }
        for v in &mut gvar {
            *v = (*v / n as f64).max(config.variance_floor);
        }
        let floors: Vec<f64> = gvar
            .iter()
            .map(|&v| (config.relative_floor * v).max(config.variance_floor))
            .collect();

        let mut means = Vec::with_capacity(k * dim);
        for _ in 0..k {
            means.extend_from_slice(&data[rng.gen_range(0..n)]);
        }
        let mut variances = Vec::with_capacity(k * dim);
        for _ in 0..k {
            variances.extend_from_slice(&gvar);
        }
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![0.0f64; n * k];
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..config.max_iters {
            let mut ll = 0.0;
            for (i, row) in data.iter().enumerate() {
                let r = &mut resp[i * k..(i + 1) * k];
                for c in 0..k {
                    r[c] = weights[c].ln()
                        + log_diag_pdf(
                            row,
                            &means[c * dim..(c + 1) * dim],
                            &variances[c * dim..(c + 1) * dim],
                        );
                }
                let lse = log_sum_exp(r);
                ll += lse;
                for v in r.iter_mut() {
                    *v = (*v - lse).exp();
                }
            }
            for c in 0..k {
                let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
                if nk < 1e-12 {
                    let pick = rng.gen_range(0..n);
                    means[c * dim..(c + 1) * dim].copy_from_slice(&data[pick]);
                    variances[c * dim..(c + 1) * dim].copy_from_slice(&gvar);
                    weights[c] = 1.0 / n as f64;
                    continue;
                }
                for d in 0..dim {
                    let mu: f64 = (0..n).map(|i| resp[i * k + c] * data[i][d]).sum::<f64>() / nk;
                    let var: f64 = (0..n)
                        .map(|i| {
                            let dd = data[i][d] - mu;
                            resp[i * k + c] * dd * dd
                        })
                        .sum::<f64>()
                        / nk;
                    means[c * dim + d] = mu;
                    variances[c * dim + d] = var.max(floors[d]);
                }
                weights[c] = nk / n as f64;
            }
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= wsum;
            }
            let mean_ll = ll / n as f64;
            if (mean_ll - prev_ll).abs() < config.tol {
                break;
            }
            prev_ll = mean_ll;
        }
        Self {
            dim,
            weights,
            means,
            variances,
        }
    }

    /// Data dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Mixing coefficients (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Log-density of `x` under the mixture.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let k = self.num_components();
        let terms: Vec<f64> = (0..k)
            .map(|c| {
                self.weights[c].ln()
                    + log_diag_pdf(
                        x,
                        &self.means[c * self.dim..(c + 1) * self.dim],
                        &self.variances[c * self.dim..(c + 1) * self.dim],
                    )
            })
            .collect();
        log_sum_exp(&terms)
    }

    /// Negative log-likelihood of `x` (anomaly score).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn nll(&self, x: &[f64]) -> f64 {
        -self.log_pdf(x)
    }

    /// BIC on `data`: a diagonal `k`-component mixture in `d` dimensions has
    /// `k·(2d + 1) − 1` free parameters.
    pub fn bic(&self, data: &[Vec<f64>]) -> f64 {
        let k = self.num_components() as f64;
        let d = self.dim as f64;
        let p = k * (2.0 * d + 1.0) - 1.0;
        let ll: f64 = data.iter().map(|row| self.log_pdf(row)).sum();
        p * (data.len() as f64).ln() - 2.0 * ll
    }
}

fn log_diag_pdf(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&xi, &mi), &vi) in x.iter().zip(mean).zip(var) {
        let d = xi - mi;
        acc += -0.5 * (LN_2PI + vi.ln() + d * d / vi);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_data() -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut data = Vec::new();
        for _ in 0..150 {
            data.push(vec![
                rng.gen_range(-0.5..0.5),
                10.0 + rng.gen_range(-0.5..0.5),
            ]);
            data.push(vec![
                20.0 + rng.gen_range(-0.5..0.5),
                -5.0 + rng.gen_range(-0.5..0.5),
            ]);
        }
        data
    }

    #[test]
    fn fit_separates_clusters() {
        let data = two_cluster_data();
        let mut rng = StdRng::seed_from_u64(1);
        let g = GmmDiag::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        assert!(g.nll(&[0.0, 10.0]) < g.nll(&[10.0, 2.0]));
        assert!(g.nll(&[20.0, -5.0]) < g.nll(&[10.0, 2.0]));
    }

    #[test]
    fn weights_stay_on_simplex() {
        let data = two_cluster_data();
        let mut rng = StdRng::seed_from_u64(2);
        let g = GmmDiag::fit(&data, 3, &EmConfig::default(), &mut rng).unwrap();
        let sum: f64 = g.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(g.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn fit_rejects_ragged_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = vec![vec![1.0, 2.0], vec![3.0]];
        assert_eq!(
            GmmDiag::fit(&data, 1, &EmConfig::default(), &mut rng).unwrap_err(),
            FitGmmError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn bic_prefers_two_clusters() {
        let data = two_cluster_data();
        let mut rng = StdRng::seed_from_u64(4);
        let g1 = GmmDiag::fit(&data, 1, &EmConfig::default(), &mut rng).unwrap();
        let g2 = GmmDiag::fit(&data, 2, &EmConfig::default(), &mut rng).unwrap();
        assert!(g2.bic(&data) < g1.bic(&data));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn log_pdf_rejects_wrong_dim() {
        let data = two_cluster_data();
        let mut rng = StdRng::seed_from_u64(5);
        let g = GmmDiag::fit(&data, 1, &EmConfig::default(), &mut rng).unwrap();
        g.log_pdf(&[1.0]);
    }
}
