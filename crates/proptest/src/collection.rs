//! Collection strategies (`proptest::collection`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Length specification for [`vec`]: a fixed length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy over `element`, with `size` either an exact `usize` or a
/// `usize` range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for_test;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = rng_for_test("exact_and_ranged_lengths");
        let fixed = vec(0u8..5, 7).generate(&mut rng);
        assert_eq!(fixed.len(), 7);
        for _ in 0..100 {
            let v = vec(-1.0f32..1.0, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
