//! A self-contained, dependency-free drop-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! crate cannot be fetched; this workspace member shadows it. It keeps the
//! source-level API of the tests (`proptest!`, range/collection
//! strategies, `prop_assert*`) but simplifies the machinery:
//!
//! * cases are generated from a generator seeded by hashing the test's
//!   name, so every run of a test explores the same inputs (fully
//!   reproducible, no persistence files);
//! * failures panic immediately with the offending inputs printed via the
//!   assertion message — there is no shrinking.
//!
//! Only the strategy forms the repo uses exist: numeric ranges,
//! [`collection::vec`], and [`any`] over primitives.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

pub mod collection;

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input tuples to run the body against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Types with a canonical whole-domain strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical whole-domain strategy for primitives (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $draw:expr),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut StdRng) -> $t {
                $draw
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary! {
    bool => |rng| rng.gen_bool(0.5),
    u8 => |rng| rng.gen::<u64>() as u8,
    u16 => |rng| rng.gen::<u64>() as u16,
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    usize => |rng| rng.gen::<usize>(),
    f32 => |rng| rng.gen::<f32>(),
    f64 => |rng| rng.gen::<f64>(),
}

/// The whole-domain strategy for `A` — `any::<bool>()` etc.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Deterministic per-test seed: FNV-1a over the test's name.
#[doc(hidden)]
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn rng_for_test(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for_test(name))
}

/// Property-test entry point: same surface syntax as upstream `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Boolean property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => { assert_eq!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => { assert_eq!($lhs, $rhs, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = rng_for_test("range_strategies_stay_in_bounds");
        for _ in 0..200 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn test_seeds_are_name_dependent_and_stable() {
        assert_eq!(seed_for_test("a"), seed_for_test("a"));
        assert_ne!(seed_for_test("a"), seed_for_test("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            if flag {
                prop_assert_eq!(x, x);
            }
        }
    }
}
