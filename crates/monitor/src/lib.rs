//! Online monitor service for AdvHunter: a long-lived detector that
//! screens a *stream* of inference requests the way the paper deploys the
//! defense — continuously, during inference, from the hard label and the
//! HPC readings alone.
//!
//! # Architecture (DESIGN.md §11)
//!
//! ```text
//! submit() ──► BoundedQueue ──► worker: micro-batch ──► parallel
//!   │            (capacity,        (≤ micro_batch        measure over
//!   │             shed/block)       per drain)           the thread pool
//!   │                                                        │
//!   ◄──────────── recv(): MonitorVerdict per request ◄── score + fuse
//! ```
//!
//! * **Admission** — [`Monitor::submit`] pushes into a bounded queue that
//!   assigns sequential request ids under its lock. When full it either
//!   sheds ([`OverloadPolicy::Shed`]) or blocks the caller
//!   ([`OverloadPolicy::Block`]).
//! * **Micro-batching** — one worker thread drains up to
//!   [`MonitorConfig::micro_batch`] requests at a time and measures them
//!   as one batch over the `advhunter-runtime` pool, reusing the engine's
//!   pooled per-worker scratch so the steady state allocates nothing.
//! * **Verdicts** — every request yields a [`MonitorVerdict`]: the
//!   detector's [`Verdict`](advhunter::Verdict) (predicted class plus
//!   per-event NLL scores), the fused flagged bit, and queue/latency
//!   telemetry. [`Monitor::stats`] exposes service-level counters (depth,
//!   shed count, per-stage latency, per-class flag rate).
//!
//! # Determinism
//!
//! Request `i` draws measurement noise from
//! `derive_seed(config.exec.seed, i)` and scoring is pure, so the
//! `(request_id, verdict)` stream is bit-identical for every
//! `ADVHUNTER_THREADS` value and for every way the same ordered inputs
//! are split into submissions. Telemetry is observational only.

mod config;
mod queue;
mod service;
mod stats;

pub use config::{MonitorConfig, MonitorConfigError, OverloadPolicy};
pub use queue::{BoundedQueue, PushError, Pushed};
pub use service::{Monitor, MonitorVerdict, RequestTelemetry, SpawnFromStoreError, SubmitError};
pub use stats::{ClassFlagStats, StatsSnapshot};
