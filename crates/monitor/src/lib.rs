//! Online monitor service for AdvHunter: a long-lived detector that
//! screens a *stream* of inference requests the way the paper deploys the
//! defense — continuously, during inference, from the hard label and the
//! HPC readings alone.
//!
//! # Architecture (DESIGN.md §11)
//!
//! ```text
//! submit() ──► BoundedQueue ──► worker: micro-batch ──► parallel
//!   │            (capacity,        (≤ micro_batch        measure over
//!   │             shed/block)       per drain)           the thread pool
//!   │                                                        │
//!   ◄──────────── recv(): MonitorVerdict per request ◄── score + fuse
//! ```
//!
//! * **Admission** — [`Monitor::submit`] pushes into a bounded queue that
//!   assigns sequential request ids under its lock. When full it either
//!   sheds ([`OverloadPolicy::Shed`]) or blocks the caller
//!   ([`OverloadPolicy::Block`]).
//! * **Micro-batching** — one worker thread drains up to
//!   [`MonitorConfig::micro_batch`] requests at a time and measures them
//!   as one batch over the `advhunter-runtime` pool, reusing the engine's
//!   pooled per-worker scratch so the steady state allocates nothing.
//! * **Fingerprinting** — when [`MonitorConfig::fingerprint`] is enabled,
//!   the worker first runs every drained request through a per-tenant
//!   [`FingerprintStore`] (sequentially, in admission order): queries that
//!   near-duplicate the tenant's recent history are marked
//!   *query-correlated*, the cross-query signal that per-query HPC
//!   scoring cannot see (DESIGN.md §14).
//! * **Verdicts** — every request yields a [`MonitorVerdict`]: the
//!   detector's [`Verdict`](advhunter::Verdict) (predicted class plus
//!   per-event NLL scores), the HPC and query-correlation bits, the
//!   headline `flagged` bit fused per [`FusionPolicy`], and queue/latency
//!   telemetry. [`Monitor::stats`] exposes service-level counters (depth,
//!   shed count, per-stage latency, per-class flag rate).
//!
//! # Determinism
//!
//! Request `i` draws measurement noise from
//! `derive_seed(config.exec.seed, i)` and scoring is pure, so the
//! `(request_id, verdict)` stream is bit-identical for every
//! `ADVHUNTER_THREADS` value and for every way the same ordered inputs
//! are split into submissions. Telemetry is observational only.

mod builder;
mod config;
mod drift;
mod queue;
mod server;
mod service;
mod stats;

pub use builder::{MonitorBuildError, MonitorBuilder};
pub use config::{FusionPolicy, MonitorConfig, MonitorConfigError, OverloadPolicy};
pub use drift::{
    DetectorSource, DriftConfig, DriftConfigError, DriftObservation, DriftTracker,
    StoreDetectorSource,
};
pub use queue::{BoundedQueue, PushError, Pushed};
pub use server::{ControlAccess, WireServer};
pub use service::{Monitor, MonitorVerdict, RequestTelemetry, SpawnFromStoreError, SubmitError};
pub use stats::{ClassFlagStats, StatsSnapshot};

// Re-export the wire-protocol request type: `Monitor::submit` takes it,
// and the TCP front-end serializes exactly this struct, so library and
// remote callers share one vocabulary.
pub use advhunter_wire::MonitorRequest;

// Re-export the fingerprint vocabulary so service callers (the CLI, the
// integration tests) can configure the defense without a direct
// dependency on `advhunter-fingerprint`.
pub use advhunter_fingerprint::{
    FingerprintConfig, FingerprintConfigError, FingerprintStore, MatchReport, QueryFingerprint,
    StoreStats, TenantId,
};
