//! The monitor service itself: queue → micro-batch → scored verdicts.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use advhunter::{ArtifactStore, Detector, Pipeline, PipelineConfig, PipelineError, Verdict};
use advhunter_exec::TraceEngine;
use advhunter_fingerprint::{FingerprintStore, MatchReport, TenantId};
use advhunter_nn::Graph;
use advhunter_runtime::parallel_map;
use advhunter_tensor::Tensor;

use crate::config::{MonitorConfig, MonitorConfigError, OverloadPolicy};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{MonitorStats, StatsSnapshot};

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue was full and the monitor runs the
    /// [`OverloadPolicy::Shed`] policy.
    Overloaded,
    /// The monitor has been closed.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded => write!(f, "monitor queue is full (request shed)"),
            Self::Closed => write!(f, "monitor is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`Monitor::spawn_from_store`] could not boot the service.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpawnFromStoreError {
    /// The offline pipeline failed (store I/O or detector fit).
    Pipeline(PipelineError),
    /// The monitor configuration was invalid.
    Config(MonitorConfigError),
}

impl std::fmt::Display for SpawnFromStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "offline pipeline failed: {e}"),
            Self::Config(e) => write!(f, "invalid monitor configuration: {e}"),
        }
    }
}

impl std::error::Error for SpawnFromStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Pipeline(e) => Some(e),
            Self::Config(e) => Some(e),
        }
    }
}

impl From<PipelineError> for SpawnFromStoreError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

/// Observational timings of one request's trip through the service.
///
/// Telemetry never feeds back into measurement or scoring, so it varies
/// run to run while the [`Verdict`] stays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTelemetry {
    /// Queue depth right after this request was admitted.
    pub depth_at_admission: usize,
    /// Size of the micro-batch this request was coalesced into.
    pub batch_size: usize,
    /// Time spent queued before its micro-batch started measuring.
    pub queued: Duration,
    /// Wall time of the micro-batch's measurement stage.
    pub measure: Duration,
    /// Wall time of the micro-batch's scoring stage.
    pub score: Duration,
}

/// One request's complete outcome: id, deterministic fused verdict,
/// telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorVerdict {
    /// The admission-order id returned by [`Monitor::submit`].
    pub request_id: u64,
    /// The tenant the request was submitted under
    /// ([`FingerprintStore::DEFAULT_TENANT`] for [`Monitor::submit`]).
    pub tenant: TenantId,
    /// The hard-label prediction and per-event scores. Deterministic: a
    /// pure function of `(image, exec.seed, request_id)`.
    pub verdict: Verdict,
    /// The per-query HPC signal: [`Verdict::flagged_any`].
    pub hpc_anomalous: bool,
    /// The cross-query signal: the query's fingerprint overlapped a
    /// recent fingerprint of the same tenant beyond the match threshold.
    /// Always `false` while the fingerprint stage is disabled, the store
    /// shed the tenant, or this was the tenant's first sighting of the
    /// content.
    pub query_correlated: bool,
    /// The full fingerprint match report, when the stage is enabled.
    /// Deterministic: a pure function of the configuration and the
    /// admission-ordered `(tenant, image)` stream.
    pub fingerprint: Option<MatchReport>,
    /// The fused headline per the configured
    /// [`FusionPolicy`](crate::FusionPolicy):
    /// `fusion.fuse(hpc_anomalous, query_correlated)`.
    pub flagged: bool,
    /// Observational timings (not deterministic).
    pub telemetry: RequestTelemetry,
}

struct Request {
    id: u64,
    tenant: TenantId,
    image: Tensor,
    admitted_at: Instant,
    depth_at_admission: usize,
}

struct Shared {
    engine: TraceEngine,
    model: Graph,
    detector: Detector,
    config: MonitorConfig,
    queue: BoundedQueue<Request>,
    stats: MonitorStats,
}

/// A long-lived online detection service.
///
/// The monitor owns an instrumented-inference engine, a model, and a
/// fitted [`Detector`]. Requests enter through a bounded queue
/// ([`submit`](Self::submit)), a worker thread coalesces them into
/// micro-batches, fans the trace measurements out over the
/// `advhunter-runtime` worker pool, scores each measurement under the
/// predicted category's models, and delivers one [`MonitorVerdict`] per
/// request through [`recv`](Self::recv) in admission order.
///
/// # Determinism
///
/// Request `i` (ids count admissions) is measured via the engine's
/// indexed noise stream `derive_seed(config.exec.seed, i)` and scored by
/// pure functions; the fingerprint stage runs sequentially in admission
/// order inside the worker. The fused
/// `(request_id, verdict, query_correlated, flagged)` stream is therefore
/// bit-identical for every `ADVHUNTER_THREADS` setting and every way the
/// same images are batched into submissions. Only the telemetry varies.
///
/// # Overload
///
/// The queue is bounded by `config.queue_capacity`. When it is full,
/// [`OverloadPolicy::Shed`] makes `submit` fail fast with
/// [`SubmitError::Overloaded`] (counted in
/// [`StatsSnapshot::shed`]); [`OverloadPolicy::Block`] parks the
/// submitting thread until a slot frees.
pub struct Monitor {
    shared: Arc<Shared>,
    verdicts: Mutex<Receiver<MonitorVerdict>>,
    worker: Option<JoinHandle<()>>,
}

impl Monitor {
    /// Starts the service: validates `config`, spawns the worker thread,
    /// and returns the handle used to submit requests and receive
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorConfigError`] when `config` is invalid; no thread
    /// is spawned in that case.
    pub fn spawn(
        engine: TraceEngine,
        model: Graph,
        detector: Detector,
        config: MonitorConfig,
    ) -> Result<Self, MonitorConfigError> {
        config.validate()?;
        let num_classes = detector.num_classes();
        let shared = Arc::new(Shared {
            engine,
            model,
            detector,
            config,
            queue: BoundedQueue::new(config.queue_capacity),
            stats: MonitorStats::new(num_classes),
        });
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("advhunter-monitor".into())
            .spawn(move || worker_loop(&worker_shared, &tx))
            .expect("failed to spawn monitor worker thread");
        Ok(Self {
            shared,
            verdicts: Mutex::new(rx),
            worker: Some(worker),
        })
    }

    /// Boots the service from the staged offline pipeline: runs (or
    /// loads, when the store already holds the artifacts) every offline
    /// stage for `pipeline` against `store`, then spawns the monitor over
    /// the resulting engine, model, and calibrated detector. On a warm
    /// store this is a pure load — no training, measurement, or fitting.
    ///
    /// When the pipeline configuration carries an enabled
    /// [`defense`](PipelineConfig::defense) and `config` leaves its own
    /// fingerprint stage disabled, the monitor adopts the pipeline's
    /// defense — one configuration object drives the whole deployment. An
    /// explicitly enabled `config.fingerprint` always wins.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnFromStoreError::Pipeline`] when the offline phase
    /// fails and [`SpawnFromStoreError::Config`] when `config` is
    /// invalid; no thread is spawned in either case.
    pub fn spawn_from_store(
        pipeline: PipelineConfig,
        store: ArtifactStore,
        mut config: MonitorConfig,
    ) -> Result<Self, SpawnFromStoreError> {
        if !config.fingerprint.is_enabled() && pipeline.defense.is_enabled() {
            config.fingerprint = pipeline.defense;
        }
        let (art, _report) = Pipeline::new(pipeline, store).run()?;
        Self::spawn(art.engine, art.model, art.detector, config)
            .map_err(SpawnFromStoreError::Config)
    }

    /// Submits one image for screening under the default tenant and
    /// returns its admission-order request id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full under the shed
    /// policy; [`SubmitError::Closed`] after [`close`](Self::close).
    pub fn submit(&self, image: Tensor) -> Result<u64, SubmitError> {
        self.submit_from(FingerprintStore::DEFAULT_TENANT, image)
    }

    /// Submits one image for screening on behalf of `tenant` and returns
    /// its admission-order request id. Tenants are fully isolated in the
    /// fingerprint stage: a query only ever matches the *same* tenant's
    /// recent history, so one client's attack campaign cannot flag (or
    /// mask) another's traffic.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full under the shed
    /// policy; [`SubmitError::Closed`] after [`close`](Self::close).
    pub fn submit_from(&self, tenant: TenantId, image: Tensor) -> Result<u64, SubmitError> {
        let make = |id, depth_at_admission| Request {
            id,
            tenant,
            image,
            admitted_at: Instant::now(),
            depth_at_admission,
        };
        let pushed = match self.shared.config.overload {
            OverloadPolicy::Shed => self.shared.queue.try_push_with(make),
            OverloadPolicy::Block => self.shared.queue.push_with(make),
        };
        match pushed {
            Ok(p) => {
                if p.blocked {
                    self.shared.stats.record_blocked();
                }
                self.shared.stats.record_submitted(p.depth);
                Ok(p.id)
            }
            Err(PushError::Full) => {
                self.shared.stats.record_shed();
                Err(SubmitError::Overloaded)
            }
            Err(PushError::Closed) => Err(SubmitError::Closed),
        }
    }

    /// Blocks until the next verdict is available. Returns `None` once
    /// the monitor is closed and every admitted request has been
    /// delivered.
    pub fn recv(&self) -> Option<MonitorVerdict> {
        self.verdicts
            .lock()
            .expect("verdict receiver poisoned")
            .recv()
            .ok()
    }

    /// Returns the next verdict if one is ready, without blocking, or
    /// `None` otherwise (including after the stream has ended).
    pub fn try_recv(&self) -> Option<MonitorVerdict> {
        self.verdicts
            .lock()
            .expect("verdict receiver poisoned")
            .try_recv()
            .ok()
    }

    /// Current queue depth (requests admitted but not yet measured).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// A point-in-time copy of the operational counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A unified telemetry snapshot: this monitor's private metrics
    /// (queue occupancy, shed/block counts, batch sizes, stage and
    /// end-to-end latency histograms, per-class screening counters)
    /// merged with the process-wide registry (engine measurement spans,
    /// simulated-HPC event totals, worker-pool utilisation).
    ///
    /// Render it with
    /// [`Snapshot::render_prometheus`](advhunter_telemetry::Snapshot::render_prometheus)
    /// or
    /// [`Snapshot::render_json`](advhunter_telemetry::Snapshot::render_json).
    pub fn metrics_snapshot(&self) -> advhunter_telemetry::Snapshot {
        self.shared
            .stats
            .registry_snapshot()
            .merge(advhunter_telemetry::global().snapshot())
    }

    /// Holds the worker before its next micro-batch: submissions keep
    /// being admitted (and the bounded queue fills), but nothing is
    /// measured until [`resume`](Self::resume). Exposed for operational
    /// drains and for deterministic backpressure tests.
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Releases a paused worker.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Stops admissions. Already-admitted requests are still measured and
    /// delivered; once they are, [`recv`](Self::recv) returns `None`.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Closes the monitor, waits for the worker to drain the queue, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.close();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("monitor worker panicked");
        }
        self.stats()
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.close();
        if let Some(worker) = self.worker.take() {
            // Surfacing the worker's panic beats swallowing it, except
            // while already unwinding (a double panic would abort).
            if worker.join().is_err() && !std::thread::panicking() {
                panic!("monitor worker panicked");
            }
        }
    }
}

fn worker_loop(shared: &Shared, tx: &Sender<MonitorVerdict>) {
    let micro_batch = shared.config.micro_batch;
    let exec = shared.config.exec;
    let fusion = shared.config.fusion;
    // The worker owns the fingerprint store outright: matching mutates
    // per-tenant windows, so it runs here, sequentially in admission-id
    // order, *before* the parallel measurement fan-out. That makes the
    // cross-query verdict a pure function of the admission-ordered
    // (tenant, image) stream — thread count and batching cannot touch it.
    let mut store = shared
        .config
        .fingerprint
        .is_enabled()
        .then(|| FingerprintStore::new(shared.config.fingerprint));
    while let Some(batch) = shared.queue.pop_batch(micro_batch) {
        shared.stats.record_drain(batch.len(), shared.queue.len());
        let fingerprint_start = Instant::now();
        let reports: Vec<Option<MatchReport>> = batch
            .iter()
            .map(|req| {
                store
                    .as_mut()
                    .map(|s| s.observe_query(req.tenant, req.image.data()))
            })
            .collect();
        let measure_start = Instant::now();
        if store.is_some() {
            shared
                .stats
                .record_fingerprint_stage(measure_start - fingerprint_start);
        }
        // Fan-out over the worker pool. Each request's noise stream is
        // derived from (exec.seed, request id), and the engine's pooled
        // per-worker scratch (workspace + tiles + counter group) is
        // reused across micro-batches, so the hot path stays
        // allocation-free after warm-up.
        let measurements = parallel_map(&exec.parallelism, &batch, |_, req| {
            shared
                .engine
                .measure_indexed(&shared.model, &req.image, exec.seed, req.id)
        });
        let score_start = Instant::now();
        let verdicts: Vec<Verdict> = measurements
            .iter()
            .map(|m| shared.detector.evaluate(m.predicted, &m.sample))
            .collect();
        let score_done = Instant::now();
        let measure = score_start - measure_start;
        let score = score_done - score_start;
        shared.stats.record_batch(measure, score);
        for ((req, verdict), report) in batch.iter().zip(verdicts).zip(reports) {
            let queued = measure_start.saturating_duration_since(req.admitted_at);
            let hpc_anomalous = verdict.flagged_any();
            let query_correlated = report.is_some_and(|r| r.matched);
            let flagged = fusion.fuse(hpc_anomalous, query_correlated);
            if let Some(r) = report {
                shared.stats.record_fingerprint_report(&r);
            }
            shared.stats.record_verdict(
                verdict.predicted(),
                flagged,
                queued,
                req.admitted_at.elapsed(),
            );
            let out = MonitorVerdict {
                request_id: req.id,
                tenant: req.tenant,
                verdict,
                hpc_anomalous,
                query_correlated,
                fingerprint: report,
                flagged,
                telemetry: RequestTelemetry {
                    depth_at_admission: req.depth_at_admission,
                    batch_size: batch.len(),
                    queued,
                    measure,
                    score,
                },
            };
            // A dropped receiver just means nobody wants verdicts any
            // more; keep draining so shutdown still completes.
            let _ = tx.send(out);
        }
    }
}
