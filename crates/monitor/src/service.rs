//! The monitor service itself: queue → micro-batch → scored verdicts,
//! with zero-downtime detector hot-swap and drift-driven recalibration.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use advhunter::{Detector, PipelineError, Verdict};
use advhunter_exec::TraceEngine;
use advhunter_fingerprint::{FingerprintStore, MatchReport, TenantId};
use advhunter_nn::Graph;
use advhunter_runtime::parallel_map_with;
use advhunter_tensor::Tensor;
use advhunter_wire::MonitorRequest;

use crate::config::{MonitorConfig, MonitorConfigError, OverloadPolicy};
use crate::drift::{DetectorSource, DriftTracker};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{MonitorStats, StatsSnapshot};

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue was full and the monitor runs the
    /// [`OverloadPolicy::Shed`] policy.
    Overloaded,
    /// The monitor has been closed.
    Closed,
    /// The request image's shape does not match the served model's input
    /// shape ([`Monitor::input_dims`]). Checked before admission, so a
    /// bad request never reaches the worker — the wire path depends on
    /// this to keep one hostile frame from stalling every client.
    ShapeMismatch,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded => write!(f, "monitor queue is full (request shed)"),
            Self::Closed => write!(f, "monitor is closed"),
            Self::ShapeMismatch => write!(f, "image shape does not match the model input"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`MonitorBuilder::spawn_from_store`](crate::MonitorBuilder::spawn_from_store)
/// could not boot the service.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpawnFromStoreError {
    /// The offline pipeline failed (store I/O or detector fit).
    Pipeline(PipelineError),
    /// The monitor configuration was invalid.
    Config(MonitorConfigError),
}

impl std::fmt::Display for SpawnFromStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "offline pipeline failed: {e}"),
            Self::Config(e) => write!(f, "invalid monitor configuration: {e}"),
        }
    }
}

impl std::error::Error for SpawnFromStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Pipeline(e) => Some(e),
            Self::Config(e) => Some(e),
        }
    }
}

impl From<PipelineError> for SpawnFromStoreError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

/// Observational timings of one request's trip through the service.
///
/// Telemetry never feeds back into measurement or scoring, so it varies
/// run to run while the [`Verdict`] stays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTelemetry {
    /// Queue depth right after this request was admitted.
    pub depth_at_admission: usize,
    /// Size of the micro-batch this request was coalesced into.
    pub batch_size: usize,
    /// Time spent queued before its micro-batch started measuring.
    pub queued: Duration,
    /// Wall time of the micro-batch's measurement stage.
    pub measure: Duration,
    /// Wall time of the micro-batch's scoring stage.
    pub score: Duration,
}

/// One request's complete outcome: id, deterministic fused verdict,
/// telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorVerdict {
    /// The admission-order id returned by [`Monitor::submit`].
    pub request_id: u64,
    /// The caller's correlation id, echoed verbatim from
    /// [`MonitorRequest::request_id`]. `None` when the caller did not set
    /// one.
    pub correlation_id: Option<u64>,
    /// The tenant the request was submitted under
    /// ([`FingerprintStore::DEFAULT_TENANT`] unless the request set one).
    pub tenant: TenantId,
    /// The detector configuration epoch this request was scored under.
    /// Starts at 0 and bumps by one per hot-swap, so a reader can tell
    /// exactly which verdicts the old and the new detector produced.
    pub config_epoch: u64,
    /// The hard-label prediction and per-event scores. Deterministic: a
    /// pure function of `(image, exec.seed, request_id)` and the detector
    /// of `config_epoch`.
    pub verdict: Verdict,
    /// The per-query HPC signal: [`Verdict::flagged_any`].
    pub hpc_anomalous: bool,
    /// The cross-query signal: the query's fingerprint overlapped a
    /// recent fingerprint of the same tenant beyond the match threshold.
    /// Always `false` while the fingerprint stage is disabled, the store
    /// shed the tenant, or this was the tenant's first sighting of the
    /// content.
    pub query_correlated: bool,
    /// The full fingerprint match report, when the stage is enabled.
    /// Deterministic: a pure function of the configuration and the
    /// admission-ordered `(tenant, image)` stream.
    pub fingerprint: Option<MatchReport>,
    /// The fused headline per the configured
    /// [`FusionPolicy`](crate::FusionPolicy):
    /// `fusion.fuse(hpc_anomalous, query_correlated)`.
    pub flagged: bool,
    /// Observational timings (not deterministic).
    pub telemetry: RequestTelemetry,
}

struct Request {
    id: u64,
    correlation: Option<u64>,
    tenant: TenantId,
    image: Tensor,
    admitted_at: Instant,
    depth_at_admission: usize,
}

/// The currently-installed detector and its epoch, swapped atomically
/// under one lock.
struct DetectorState {
    detector: Arc<Detector>,
    epoch: u64,
}

/// Close/stop signal shared with the store-watcher thread.
struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    fn new() -> Self {
        Self {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn signal(&self) {
        *self.stopped.lock().expect("stop signal poisoned") = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `timeout`; returns `true` once stopped.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.stopped.lock().expect("stop signal poisoned");
        if *guard {
            return true;
        }
        let (guard, _) = self
            .cv
            .wait_timeout(guard, timeout)
            .expect("stop signal poisoned");
        *guard
    }
}

struct Shared {
    engine: TraceEngine,
    model: Graph,
    detector: Mutex<DetectorState>,
    source: Option<Arc<dyn DetectorSource>>,
    config: MonitorConfig,
    queue: BoundedQueue<Request>,
    stats: MonitorStats,
    stop: StopSignal,
}

/// Installs `detector` as the live one, bumping the epoch. Returns the
/// new `(detector, epoch)` pair for callers that score with it directly.
fn install_detector(shared: &Shared, detector: Detector) -> (Arc<Detector>, u64) {
    let mut state = shared.detector.lock().expect("detector state poisoned");
    state.epoch += 1;
    state.detector = Arc::new(detector);
    shared.stats.record_swap(state.epoch);
    (Arc::clone(&state.detector), state.epoch)
}

/// A long-lived online detection service.
///
/// The monitor owns an instrumented-inference engine, a model, and a
/// fitted [`Detector`]. Requests enter through a bounded queue
/// ([`submit`](Self::submit)), a worker thread coalesces them into
/// micro-batches, fans the trace measurements out over the
/// `advhunter-runtime` worker pool, scores each measurement under the
/// predicted category's models, and delivers one [`MonitorVerdict`] per
/// request through [`recv`](Self::recv) in admission order.
///
/// Build one with [`MonitorBuilder`](crate::MonitorBuilder).
///
/// # Determinism
///
/// Request `i` (ids count admissions) is measured via the engine's
/// indexed noise stream `derive_seed(config.exec.seed, i)` and scored by
/// pure functions; the fingerprint stage runs sequentially in admission
/// order inside the worker. The fused
/// `(request_id, verdict, query_correlated, flagged)` stream is therefore
/// bit-identical for every `ADVHUNTER_THREADS` setting and every way the
/// same images are batched into submissions. Only the telemetry varies.
///
/// # Hot-swap
///
/// The live detector sits behind one lock the worker touches twice per
/// micro-batch. [`swap_detector`](Self::swap_detector) (or the store
/// watcher, see [`MonitorBuilder::watch_store`](crate::MonitorBuilder))
/// replaces it between micro-batches without dropping a single queued
/// request; every verdict carries the `config_epoch` it was scored under.
/// Drift-driven swaps (see [`DriftConfig`](crate::DriftConfig)) take
/// effect at the exact next request in admission order, so they are
/// reproducible across thread counts and batch shapes.
///
/// # Overload
///
/// The queue is bounded by `config.queue_capacity`. When it is full,
/// [`OverloadPolicy::Shed`] makes `submit` fail fast with
/// [`SubmitError::Overloaded`] (counted in
/// [`StatsSnapshot::shed`]); [`OverloadPolicy::Block`] parks the
/// submitting thread until a slot frees.
pub struct Monitor {
    shared: Arc<Shared>,
    verdicts: Mutex<Receiver<MonitorVerdict>>,
    worker: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Monitor {
    pub(crate) fn spawn_inner(
        engine: TraceEngine,
        model: Graph,
        detector: Detector,
        config: MonitorConfig,
        source: Option<Arc<dyn DetectorSource>>,
        watch_poll: Option<Duration>,
    ) -> Result<Self, MonitorConfigError> {
        config.validate()?;
        let num_classes = detector.num_classes();
        let shared = Arc::new(Shared {
            engine,
            model,
            detector: Mutex::new(DetectorState {
                detector: Arc::new(detector),
                epoch: 0,
            }),
            source,
            config,
            queue: BoundedQueue::new(config.queue_capacity),
            stats: MonitorStats::new(num_classes),
            stop: StopSignal::new(),
        });
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("advhunter-monitor".into())
            .spawn(move || worker_loop(&worker_shared, &tx))
            .expect("failed to spawn monitor worker thread");
        let watcher = match (watch_poll, shared.source.is_some()) {
            (Some(poll), true) => {
                let watcher_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("advhunter-watcher".into())
                        .spawn(move || watcher_loop(&watcher_shared, poll))
                        .expect("failed to spawn monitor watcher thread"),
                )
            }
            _ => None,
        };
        Ok(Self {
            shared,
            verdicts: Mutex::new(rx),
            worker: Some(worker),
            watcher,
        })
    }

    /// Submits one request for screening and returns its admission-order
    /// id. Accepts anything convertible into a [`MonitorRequest`] — a
    /// bare [`Tensor`] submits under the default tenant with no
    /// correlation id:
    ///
    /// ```ignore
    /// monitor.submit(image.clone())?;                           // simplest
    /// monitor.submit(MonitorRequest::new(image).tenant(7))?;    // full form
    /// ```
    ///
    /// Tenants are fully isolated in the fingerprint stage: a query only
    /// ever matches the *same* tenant's recent history, so one client's
    /// attack campaign cannot flag (or mask) another's traffic.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShapeMismatch`] when the image's shape is not the
    /// model's input shape; [`SubmitError::Overloaded`] when the queue is
    /// full under the shed policy; [`SubmitError::Closed`] after
    /// [`close`](Self::close).
    pub fn submit(&self, request: impl Into<MonitorRequest>) -> Result<u64, SubmitError> {
        let request = request.into();
        if request.image.shape().dims() != self.shared.model.input_dims() {
            return Err(SubmitError::ShapeMismatch);
        }
        let MonitorRequest {
            image,
            tenant,
            request_id,
        } = request;
        let make = |id, depth_at_admission| Request {
            id,
            correlation: request_id,
            tenant,
            image,
            admitted_at: Instant::now(),
            depth_at_admission,
        };
        let pushed = match self.shared.config.overload {
            OverloadPolicy::Shed => self.shared.queue.try_push_with(make),
            OverloadPolicy::Block => self.shared.queue.push_with(make),
        };
        match pushed {
            Ok(p) => {
                if p.blocked {
                    self.shared.stats.record_blocked();
                }
                self.shared.stats.record_submitted(p.depth);
                Ok(p.id)
            }
            Err(PushError::Full) => {
                self.shared.stats.record_shed();
                Err(SubmitError::Overloaded)
            }
            Err(PushError::Closed) => Err(SubmitError::Closed),
        }
    }

    /// Blocks until the next verdict is available. Returns `None` once
    /// the monitor is closed and every admitted request has been
    /// delivered.
    pub fn recv(&self) -> Option<MonitorVerdict> {
        self.verdicts
            .lock()
            .expect("verdict receiver poisoned")
            .recv()
            .ok()
    }

    /// Returns the next verdict if one is ready, without blocking, or
    /// `None` otherwise (including after the stream has ended).
    pub fn try_recv(&self) -> Option<MonitorVerdict> {
        self.verdicts
            .lock()
            .expect("verdict receiver poisoned")
            .try_recv()
            .ok()
    }

    /// Current queue depth (requests admitted but not yet measured).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The served model's input shape — the shape every submitted image
    /// must have (see [`SubmitError::ShapeMismatch`]).
    pub fn input_dims(&self) -> &[usize] {
        self.shared.model.input_dims()
    }

    /// The current detector configuration epoch (0 until the first
    /// hot-swap).
    pub fn config_epoch(&self) -> u64 {
        self.shared
            .detector
            .lock()
            .expect("detector state poisoned")
            .epoch
    }

    /// Hot-swaps the live detector without dropping a single queued or
    /// in-flight request, returning the new configuration epoch. The
    /// worker picks the replacement up at its next micro-batch boundary;
    /// every verdict reports the epoch it was actually scored under.
    pub fn swap_detector(&self, detector: Detector) -> u64 {
        install_detector(&self.shared, detector).1
    }

    /// A point-in-time copy of the operational counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A unified telemetry snapshot: this monitor's private metrics
    /// (queue occupancy, shed/block counts, batch sizes, stage and
    /// end-to-end latency histograms, per-class screening counters)
    /// merged with the process-wide registry (engine measurement spans,
    /// simulated-HPC event totals, worker-pool utilisation).
    ///
    /// Render it with
    /// [`Snapshot::render_prometheus`](advhunter_telemetry::Snapshot::render_prometheus)
    /// or
    /// [`Snapshot::render_json`](advhunter_telemetry::Snapshot::render_json).
    pub fn metrics_snapshot(&self) -> advhunter_telemetry::Snapshot {
        self.shared
            .stats
            .registry_snapshot()
            .merge(advhunter_telemetry::global().snapshot())
    }

    /// Holds the worker before its next micro-batch: submissions keep
    /// being admitted (and the bounded queue fills), but nothing is
    /// measured until [`resume`](Self::resume). Exposed for operational
    /// drains and for deterministic backpressure tests.
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Releases a paused worker.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Stops admissions and begins the graceful drain: every
    /// already-admitted request is still measured, scored, and delivered
    /// before [`recv`](Self::recv) returns `None`. The number of requests
    /// in the queue at this moment is recorded in
    /// [`StatsSnapshot::drained`] — the drain debt the shutdown proof
    /// checks against `completed`.
    pub fn close(&self) {
        let backlog = self.shared.queue.close();
        self.shared.stats.record_drained(backlog);
        self.shared.stop.signal();
    }

    /// Closes the monitor, waits for the worker to drain the queue and
    /// flush every pending verdict, and returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.close();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("monitor worker panicked");
        }
        if let Some(watcher) = self.watcher.take() {
            watcher.join().expect("monitor watcher panicked");
        }
        self.stats()
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.close();
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
        if let Some(worker) = self.worker.take() {
            // Surfacing the worker's panic beats swallowing it, except
            // while already unwinding (a double panic would abort).
            if worker.join().is_err() && !std::thread::panicking() {
                panic!("monitor worker panicked");
            }
        }
    }
}

/// Polls the detector source for externally-deployed replacements until
/// the monitor closes.
fn watcher_loop(shared: &Shared, poll: Duration) {
    let Some(source) = shared.source.as_deref() else {
        return;
    };
    while !shared.stop.wait(poll) {
        if let Some(detector) = source.poll_swap() {
            install_detector(shared, detector);
        }
    }
}

fn worker_loop(shared: &Shared, tx: &Sender<MonitorVerdict>) {
    let micro_batch = shared.config.micro_batch;
    let exec = shared.config.exec;
    let fusion = shared.config.fusion;
    // The worker owns the fingerprint store outright: matching mutates
    // per-tenant windows, so it runs here, sequentially in admission-id
    // order, *before* the parallel measurement fan-out. That makes the
    // cross-query verdict a pure function of the admission-ordered
    // (tenant, image) stream — thread count and batching cannot touch it.
    let mut store = shared
        .config
        .fingerprint
        .is_enabled()
        .then(|| FingerprintStore::new(shared.config.fingerprint));
    // The drift tracker is equally sequential: it consumes mean clean
    // NLLs in admission order, so its firings (and the exact request at
    // which a drift-swapped detector takes over) are reproducible.
    let mut drift = shared.config.drift.map(DriftTracker::new);
    while let Some(batch) = shared.queue.pop_batch(micro_batch) {
        shared.stats.record_drain(batch.len(), shared.queue.len());
        // Refresh the live detector once per micro-batch: external
        // hot-swaps take effect at batch boundaries, and the scoring
        // below shares no &mut state with other epochs' batches.
        let (mut detector, mut epoch) = {
            let state = shared.detector.lock().expect("detector state poisoned");
            (Arc::clone(&state.detector), state.epoch)
        };
        let fingerprint_start = Instant::now();
        let reports: Vec<Option<MatchReport>> = batch
            .iter()
            .map(|req| {
                store
                    .as_mut()
                    .map(|s| s.observe_query(req.tenant, req.image.data()))
            })
            .collect();
        let measure_start = Instant::now();
        if store.is_some() {
            shared
                .stats
                .record_fingerprint_stage(measure_start - fingerprint_start);
        }
        // Fan-out over the worker pool. Each request's noise stream is
        // derived from (exec.seed, request id), and each pool worker
        // checks out its own pooled scratch (workspace + tiles + counter
        // group) exactly once per micro-batch — measurement shares no
        // &mut engine state across workers, which is what lets the
        // simulated-multicore bench scale it linearly.
        let measurements = parallel_map_with(
            &exec.parallelism,
            &batch,
            || shared.engine.worker_scratch(&shared.model),
            |scratch, _, req| {
                shared.engine.measure_indexed_with(
                    &shared.model,
                    &req.image,
                    exec.seed,
                    req.id,
                    scratch,
                )
            },
        );
        // Scoring runs sequentially in admission order so a drift-driven
        // swap takes effect at the exact next request — deterministic
        // under every thread count and batch shape.
        let score_start = Instant::now();
        let mut scored: Vec<(Verdict, u64)> = Vec::with_capacity(batch.len());
        for m in &measurements {
            let verdict = detector.evaluate(m.predicted, &m.sample);
            // A firing below swaps the detector for the *next* request;
            // this one was already scored under the current epoch.
            let scored_epoch = epoch;
            let scores = verdict.scores();
            if let (Some(tracker), false, false) =
                (drift.as_mut(), verdict.flagged_any(), scores.is_empty())
            {
                let mean_nll = scores.iter().map(|s| s.nll).sum::<f64>() / scores.len() as f64;
                if let Some(observation) = tracker.observe(mean_nll) {
                    shared.stats.record_drift();
                    if let Some(replacement) = shared
                        .source
                        .as_deref()
                        .and_then(|s| s.recalibrate(&observation))
                    {
                        let (d, e) = install_detector(shared, replacement);
                        detector = d;
                        epoch = e;
                    }
                }
            }
            scored.push((verdict, scored_epoch));
        }
        let score_done = Instant::now();
        let measure = score_start - measure_start;
        let score = score_done - score_start;
        shared.stats.record_batch(measure, score);
        for ((req, (verdict, scored_epoch)), report) in batch.iter().zip(scored).zip(reports) {
            let queued = measure_start.saturating_duration_since(req.admitted_at);
            let hpc_anomalous = verdict.flagged_any();
            let query_correlated = report.is_some_and(|r| r.matched);
            let flagged = fusion.fuse(hpc_anomalous, query_correlated);
            if let Some(r) = report {
                shared.stats.record_fingerprint_report(&r);
            }
            shared.stats.record_verdict(
                verdict.predicted(),
                flagged,
                queued,
                req.admitted_at.elapsed(),
            );
            let out = MonitorVerdict {
                request_id: req.id,
                correlation_id: req.correlation,
                tenant: req.tenant,
                config_epoch: scored_epoch,
                verdict,
                hpc_anomalous,
                query_correlated,
                fingerprint: report,
                flagged,
                telemetry: RequestTelemetry {
                    depth_at_admission: req.depth_at_admission,
                    batch_size: batch.len(),
                    queued,
                    measure,
                    score,
                },
            };
            // A dropped receiver just means nobody wants verdicts any
            // more; keep draining so shutdown still completes.
            let _ = tx.send(out);
        }
    }
}
