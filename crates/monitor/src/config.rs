//! Monitor service configuration.

use std::fmt;

use advhunter_runtime::ExecOptions;

/// What the monitor does with a submission that arrives while the bounded
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reject the request immediately with
    /// [`SubmitError::Overloaded`](crate::SubmitError::Overloaded) and
    /// count it as shed. The right choice when the caller has its own
    /// retry or drop logic and must never stall.
    Shed,
    /// Block the submitting thread until a slot frees up (or the monitor
    /// closes). The right choice for replay/offline drivers that want
    /// every request processed.
    Block,
}

/// Configuration of a [`Monitor`](crate::Monitor).
///
/// The `exec` field carries the determinism contract: request `i` (ids are
/// assigned in admission order) draws its measurement noise from the
/// stream seeded by `derive_seed(exec.seed, i)`, so the verdict stream is
/// bit-identical for every `exec.parallelism` and every way of batching
/// the submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Capacity of the bounded submission queue.
    pub queue_capacity: usize,
    /// Maximum number of queued requests coalesced into one measurement
    /// micro-batch.
    pub micro_batch: usize,
    /// What to do with submissions while the queue is full.
    pub overload: OverloadPolicy,
    /// Seed and worker count for the measurement fan-out.
    pub exec: ExecOptions,
}

impl MonitorConfig {
    /// A configuration with the given execution options and the default
    /// queue shape (capacity 128, micro-batches of 16, blocking overload
    /// policy).
    pub fn new(exec: ExecOptions) -> Self {
        Self {
            queue_capacity: 128,
            micro_batch: 16,
            overload: OverloadPolicy::Block,
            exec,
        }
    }

    /// The same configuration with a different queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// The same configuration with a different micro-batch ceiling.
    pub fn with_micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// The same configuration with a different overload policy.
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Checks the configuration for nonsense values.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorConfigError`] when the queue capacity or the
    /// micro-batch ceiling is zero.
    pub fn validate(&self) -> Result<(), MonitorConfigError> {
        if self.queue_capacity == 0 {
            return Err(MonitorConfigError::ZeroQueueCapacity);
        }
        if self.micro_batch == 0 {
            return Err(MonitorConfigError::ZeroMicroBatch);
        }
        Ok(())
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self::new(ExecOptions::default())
    }
}

/// An invalid [`MonitorConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorConfigError {
    /// `queue_capacity` was zero: the service could never admit a request.
    ZeroQueueCapacity,
    /// `micro_batch` was zero: the worker could never drain the queue.
    ZeroMicroBatch,
}

impl fmt::Display for MonitorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroQueueCapacity => write!(f, "monitor queue capacity must be positive"),
            Self::ZeroMicroBatch => write!(f, "monitor micro-batch size must be positive"),
        }
    }
}

impl std::error::Error for MonitorConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_validate() {
        let cfg = MonitorConfig::new(ExecOptions::sequential(7))
            .with_queue_capacity(4)
            .with_micro_batch(2)
            .with_overload(OverloadPolicy::Shed);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.micro_batch, 2);
        assert_eq!(cfg.overload, OverloadPolicy::Shed);
        assert_eq!(cfg.exec.seed, 7);
        assert!(cfg.validate().is_ok());
        assert_eq!(
            cfg.with_queue_capacity(0).validate(),
            Err(MonitorConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            cfg.with_micro_batch(0).validate(),
            Err(MonitorConfigError::ZeroMicroBatch)
        );
    }
}
