//! Monitor service configuration.

use std::fmt;

use advhunter_fingerprint::{FingerprintConfig, FingerprintConfigError};
use advhunter_runtime::ExecOptions;

use crate::drift::{DriftConfig, DriftConfigError};

/// What the monitor does with a submission that arrives while the bounded
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reject the request immediately with
    /// [`SubmitError::Overloaded`](crate::SubmitError::Overloaded) and
    /// count it as shed. The right choice when the caller has its own
    /// retry or drop logic and must never stall.
    Shed,
    /// Block the submitting thread until a slot frees up (or the monitor
    /// closes). The right choice for replay/offline drivers that want
    /// every request processed.
    Block,
}

/// How the HPC anomaly verdict and the query-correlation verdict are
/// combined into the final `flagged` bit of a
/// [`MonitorVerdict`](crate::MonitorVerdict).
///
/// Both underlying bits are always reported on the verdict; the policy
/// only decides the fused headline. With the fingerprint stage disabled
/// the query-correlation bit is always `false`, so [`Or`](Self::Or) (the
/// default) degrades exactly to the HPC-only behaviour of earlier
/// releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Flag on the HPC anomaly verdict alone (ignore query correlation).
    HpcOnly,
    /// Flag on query correlation alone (ignore the HPC verdict).
    FingerprintOnly,
    /// Flag when *either* signal fires. Highest recall: per-query HPC
    /// anomalies and cross-query attack campaigns are both caught.
    Or,
    /// Flag only when *both* signals fire. Lowest false-positive rate:
    /// a benign near-duplicate (resubmitted image) or an isolated HPC
    /// outlier alone does not flag.
    And,
}

impl FusionPolicy {
    /// Applies the policy to the two signal bits.
    #[must_use]
    pub fn fuse(self, hpc_anomalous: bool, query_correlated: bool) -> bool {
        match self {
            Self::HpcOnly => hpc_anomalous,
            Self::FingerprintOnly => query_correlated,
            Self::Or => hpc_anomalous || query_correlated,
            Self::And => hpc_anomalous && query_correlated,
        }
    }

    /// The policy's CLI/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::HpcOnly => "hpc",
            Self::FingerprintOnly => "fingerprint",
            Self::Or => "or",
            Self::And => "and",
        }
    }
}

/// Configuration of a [`Monitor`](crate::Monitor).
///
/// The `exec` field carries the determinism contract: request `i` (ids are
/// assigned in admission order) draws its measurement noise from the
/// stream seeded by `derive_seed(exec.seed, i)`, so the verdict stream is
/// bit-identical for every `exec.parallelism` and every way of batching
/// the submissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Capacity of the bounded submission queue.
    pub queue_capacity: usize,
    /// Maximum number of queued requests coalesced into one measurement
    /// micro-batch.
    pub micro_batch: usize,
    /// What to do with submissions while the queue is full.
    pub overload: OverloadPolicy,
    /// Seed and worker count for the measurement fan-out.
    pub exec: ExecOptions,
    /// The query-fingerprint defense stage. Disabled by default
    /// ([`FingerprintConfig::disabled`]); enabling it gives every verdict
    /// a query-correlation bit fused per [`MonitorConfig::fusion`].
    pub fingerprint: FingerprintConfig,
    /// How HPC anomaly and query correlation combine into `flagged`.
    pub fusion: FusionPolicy,
    /// The clean-NLL drift test driving automatic recalibration. `None`
    /// (the default) disables drift tracking entirely.
    pub drift: Option<DriftConfig>,
}

impl MonitorConfig {
    /// A configuration with the given execution options and the default
    /// queue shape (capacity 128, micro-batches of 16, blocking overload
    /// policy).
    pub fn new(exec: ExecOptions) -> Self {
        Self {
            queue_capacity: 128,
            micro_batch: 16,
            overload: OverloadPolicy::Block,
            exec,
            fingerprint: FingerprintConfig::disabled(),
            fusion: FusionPolicy::Or,
            drift: None,
        }
    }

    /// Checks the configuration for nonsense values.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorConfigError`] when the queue capacity or the
    /// micro-batch ceiling is zero, or when an enabled fingerprint stage
    /// is misconfigured.
    pub fn validate(&self) -> Result<(), MonitorConfigError> {
        if self.queue_capacity == 0 {
            return Err(MonitorConfigError::ZeroQueueCapacity);
        }
        if self.micro_batch == 0 {
            return Err(MonitorConfigError::ZeroMicroBatch);
        }
        self.fingerprint
            .validate()
            .map_err(MonitorConfigError::Fingerprint)?;
        if let Some(drift) = &self.drift {
            drift.validate().map_err(MonitorConfigError::Drift)?;
        }
        Ok(())
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self::new(ExecOptions::default())
    }
}

/// An invalid [`MonitorConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorConfigError {
    /// `queue_capacity` was zero: the service could never admit a request.
    ZeroQueueCapacity,
    /// `micro_batch` was zero: the worker could never drain the queue.
    ZeroMicroBatch,
    /// The fingerprint stage was enabled with invalid knobs.
    Fingerprint(FingerprintConfigError),
    /// The drift test was enabled with invalid knobs.
    Drift(DriftConfigError),
}

impl fmt::Display for MonitorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroQueueCapacity => write!(f, "monitor queue capacity must be positive"),
            Self::ZeroMicroBatch => write!(f, "monitor micro-batch size must be positive"),
            Self::Fingerprint(e) => write!(f, "fingerprint stage: {e}"),
            Self::Drift(e) => write!(f, "drift test: {e}"),
        }
    }
}

impl std::error::Error for MonitorConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_compose_and_validate() {
        let mut cfg = MonitorConfig::new(ExecOptions::sequential(7));
        cfg.queue_capacity = 4;
        cfg.micro_batch = 2;
        cfg.overload = OverloadPolicy::Shed;
        assert_eq!(cfg.exec.seed, 7);
        assert!(cfg.validate().is_ok());
        let mut bad = cfg;
        bad.queue_capacity = 0;
        assert_eq!(bad.validate(), Err(MonitorConfigError::ZeroQueueCapacity));
        let mut bad = cfg;
        bad.micro_batch = 0;
        assert_eq!(bad.validate(), Err(MonitorConfigError::ZeroMicroBatch));
    }

    #[test]
    fn fingerprint_knobs_are_validated_when_enabled() {
        let cfg = MonitorConfig::default();
        assert!(!cfg.fingerprint.is_enabled(), "defense is opt-in");
        assert_eq!(cfg.fusion, FusionPolicy::Or);
        assert!(cfg.validate().is_ok());
        let mut enabled = cfg;
        enabled.fingerprint = FingerprintConfig::default();
        assert!(enabled.validate().is_ok());
        let mut bad = cfg;
        bad.fingerprint = FingerprintConfig::default();
        bad.fingerprint.match_threshold = 2.0;
        assert_eq!(
            bad.validate(),
            Err(MonitorConfigError::Fingerprint(
                FingerprintConfigError::BadMatchThreshold
            ))
        );
    }

    #[test]
    fn drift_knobs_are_validated_when_enabled() {
        let mut cfg = MonitorConfig::default();
        assert!(cfg.drift.is_none(), "drift tracking is opt-in");
        cfg.drift = Some(DriftConfig::default());
        assert!(cfg.validate().is_ok());
        cfg.drift = Some(DriftConfig {
            window: 0,
            ..DriftConfig::default()
        });
        assert_eq!(
            cfg.validate(),
            Err(MonitorConfigError::Drift(DriftConfigError::ZeroWindow))
        );
    }

    #[test]
    fn fusion_policies_combine_the_two_bits() {
        for (policy, table) in [
            (FusionPolicy::HpcOnly, [false, false, true, true]),
            (FusionPolicy::FingerprintOnly, [false, true, false, true]),
            (FusionPolicy::Or, [false, true, true, true]),
            (FusionPolicy::And, [false, false, false, true]),
        ] {
            let inputs = [(false, false), (false, true), (true, false), (true, true)];
            for ((hpc, qc), expected) in inputs.into_iter().zip(table) {
                assert_eq!(policy.fuse(hpc, qc), expected, "{policy:?} {hpc} {qc}");
            }
        }
    }
}
