//! The bounded submission queue behind the monitor service.
//!
//! A `Mutex` + `Condvar` MPSC queue with three properties the service
//! needs beyond `std::sync::mpsc`:
//!
//! * **Admission-order ids** — [`BoundedQueue::try_push_with`] and
//!   [`BoundedQueue::push_with`] assign the next sequential id *under the
//!   queue lock*, so ids are a total order over admitted requests no
//!   matter how many threads submit concurrently. The ids seed per-request
//!   noise streams, which is what makes verdicts independent of batching.
//! * **Bounded, with explicit overflow behavior** — `try_push_with` sheds
//!   (returns [`PushError::Full`]) and `push_with` blocks until a slot
//!   frees, giving the service its shed/block overload policies.
//! * **Pause/resume** — [`BoundedQueue::pause`] holds the consumer while
//!   producers keep admitting, so backpressure paths are testable without
//!   races or sleeps.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity (only returned by the non-blocking push).
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

/// Outcome of a successful push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pushed {
    /// The admission-order id assigned under the queue lock.
    pub id: u64,
    /// Queue depth including the new item.
    pub depth: usize,
    /// Whether the push had to park on a full queue before being
    /// admitted (always `false` for [`BoundedQueue::try_push_with`]).
    pub blocked: bool,
}

struct QueueState<T> {
    items: VecDeque<T>,
    next_id: u64,
    closed: bool,
    paused: bool,
}

/// A bounded MPSC queue with in-lock id assignment and a pausable
/// consumer side.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                next_id: 0,
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Admits `make(id, depth)` — where `id` is the next sequential id
    /// and `depth` the queue depth including the new item — or sheds.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push_with(&self, make: impl FnOnce(u64, usize) -> T) -> Result<Pushed, PushError> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        Ok(self.admit(&mut s, make, false))
    }

    /// Admits `make(id, depth)` with the next sequential id, blocking
    /// while the queue is at capacity. [`Pushed::blocked`] reports
    /// whether the call had to wait.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] if the queue is (or becomes, while waiting)
    /// closed.
    pub fn push_with(&self, make: impl FnOnce(u64, usize) -> T) -> Result<Pushed, PushError> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        let mut blocked = false;
        while !s.closed && s.items.len() >= self.capacity {
            blocked = true;
            s = self.not_full.wait(s).expect("queue lock poisoned");
        }
        if s.closed {
            return Err(PushError::Closed);
        }
        Ok(self.admit(&mut s, make, blocked))
    }

    fn admit(
        &self,
        s: &mut QueueState<T>,
        make: impl FnOnce(u64, usize) -> T,
        blocked: bool,
    ) -> Pushed {
        let id = s.next_id;
        s.next_id += 1;
        let depth = s.items.len() + 1;
        s.items.push_back(make(id, depth));
        self.not_empty.notify_one();
        Pushed { id, depth, blocked }
    }

    /// Takes up to `max` items in admission order, blocking while the
    /// queue is empty or paused. Returns `None` once the queue is closed
    /// *and* drained — the consumer's termination signal.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        // Close overrides pause so shutdown always drains.
        while (s.items.is_empty() || s.paused) && !s.closed {
            s = self.not_empty.wait(s).expect("queue lock poisoned");
        }
        if s.items.is_empty() {
            debug_assert!(s.closed);
            return None;
        }
        let n = max.min(s.items.len()).max(1);
        let batch: Vec<T> = s.items.drain(..n).collect();
        drop(s);
        self.not_full.notify_all();
        Some(batch)
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Holds the consumer: [`pop_batch`](Self::pop_batch) blocks until
    /// [`resume`](Self::resume) (or [`close`](Self::close)). Producers are
    /// unaffected, so a paused queue fills up — the deterministic way to
    /// exercise the overload paths.
    pub fn pause(&self) {
        self.state.lock().expect("queue lock poisoned").paused = true;
    }

    /// Releases a paused consumer.
    pub fn resume(&self) {
        let mut s = self.state.lock().expect("queue lock poisoned");
        s.paused = false;
        drop(s);
        self.not_empty.notify_all();
    }

    /// Closes the queue: further pushes fail with [`PushError::Closed`],
    /// blocked pushers wake with that error, and the consumer drains what
    /// is left before [`pop_batch`](Self::pop_batch) returns `None`.
    ///
    /// Returns the number of items still queued at the moment of closing
    /// — the drain backlog the consumer is now committed to delivering.
    /// A second close is a no-op reporting zero, so the first caller owns
    /// the true count.
    pub fn close(&self) -> usize {
        let mut s = self.state.lock().expect("queue lock poisoned");
        let backlog = if s.closed { 0 } else { s.items.len() };
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ids_are_sequential_in_admission_order() {
        let q = BoundedQueue::new(8);
        for expect in 0..5u64 {
            let p = q.try_push_with(|id, _| id).unwrap();
            assert_eq!(p.id, expect);
            assert_eq!(p.depth, expect as usize + 1);
            assert!(!p.blocked, "try_push never blocks");
        }
        assert_eq!(q.pop_batch(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(99).unwrap(), vec![3, 4]);
    }

    #[test]
    fn try_push_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push_with(|id, _| id).unwrap();
        q.try_push_with(|id, _| id).unwrap();
        assert_eq!(q.try_push_with(|id, _| id), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        q.pop_batch(1).unwrap();
        // Shed submissions never consumed an id.
        assert_eq!(
            q.try_push_with(|id, _| id),
            Ok(Pushed {
                id: 2,
                depth: 2,
                blocked: false
            })
        );
    }

    #[test]
    fn blocking_push_waits_for_space_and_reports_it() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = Arc::new(BoundedQueue::new(1));
        assert!(!q.push_with(|id, _| id).unwrap().blocked, "queue had room");
        let started = Arc::new(AtomicBool::new(false));
        let q2 = Arc::clone(&q);
        let started2 = Arc::clone(&started);
        let pusher = std::thread::spawn(move || {
            started2.store(true, Ordering::SeqCst);
            q2.push_with(|id, _| id)
        });
        // Wait until the pusher is at (or inside) push_with, then give it
        // a grace period to park before freeing the slot.
        while !started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        // The consumer frees the slot; the blocked pusher then lands.
        assert_eq!(q.pop_batch(1).unwrap(), vec![0]);
        assert_eq!(
            pusher.join().unwrap(),
            Ok(Pushed {
                id: 1,
                depth: 1,
                blocked: true
            })
        );
        assert_eq!(q.pop_batch(1).unwrap(), vec![1]);
    }

    #[test]
    fn close_drains_then_signals_termination() {
        let q = BoundedQueue::new(4);
        q.try_push_with(|id, _| id).unwrap();
        q.try_push_with(|id, _| id).unwrap();
        assert_eq!(q.close(), 2, "close reports the drain backlog");
        assert_eq!(q.close(), 0, "second close owns nothing");
        assert_eq!(q.try_push_with(|id, _| id), Err(PushError::Closed));
        assert_eq!(q.pop_batch(10).unwrap(), vec![0, 1]);
        assert_eq!(q.pop_batch(10), None);
    }

    #[test]
    fn close_wakes_blocked_pusher() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_with(|id, _| id).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_with(|id, _| id));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Closed));
    }

    #[test]
    fn pause_holds_consumer_but_not_producers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.pause();
        q.try_push_with(|id, _| id).unwrap();
        q.try_push_with(|id, _| id).unwrap();
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(10));
        // Producers kept working while the consumer is held.
        q.try_push_with(|id, _| id).unwrap();
        q.resume();
        assert_eq!(consumer.join().unwrap().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u64>::new(0);
    }
}
