//! The TCP front-end: many wire-protocol clients multiplexed onto one
//! monitor's bounded queue.
//!
//! # Threading (DESIGN.md §16)
//!
//! ```text
//! acceptor ──► per-connection reader ──► Monitor::submit ──► queue
//!                      │ (rejects)                             │
//!                      ▼                                    worker
//!              per-connection writer ◄── dispatcher ◄── Monitor::recv
//! ```
//!
//! * One **acceptor** thread takes connections and spawns a
//!   reader/writer pair per client.
//! * Each **reader** decodes frames and calls [`Monitor::submit`]
//!   directly, so the monitor's [`OverloadPolicy`](crate::OverloadPolicy)
//!   becomes per-connection backpressure: `Block` parks the reader (the
//!   client's TCP window fills — natural flow control), `Shed` turns
//!   [`SubmitError::Overloaded`](crate::SubmitError) into an immediate
//!   reject frame echoing the caller's correlation id.
//! * One **dispatcher** thread drains [`Monitor::recv`] and routes each
//!   verdict to the connection that submitted it (admission ids are
//!   unique across connections because the queue assigns them under its
//!   lock). Verdicts that arrive before the submitting reader has
//!   registered its route are parked in an orphan buffer and handed over
//!   on registration.
//! * Each **writer** serializes outbound frames for one client, so slow
//!   clients never block the dispatcher.

use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use advhunter_wire::{
    read_frame, write_frame, ControlOp, Frame, MonitorRequest, Reject, RejectCode, WireError,
    WireStats, WireVerdict,
};

use crate::service::{Monitor, MonitorVerdict, SubmitError};
use crate::stats::StatsSnapshot;

/// Maps admission ids to the submitting connection's outbound channel.
/// `orphans` parks verdicts that outran their route registration.
#[derive(Default)]
struct RouteTable {
    routes: HashMap<u64, Sender<Frame>>,
    orphans: HashMap<u64, Frame>,
}

struct ServerState {
    stopping: AtomicBool,
    table: Mutex<RouteTable>,
    conns: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

fn wire_verdict(v: MonitorVerdict) -> WireVerdict {
    WireVerdict {
        request_id: v.request_id,
        correlation_id: v.correlation_id,
        tenant: v.tenant,
        config_epoch: v.config_epoch,
        verdict: v.verdict,
        hpc_anomalous: v.hpc_anomalous,
        query_correlated: v.query_correlated,
        fingerprint: v.fingerprint,
        flagged: v.flagged,
    }
}

fn wire_stats(s: &StatsSnapshot) -> WireStats {
    WireStats {
        submitted: s.submitted,
        completed: s.completed,
        shed: s.shed,
        blocked: s.blocked,
        drained: s.drained,
        batches: s.batches,
        config_epoch: s.config_epoch,
        detector_swaps: s.detector_swaps,
        drift_events: s.drift_events,
    }
}

/// A TCP server speaking the `AHP1` wire protocol on behalf of one
/// [`Monitor`].
///
/// Bind with [`WireServer::bind`], read the bound address via
/// [`local_addr`](Self::local_addr) (bind to port 0 for an ephemeral
/// port), and tear everything down with [`stop`](Self::stop) — which
/// drains the monitor gracefully and returns its final counters. The
/// wire path reuses [`Monitor::submit`] verbatim, so remote verdicts are
/// bit-identical to in-process ones.
pub struct WireServer {
    monitor: Option<Arc<Monitor>>,
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` and starts serving `monitor` over it.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the address cannot be bound.
    pub fn bind(monitor: Monitor, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let monitor = Arc::new(monitor);
        let state = Arc::new(ServerState {
            stopping: AtomicBool::new(false),
            table: Mutex::new(RouteTable::default()),
            conns: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let acceptor = {
            let monitor = Arc::clone(&monitor);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("advhunter-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &monitor, &state))
                .expect("failed to spawn acceptor thread")
        };
        let dispatcher = {
            let monitor = Arc::clone(&monitor);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("advhunter-dispatcher".into())
                .spawn(move || dispatcher_loop(&monitor, &state))
                .expect("failed to spawn dispatcher thread")
        };
        Ok(Self {
            monitor: Some(monitor),
            addr,
            state,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The monitor being served — for operational access (hot-swap,
    /// stats, metrics) from the owning process.
    pub fn monitor(&self) -> &Monitor {
        self.monitor
            .as_deref()
            .expect("monitor present until stop()")
    }

    /// Blocks until some client sends
    /// [`ControlOp::Shutdown`](advhunter_wire::ControlOp) (or the server
    /// stops). The serve CLI parks here, then calls
    /// [`stop`](Self::stop).
    pub fn wait_for_shutdown(&self) {
        let mut flag = self
            .state
            .shutdown_flag
            .lock()
            .expect("shutdown flag poisoned");
        while !*flag {
            flag = self
                .state
                .shutdown_cv
                .wait(flag)
                .expect("shutdown flag poisoned");
        }
    }

    /// Stops accepting, disconnects every client, drains the monitor
    /// gracefully (every admitted request is still scored and delivered
    /// to its submitter where the connection is still up), and returns
    /// the final counters.
    pub fn stop(mut self) -> StatsSnapshot {
        self.halt()
            .expect("stop() is the only consumer of the monitor")
    }

    fn halt(&mut self) -> Option<StatsSnapshot> {
        let monitor = self.monitor.take()?;
        self.state.stopping.store(true, Ordering::SeqCst);
        // Wake anyone parked in wait_for_shutdown.
        *self
            .state
            .shutdown_flag
            .lock()
            .expect("shutdown flag poisoned") = true;
        self.state.shutdown_cv.notify_all();
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the stopping flag after every accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Close admissions and let the worker drain; the dispatcher
        // delivers every remaining verdict, then sees the end of the
        // stream and exits.
        monitor.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        // Disconnect the clients: readers unblock out of read_frame and
        // exit; dropping the route table drops the last outbound senders
        // so writers exit too.
        for conn in self.state.conns.lock().expect("conns poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        {
            let mut table = self.state.table.lock().expect("route table poisoned");
            table.routes.clear();
            table.orphans.clear();
        }
        let threads: Vec<_> = self
            .state
            .threads
            .lock()
            .expect("thread list poisoned")
            .drain(..)
            .collect();
        for t in threads {
            let _ = t.join();
        }
        let monitor = Arc::into_inner(monitor)
            .expect("all per-connection threads joined, so this is the last monitor handle");
        Some(monitor.shutdown())
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        let _ = self.halt();
    }
}

fn acceptor_loop(listener: &TcpListener, monitor: &Arc<Monitor>, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let (out_tx, out_rx) = std::sync::mpsc::channel::<Frame>();
        let reader = {
            let monitor = Arc::clone(monitor);
            let state = Arc::clone(state);
            std::thread::Builder::new()
                .name("advhunter-conn-reader".into())
                .spawn(move || reader_loop(read_half, &monitor, &state, &out_tx))
        };
        let writer = std::thread::Builder::new()
            .name("advhunter-conn-writer".into())
            .spawn(move || writer_loop(write_half, &out_rx));
        let mut threads = state.threads.lock().expect("thread list poisoned");
        if let Ok(t) = reader {
            threads.push(t);
        }
        if let Ok(t) = writer {
            threads.push(t);
        }
        drop(threads);
        state.conns.lock().expect("conns poisoned").push(stream);
    }
}

/// Routes every verdict the monitor produces to its submitter.
fn dispatcher_loop(monitor: &Arc<Monitor>, state: &Arc<ServerState>) {
    while let Some(verdict) = monitor.recv() {
        let id = verdict.request_id;
        let frame = Frame::Verdict(wire_verdict(verdict));
        let mut table = state.table.lock().expect("route table poisoned");
        match table.routes.remove(&id) {
            // A dead connection just means nobody hears this verdict.
            Some(tx) => {
                let _ = tx.send(frame);
            }
            None => {
                table.orphans.insert(id, frame);
            }
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    monitor: &Arc<Monitor>,
    state: &Arc<ServerState>,
    out_tx: &Sender<Frame>,
) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean disconnect between frames.
            Ok(None) => break,
            Err(WireError::Io(_)) => break,
            Err(e) => {
                // Protocol violation: tell the client (best effort) and
                // hang up rather than guess at resynchronization.
                let _ = out_tx.send(Frame::Reject(Reject {
                    code: RejectCode::Protocol,
                    correlation_id: None,
                    message: e.to_string(),
                }));
                break;
            }
        };
        match frame {
            Frame::Request(request) => handle_request(request, monitor, state, out_tx),
            Frame::StatsRequest => {
                let stats = wire_stats(&monitor.stats());
                if out_tx.send(Frame::Stats(stats)).is_err() {
                    break;
                }
            }
            Frame::Control(op) => {
                match op {
                    ControlOp::Pause => monitor.pause(),
                    ControlOp::Resume => monitor.resume(),
                    ControlOp::Shutdown => {
                        *state.shutdown_flag.lock().expect("shutdown flag poisoned") = true;
                        state.shutdown_cv.notify_all();
                    }
                }
                let ack = Frame::ControlAck {
                    op,
                    config_epoch: monitor.config_epoch(),
                };
                if out_tx.send(ack).is_err() {
                    break;
                }
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            Frame::Verdict(_) | Frame::Stats(_) | Frame::ControlAck { .. } | Frame::Reject(_) => {
                let _ = out_tx.send(Frame::Reject(Reject {
                    code: RejectCode::Protocol,
                    correlation_id: None,
                    message: "client sent a server-to-client frame".into(),
                }));
                break;
            }
        }
    }
}

fn handle_request(
    request: MonitorRequest,
    monitor: &Arc<Monitor>,
    state: &Arc<ServerState>,
    out_tx: &Sender<Frame>,
) {
    let correlation = request.request_id;
    match monitor.submit(request) {
        Ok(id) => {
            let mut table = state.table.lock().expect("route table poisoned");
            // The dispatcher may already have parked this verdict.
            if let Some(frame) = table.orphans.remove(&id) {
                let _ = out_tx.send(frame);
            } else {
                table.routes.insert(id, out_tx.clone());
            }
        }
        Err(err) => {
            let code = match err {
                SubmitError::Overloaded => RejectCode::Overloaded,
                SubmitError::Closed => RejectCode::Closed,
            };
            let _ = out_tx.send(Frame::Reject(Reject {
                code,
                correlation_id: correlation,
                message: err.to_string(),
            }));
        }
    }
}

fn writer_loop(stream: TcpStream, out_rx: &Receiver<Frame>) {
    let mut writer = BufWriter::new(stream);
    while let Ok(frame) = out_rx.recv() {
        if write_frame(&mut writer, &frame).is_err() || writer.flush().is_err() {
            break;
        }
    }
}
