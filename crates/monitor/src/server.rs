//! The TCP front-end: many wire-protocol clients multiplexed onto one
//! monitor's bounded queue.
//!
//! # Threading (DESIGN.md §16)
//!
//! ```text
//! acceptor ──► per-connection reader ──► Monitor::submit ──► queue
//!                      │ (rejects)                             │
//!                      ▼                                    worker
//!              per-connection writer ◄── dispatcher ◄── Monitor::recv
//! ```
//!
//! * One **acceptor** thread takes connections and spawns a
//!   reader/writer pair per client.
//! * Each **reader** decodes frames and calls [`Monitor::submit`]
//!   directly, so the monitor's [`OverloadPolicy`](crate::OverloadPolicy)
//!   becomes per-connection backpressure: `Block` parks the reader (the
//!   client's TCP window fills — natural flow control), `Shed` turns
//!   [`SubmitError::Overloaded`](crate::SubmitError) into an immediate
//!   reject frame echoing the caller's correlation id.
//! * One **dispatcher** thread drains [`Monitor::recv`] and routes each
//!   verdict to the connection that submitted it (admission ids are
//!   unique across connections because the queue assigns them under its
//!   lock). Verdicts that arrive before the submitting reader has
//!   registered its route are parked in an orphan buffer and handed over
//!   on registration.
//! * Each **writer** serializes outbound frames for one client, so slow
//!   clients never block the dispatcher.
//!
//! Requests are shape-checked against the served model before admission
//! (a mismatch is a typed `BadRequest` reject, never a worker panic),
//! control frames are gated by [`ControlAccess`] (loopback-only by
//! default), and a disconnected client's socket and writer are released
//! the moment its reader exits — a long-running server holds resources
//! proportional to its live clients, not its connection history.

use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use advhunter_wire::{
    read_frame, write_frame, ControlOp, Frame, MonitorRequest, Reject, RejectCode, WireError,
    WireStats, WireVerdict,
};

use crate::service::{Monitor, MonitorVerdict, SubmitError};
use crate::stats::StatsSnapshot;

/// Who may issue [`ControlOp`] frames (pause/resume/shutdown) over the
/// wire. Request and stats frames are always allowed — this only gates
/// the operations that affect *every* client of the shared monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlAccess {
    /// Control frames are honored only for loopback peers (the default):
    /// a co-located operator keeps pause/shutdown, remote tenants cannot
    /// stall or stop the service.
    #[default]
    Loopback,
    /// Any connected client may issue control frames. Only safe when
    /// every peer is trusted.
    Any,
    /// All control frames are refused, even from loopback.
    Deny,
}

/// Maps admission ids to the submitting connection's outbound channel.
/// `orphans` parks verdicts that outran their route registration;
/// `closed` refuses late registrations once shutdown has cleared the
/// table (a re-inserted Sender would keep its writer alive forever).
#[derive(Default)]
struct RouteTable {
    routes: HashMap<u64, Sender<Frame>>,
    orphans: HashMap<u64, Frame>,
    closed: bool,
}

/// One tracked client connection. The reader releases the stream and
/// writer itself on disconnect (see [`release_conn`]); its own join
/// handle stays until the acceptor's next sweep or [`WireServer::stop`]
/// reaps it.
struct Conn {
    stream: Option<TcpStream>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

struct ServerState {
    stopping: AtomicBool,
    control: ControlAccess,
    table: Mutex<RouteTable>,
    conns: Mutex<HashMap<u64, Conn>>,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

fn wire_verdict(v: MonitorVerdict) -> WireVerdict {
    WireVerdict {
        request_id: v.request_id,
        correlation_id: v.correlation_id,
        tenant: v.tenant,
        config_epoch: v.config_epoch,
        verdict: v.verdict,
        hpc_anomalous: v.hpc_anomalous,
        query_correlated: v.query_correlated,
        fingerprint: v.fingerprint,
        flagged: v.flagged,
    }
}

fn wire_stats(s: &StatsSnapshot) -> WireStats {
    WireStats {
        submitted: s.submitted,
        completed: s.completed,
        shed: s.shed,
        blocked: s.blocked,
        drained: s.drained,
        batches: s.batches,
        config_epoch: s.config_epoch,
        detector_swaps: s.detector_swaps,
        drift_events: s.drift_events,
    }
}

/// A TCP server speaking the `AHP1` wire protocol on behalf of one
/// [`Monitor`].
///
/// Bind with [`WireServer::bind`], read the bound address via
/// [`local_addr`](Self::local_addr) (bind to port 0 for an ephemeral
/// port), and tear everything down with [`stop`](Self::stop) — which
/// drains the monitor gracefully and returns its final counters. The
/// wire path reuses [`Monitor::submit`] verbatim, so remote verdicts are
/// bit-identical to in-process ones.
pub struct WireServer {
    monitor: Option<Arc<Monitor>>,
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` and starts serving `monitor` over it, honoring
    /// control frames only from loopback peers
    /// ([`ControlAccess::Loopback`]).
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the address cannot be bound.
    pub fn bind(monitor: Monitor, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(monitor, addr, ControlAccess::default())
    }

    /// Binds `addr` with an explicit [`ControlAccess`] policy for
    /// pause/resume/shutdown frames.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the address cannot be bound.
    pub fn bind_with(
        monitor: Monitor,
        addr: impl ToSocketAddrs,
        control: ControlAccess,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let monitor = Arc::new(monitor);
        let state = Arc::new(ServerState {
            stopping: AtomicBool::new(false),
            control,
            table: Mutex::new(RouteTable::default()),
            conns: Mutex::new(HashMap::new()),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let acceptor = {
            let monitor = Arc::clone(&monitor);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("advhunter-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &monitor, &state))
                .expect("failed to spawn acceptor thread")
        };
        let dispatcher = {
            let monitor = Arc::clone(&monitor);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("advhunter-dispatcher".into())
                .spawn(move || dispatcher_loop(&monitor, &state))
                .expect("failed to spawn dispatcher thread")
        };
        Ok(Self {
            monitor: Some(monitor),
            addr,
            state,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The monitor being served — for operational access (hot-swap,
    /// stats, metrics) from the owning process.
    pub fn monitor(&self) -> &Monitor {
        self.monitor
            .as_deref()
            .expect("monitor present until stop()")
    }

    /// Number of tracked client connections: the live ones, plus any
    /// that disconnected since the acceptor's last sweep (each sweep
    /// happens on accept; disconnected clients release their socket
    /// immediately either way).
    pub fn connections(&self) -> usize {
        self.state.conns.lock().expect("conns poisoned").len()
    }

    /// Blocks until some client sends
    /// [`ControlOp::Shutdown`](advhunter_wire::ControlOp) (or the server
    /// stops). The serve CLI parks here, then calls
    /// [`stop`](Self::stop).
    pub fn wait_for_shutdown(&self) {
        let mut flag = self
            .state
            .shutdown_flag
            .lock()
            .expect("shutdown flag poisoned");
        while !*flag {
            flag = self
                .state
                .shutdown_cv
                .wait(flag)
                .expect("shutdown flag poisoned");
        }
    }

    /// Stops accepting, disconnects every client, drains the monitor
    /// gracefully (every admitted request is still scored and delivered
    /// to its submitter where the connection is still up), and returns
    /// the final counters.
    pub fn stop(mut self) -> StatsSnapshot {
        self.halt()
            .expect("stop() is the only consumer of the monitor")
    }

    fn halt(&mut self) -> Option<StatsSnapshot> {
        let monitor = self.monitor.take()?;
        self.state.stopping.store(true, Ordering::SeqCst);
        // Wake anyone parked in wait_for_shutdown.
        *self
            .state
            .shutdown_flag
            .lock()
            .expect("shutdown flag poisoned") = true;
        self.state.shutdown_cv.notify_all();
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the stopping flag after every accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Close admissions and let the worker drain; the dispatcher
        // delivers every remaining verdict, then sees the end of the
        // stream and exits.
        monitor.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        // Close the route table before joining anything: dropping the
        // registered senders lets the writers exit, and the `closed` flag
        // stops a racing reader (whose submit returned Ok just before
        // close) from re-inserting a sender that would keep its writer —
        // and therefore this join below — alive forever.
        {
            let mut table = self.state.table.lock().expect("route table poisoned");
            table.closed = true;
            table.routes.clear();
            table.orphans.clear();
        }
        // Disconnect the clients: readers unblock out of read_frame and
        // exit, then join their own writers.
        let conns: Vec<Conn> = {
            let mut conns = self.state.conns.lock().expect("conns poisoned");
            conns.drain().map(|(_, conn)| conn).collect()
        };
        for conn in &conns {
            if let Some(stream) = &conn.stream {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for mut conn in conns {
            if let Some(reader) = conn.reader.take() {
                let _ = reader.join();
            }
            if let Some(writer) = conn.writer.take() {
                let _ = writer.join();
            }
        }
        let monitor = Arc::into_inner(monitor)
            .expect("all per-connection threads joined, so this is the last monitor handle");
        Some(monitor.shutdown())
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        let _ = self.halt();
    }
}

fn acceptor_loop(listener: &TcpListener, monitor: &Arc<Monitor>, state: &Arc<ServerState>) {
    let mut next_conn_id: u64 = 0;
    for stream in listener.incoming() {
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        reap_finished(state);
        let Ok(stream) = stream else { continue };
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        let allow_control = match state.control {
            ControlAccess::Any => true,
            ControlAccess::Deny => false,
            ControlAccess::Loopback => stream.peer_addr().is_ok_and(|peer| peer.ip().is_loopback()),
        };
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        let (out_tx, out_rx) = std::sync::mpsc::channel::<Frame>();
        let reader = {
            let monitor = Arc::clone(monitor);
            let state = Arc::clone(state);
            std::thread::Builder::new()
                .name("advhunter-conn-reader".into())
                .spawn(move || {
                    reader_loop(read_half, &monitor, &state, &out_tx, allow_control);
                    // The route table may still hold this connection's
                    // senders for in-flight verdicts; our own must go
                    // before release_conn waits on the writer.
                    drop(out_tx);
                    release_conn(&state, conn_id);
                })
        };
        let writer = std::thread::Builder::new()
            .name("advhunter-conn-writer".into())
            .spawn(move || writer_loop(write_half, &out_rx));
        state.conns.lock().expect("conns poisoned").insert(
            conn_id,
            Conn {
                stream: Some(stream),
                reader: reader.ok(),
                writer: writer.ok(),
            },
        );
    }
}

/// Called by a connection's reader as it exits: close the socket and
/// wait out the writer so the file descriptors are released the moment
/// the client disconnects, not at server stop. The writer drains once
/// the dispatcher has delivered this connection's in-flight verdicts
/// (each delivery drops a route-table sender) — then its receiver
/// disconnects and it exits.
fn release_conn(state: &ServerState, conn_id: u64) {
    let (stream, writer) = {
        let mut conns = state.conns.lock().expect("conns poisoned");
        match conns.get_mut(&conn_id) {
            Some(conn) => (conn.stream.take(), conn.writer.take()),
            None => (None, None),
        }
    };
    if let Some(stream) = stream {
        let _ = stream.shutdown(Shutdown::Both);
    }
    if let Some(writer) = writer {
        let _ = writer.join();
    }
}

/// Drops the bookkeeping of connections whose reader has exited (their
/// sockets and writers were already released by [`release_conn`]).
/// Swept on every accept, so a long-running server's tracking stays
/// proportional to its *live* clients.
fn reap_finished(state: &ServerState) {
    let finished: Vec<Conn> = {
        let mut conns = state.conns.lock().expect("conns poisoned");
        let done: Vec<u64> = conns
            .iter()
            .filter(|(_, conn)| conn.reader.as_ref().is_none_or(JoinHandle::is_finished))
            .map(|(&id, _)| id)
            .collect();
        done.iter().filter_map(|id| conns.remove(id)).collect()
    };
    for mut conn in finished {
        if let Some(stream) = conn.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(reader) = conn.reader.take() {
            let _ = reader.join();
        }
        if let Some(writer) = conn.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Routes every verdict the monitor produces to its submitter.
fn dispatcher_loop(monitor: &Arc<Monitor>, state: &Arc<ServerState>) {
    while let Some(verdict) = monitor.recv() {
        let id = verdict.request_id;
        let frame = Frame::Verdict(wire_verdict(verdict));
        let mut table = state.table.lock().expect("route table poisoned");
        match table.routes.remove(&id) {
            // A dead connection just means nobody hears this verdict.
            Some(tx) => {
                let _ = tx.send(frame);
            }
            None => {
                table.orphans.insert(id, frame);
            }
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    monitor: &Arc<Monitor>,
    state: &Arc<ServerState>,
    out_tx: &Sender<Frame>,
    allow_control: bool,
) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean disconnect between frames.
            Ok(None) => break,
            Err(WireError::Io(_)) => break,
            Err(e) => {
                // Protocol violation: tell the client (best effort) and
                // hang up rather than guess at resynchronization.
                let _ = out_tx.send(Frame::Reject(Reject {
                    code: RejectCode::Protocol,
                    correlation_id: None,
                    message: e.to_string(),
                }));
                break;
            }
        };
        match frame {
            Frame::Request(request) => handle_request(request, monitor, state, out_tx),
            Frame::StatsRequest => {
                let stats = wire_stats(&monitor.stats());
                if out_tx.send(Frame::Stats(stats)).is_err() {
                    break;
                }
            }
            Frame::Control(op) => {
                if !allow_control {
                    // Denied, not a protocol violation: the client may
                    // keep submitting, it just cannot steer the shared
                    // service (see ControlAccess).
                    if out_tx
                        .send(Frame::Reject(Reject {
                            code: RejectCode::Denied,
                            correlation_id: None,
                            message: format!(
                                "control op {op:?} denied by the server's access policy"
                            ),
                        }))
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                match op {
                    ControlOp::Pause => monitor.pause(),
                    ControlOp::Resume => monitor.resume(),
                    ControlOp::Shutdown => {
                        *state.shutdown_flag.lock().expect("shutdown flag poisoned") = true;
                        state.shutdown_cv.notify_all();
                    }
                }
                let ack = Frame::ControlAck {
                    op,
                    config_epoch: monitor.config_epoch(),
                };
                if out_tx.send(ack).is_err() {
                    break;
                }
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            Frame::Verdict(_) | Frame::Stats(_) | Frame::ControlAck { .. } | Frame::Reject(_) => {
                let _ = out_tx.send(Frame::Reject(Reject {
                    code: RejectCode::Protocol,
                    correlation_id: None,
                    message: "client sent a server-to-client frame".into(),
                }));
                break;
            }
        }
    }
}

fn handle_request(
    request: MonitorRequest,
    monitor: &Arc<Monitor>,
    state: &Arc<ServerState>,
    out_tx: &Sender<Frame>,
) {
    let correlation = request.request_id;
    // Validate the shape before admission: the wire codec accepts any
    // rank-1..8 tensor, but the engine asserts the model's input shape —
    // one mismatched frame must become a typed reject, never a panic in
    // the shared worker. (`Monitor::submit` re-checks; this pre-check
    // only exists to word the reject with the expected dims.)
    if request.image.shape().dims() != monitor.input_dims() {
        let _ = out_tx.send(Frame::Reject(Reject {
            code: RejectCode::BadRequest,
            correlation_id: correlation,
            message: format!(
                "image shape {:?} does not match the model input {:?}",
                request.image.shape().dims(),
                monitor.input_dims()
            ),
        }));
        return;
    }
    match monitor.submit(request) {
        Ok(id) => {
            let mut table = state.table.lock().expect("route table poisoned");
            // The dispatcher may already have parked this verdict.
            if let Some(frame) = table.orphans.remove(&id) {
                let _ = out_tx.send(frame);
            } else if !table.closed {
                // After close() the table stays closed: registering here
                // would strand a Sender nothing ever removes. The verdict
                // (if any) was already delivered or dropped with the
                // orphan buffer — this connection is being torn down.
                table.routes.insert(id, out_tx.clone());
            }
        }
        Err(err) => {
            let code = match err {
                SubmitError::Overloaded => RejectCode::Overloaded,
                SubmitError::Closed => RejectCode::Closed,
                SubmitError::ShapeMismatch => RejectCode::BadRequest,
            };
            let _ = out_tx.send(Frame::Reject(Reject {
                code,
                correlation_id: correlation,
                message: err.to_string(),
            }));
        }
    }
}

fn writer_loop(stream: TcpStream, out_rx: &Receiver<Frame>) {
    let mut writer = BufWriter::new(stream);
    while let Ok(frame) = out_rx.recv() {
        if write_frame(&mut writer, &frame).is_err() || writer.flush().is_err() {
            break;
        }
    }
}
