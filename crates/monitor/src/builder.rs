//! The validating front door of the monitor service.

use std::sync::Arc;
use std::time::Duration;

use advhunter::{ArtifactStore, Detector, Pipeline, PipelineConfig, PipelineError};
use advhunter_exec::TraceEngine;
use advhunter_fingerprint::FingerprintConfig;
use advhunter_nn::Graph;
use advhunter_runtime::ExecOptions;

use crate::config::{FusionPolicy, MonitorConfig, MonitorConfigError, OverloadPolicy};
use crate::drift::{DetectorSource, DriftConfig, StoreDetectorSource};
use crate::service::Monitor;

/// Why a [`MonitorBuilder`] could not produce a running monitor.
#[derive(Debug)]
#[non_exhaustive]
pub enum MonitorBuildError {
    /// The assembled configuration was invalid.
    Config(MonitorConfigError),
    /// The offline pipeline failed (store I/O or detector fit) while
    /// booting from a store.
    Pipeline(PipelineError),
}

impl std::fmt::Display for MonitorBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid monitor configuration: {e}"),
            Self::Pipeline(e) => write!(f, "offline pipeline failed: {e}"),
        }
    }
}

impl std::error::Error for MonitorBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Pipeline(e) => Some(e),
        }
    }
}

impl From<MonitorConfigError> for MonitorBuildError {
    fn from(e: MonitorConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<PipelineError> for MonitorBuildError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

/// Builder for a [`Monitor`]: collects the queue shape, defense stages,
/// drift test, and hot-swap plumbing, then validates everything at once
/// when [`spawn`](Self::spawn) (or
/// [`spawn_from_store`](Self::spawn_from_store)) is called — the only
/// place a monitor can come from since 0.7.0.
///
/// ```ignore
/// let monitor = MonitorBuilder::new(ExecOptions::default())
///     .queue_capacity(256)
///     .micro_batch(32)
///     .overload(OverloadPolicy::Shed)
///     .drift(DriftConfig::default())
///     .watch_store(Duration::from_millis(50))
///     .spawn_from_store(pipeline, store)?;
/// ```
pub struct MonitorBuilder {
    config: MonitorConfig,
    source: Option<Arc<dyn DetectorSource>>,
    watch_poll: Option<Duration>,
}

impl MonitorBuilder {
    /// A builder with the default queue shape (capacity 128, micro-batch
    /// 16, blocking overload policy) over the given execution options.
    #[must_use]
    pub fn new(exec: ExecOptions) -> Self {
        Self {
            config: MonitorConfig::new(exec),
            source: None,
            watch_poll: None,
        }
    }

    /// Starts from an existing configuration instead of the defaults.
    #[must_use]
    pub fn from_config(config: MonitorConfig) -> Self {
        Self {
            config,
            source: None,
            watch_poll: None,
        }
    }

    /// Capacity of the bounded submission queue.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Maximum requests coalesced into one measurement micro-batch.
    #[must_use]
    pub fn micro_batch(mut self, micro_batch: usize) -> Self {
        self.config.micro_batch = micro_batch;
        self
    }

    /// What to do with submissions while the queue is full.
    #[must_use]
    pub fn overload(mut self, overload: OverloadPolicy) -> Self {
        self.config.overload = overload;
        self
    }

    /// Enables (or replaces) the query-fingerprint defense stage.
    #[must_use]
    pub fn fingerprint(mut self, fingerprint: FingerprintConfig) -> Self {
        self.config.fingerprint = fingerprint;
        self
    }

    /// How HPC anomaly and query correlation combine into `flagged`.
    #[must_use]
    pub fn fusion(mut self, fusion: FusionPolicy) -> Self {
        self.config.fusion = fusion;
        self
    }

    /// Enables the clean-NLL drift test. When a [`DetectorSource`] is
    /// also available (explicitly via
    /// [`detector_source`](Self::detector_source), or implicitly when
    /// spawning from a store), a firing triggers recalibration and a
    /// hot-swap at the exact next request.
    #[must_use]
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = Some(drift);
        self
    }

    /// Where replacement detectors come from (hot-swap polling and drift
    /// recalibration). [`spawn_from_store`](Self::spawn_from_store)
    /// installs a [`StoreDetectorSource`] automatically when drift or
    /// store-watching is enabled and no explicit source was given.
    #[must_use]
    pub fn detector_source(mut self, source: Arc<dyn DetectorSource>) -> Self {
        self.source = Some(source);
        self
    }

    /// Polls the detector source every `poll` for externally-deployed
    /// replacements and hot-swaps them in at micro-batch boundaries.
    #[must_use]
    pub fn watch_store(mut self, poll: Duration) -> Self {
        self.watch_poll = Some(poll);
        self
    }

    /// Validates the assembled configuration and starts the service over
    /// an explicit engine, model, and detector.
    ///
    /// # Errors
    ///
    /// [`MonitorBuildError::Config`] when the configuration is invalid;
    /// no thread is spawned in that case.
    pub fn spawn(
        self,
        engine: TraceEngine,
        model: Graph,
        detector: Detector,
    ) -> Result<Monitor, MonitorBuildError> {
        Monitor::spawn_inner(
            engine,
            model,
            detector,
            self.config,
            self.source,
            self.watch_poll,
        )
        .map_err(MonitorBuildError::Config)
    }

    /// Boots the service from the staged offline pipeline: runs (or, on a
    /// warm store, merely loads) every offline stage for `pipeline`
    /// against `store`, then spawns the monitor over the resulting
    /// engine, model, and calibrated detector.
    ///
    /// Two conveniences apply:
    ///
    /// * when the pipeline carries an enabled
    ///   [`defense`](PipelineConfig::defense) and this builder left its
    ///   own fingerprint stage disabled, the monitor adopts the
    ///   pipeline's defense — one configuration object drives the whole
    ///   deployment;
    /// * when drift tracking or store-watching is enabled and no explicit
    ///   [`detector_source`](Self::detector_source) was given, a
    ///   [`StoreDetectorSource`] over this pipeline and store is
    ///   installed, so `advhunter deploy` hot-swaps and drift firings
    ///   recalibrate with no extra wiring.
    ///
    /// # Errors
    ///
    /// [`MonitorBuildError::Pipeline`] when the offline phase fails,
    /// [`MonitorBuildError::Config`] when the configuration is invalid;
    /// no thread is spawned in either case.
    pub fn spawn_from_store(
        mut self,
        pipeline: PipelineConfig,
        store: ArtifactStore,
    ) -> Result<Monitor, MonitorBuildError> {
        if !self.config.fingerprint.is_enabled() && pipeline.defense.is_enabled() {
            self.config.fingerprint = pipeline.defense;
        }
        if self.source.is_none() && (self.config.drift.is_some() || self.watch_poll.is_some()) {
            self.source = Some(Arc::new(StoreDetectorSource::new(
                pipeline.clone(),
                store.clone(),
            )));
        }
        let (art, _report) = Pipeline::new(pipeline, store).run()?;
        Monitor::spawn_inner(
            art.engine,
            art.model,
            art.detector,
            self.config,
            self.source,
            self.watch_poll,
        )
        .map_err(MonitorBuildError::Config)
    }
}
