//! Drift detection over the clean-NLL stream, and the detector sources
//! that answer it.
//!
//! The monitor's scoring loop feeds every *clean* verdict's mean
//! per-event NLL (in admission order) into a [`DriftTracker`]: the first
//! [`DriftConfig::window`] samples establish a baseline mean/σ, after
//! which a one-sided CUSUM statistic accumulates standardized exceedances
//! — `c ← max(0, c + z − slack)` — and fires once `c > threshold`. A
//! firing yields a [`DriftObservation`] the service hands to its
//! [`DetectorSource`], which re-runs only the pipeline's `Calibrate`
//! stage against the artifact store and returns a replacement detector
//! to hot-swap. Because the tracker consumes the admission-ordered
//! verdict stream and nothing timing-dependent, drift firings — and the
//! exact request at which the swapped detector takes effect — are
//! bit-identical across thread counts and batch shapes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use advhunter::persist::detector_from_bytes;
use advhunter::store::checksum;
use advhunter::{ArtifactStore, Detector, Pipeline, PipelineConfig, Stage, StoreLoad};

/// Knobs of the clean-NLL drift test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Clean samples used to establish the baseline mean/σ (and the
    /// length of the rolling window whose mean becomes
    /// [`DriftObservation::observed_mean`]).
    pub window: usize,
    /// CUSUM slack `k`, in baseline-σ units: per-sample drift smaller
    /// than this is absorbed instead of accumulated.
    pub slack: f64,
    /// CUSUM firing threshold `h`, in accumulated-σ units.
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 64,
            slack: 0.5,
            threshold: 8.0,
        }
    }
}

impl DriftConfig {
    /// Checks the knobs for nonsense values.
    ///
    /// # Errors
    ///
    /// Returns [`DriftConfigError`] when the window is zero, the slack is
    /// negative or non-finite, or the threshold is non-positive or
    /// non-finite.
    pub fn validate(&self) -> Result<(), DriftConfigError> {
        if self.window == 0 {
            return Err(DriftConfigError::ZeroWindow);
        }
        if !self.slack.is_finite() || self.slack < 0.0 {
            return Err(DriftConfigError::BadSlack);
        }
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return Err(DriftConfigError::BadThreshold);
        }
        Ok(())
    }
}

/// An invalid [`DriftConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftConfigError {
    /// `window` was zero: no baseline could ever form.
    ZeroWindow,
    /// `slack` was negative or non-finite.
    BadSlack,
    /// `threshold` was non-positive or non-finite.
    BadThreshold,
}

impl fmt::Display for DriftConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroWindow => write!(f, "drift window must be positive"),
            Self::BadSlack => write!(f, "drift slack must be finite and non-negative"),
            Self::BadThreshold => write!(f, "drift threshold must be finite and positive"),
        }
    }
}

impl std::error::Error for DriftConfigError {}

/// What the drift test saw when it fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftObservation {
    /// Baseline mean clean NLL.
    pub baseline_mean: f64,
    /// Baseline clean-NLL standard deviation.
    pub baseline_std: f64,
    /// Mean clean NLL over the most recent window.
    pub observed_mean: f64,
    /// Clean samples consumed after the baseline before firing.
    pub samples: u64,
}

impl DriftObservation {
    /// The estimated location shift of the clean-NLL distribution —
    /// the threshold translation a compensating detector applies (see
    /// [`Detector::shifted`]).
    #[must_use]
    pub fn shift(&self) -> f64 {
        self.observed_mean - self.baseline_mean
    }
}

/// One-sided CUSUM drift test over the clean-NLL stream.
///
/// Feed it mean clean NLLs in admission order via
/// [`observe`](Self::observe); it returns `Some(observation)` exactly
/// when the test fires, then re-baselines itself (the post-swap NLL
/// distribution is new territory).
#[derive(Debug)]
pub struct DriftTracker {
    config: DriftConfig,
    baseline: Vec<f64>,
    mean: f64,
    std: f64,
    cusum: f64,
    recent: VecDeque<f64>,
    samples: u64,
}

impl DriftTracker {
    /// A tracker with no baseline yet.
    #[must_use]
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            baseline: Vec::with_capacity(config.window),
            mean: 0.0,
            std: 0.0,
            cusum: 0.0,
            recent: VecDeque::with_capacity(config.window),
            samples: 0,
        }
    }

    /// Whether the baseline window has filled.
    #[must_use]
    pub fn baseline_ready(&self) -> bool {
        self.baseline.len() >= self.config.window
    }

    /// The current CUSUM statistic (0 until the baseline is ready).
    #[must_use]
    pub fn cusum(&self) -> f64 {
        self.cusum
    }

    /// Consumes one clean-NLL sample. Non-finite samples are ignored.
    /// Returns the drift observation exactly when the test fires; the
    /// tracker then resets to collect a fresh baseline.
    pub fn observe(&mut self, nll: f64) -> Option<DriftObservation> {
        if !nll.is_finite() {
            return None;
        }
        if !self.baseline_ready() {
            self.baseline.push(nll);
            if self.baseline_ready() {
                let n = self.baseline.len() as f64;
                let mean = self.baseline.iter().sum::<f64>() / n;
                let var = self
                    .baseline
                    .iter()
                    .map(|v| (v - mean) * (v - mean))
                    .sum::<f64>()
                    / n;
                self.mean = mean;
                // σ floor: a degenerate (constant) baseline must not turn
                // every later sample into an infinite z-score.
                self.std = var.sqrt().max(1e-9);
            }
            return None;
        }
        self.recent.push_back(nll);
        if self.recent.len() > self.config.window {
            self.recent.pop_front();
        }
        self.samples += 1;
        let z = (nll - self.mean) / self.std;
        self.cusum = (self.cusum + z - self.config.slack).max(0.0);
        if self.cusum <= self.config.threshold {
            return None;
        }
        let observed_mean = self.recent.iter().sum::<f64>() / self.recent.len() as f64;
        let observation = DriftObservation {
            baseline_mean: self.mean,
            baseline_std: self.std,
            observed_mean,
            samples: self.samples,
        };
        self.baseline.clear();
        self.recent.clear();
        self.cusum = 0.0;
        self.samples = 0;
        Some(observation)
    }
}

/// Where replacement detectors come from.
///
/// Both hooks have do-nothing defaults so a source can serve only one
/// role: the store watcher calls [`poll_swap`](Self::poll_swap) on its
/// timer, the scoring loop calls [`recalibrate`](Self::recalibrate) when
/// the drift test fires.
pub trait DetectorSource: Send + Sync {
    /// A new detector to hot-swap in, if the source has one (polled by
    /// the store watcher thread).
    fn poll_swap(&self) -> Option<Detector> {
        None
    }

    /// A recalibrated detector answering a drift firing, or `None` to
    /// keep serving the current one.
    fn recalibrate(&self, observation: &DriftObservation) -> Option<Detector> {
        let _ = observation;
        None
    }
}

/// The production [`DetectorSource`]: the pipeline's content-addressed
/// artifact store.
///
/// * [`poll_swap`](DetectorSource::poll_swap) watches the `Calibrate`
///   artifact under this configuration's fingerprint; when its payload
///   digest changes (a new detector was deployed), the new bytes are
///   decoded and served.
/// * [`recalibrate`](DetectorSource::recalibrate) re-runs *only* the
///   `Calibrate` stage against the store
///   ([`Pipeline::run_calibrate_only`]) and compensates the observed
///   NLL shift via [`Detector::shifted`]. The store keeps the canonical
///   recalibrated artifact; the shift is runtime compensation only.
pub struct StoreDetectorSource {
    config: PipelineConfig,
    store: ArtifactStore,
    last_digest: Mutex<Option<u64>>,
}

impl StoreDetectorSource {
    /// A source watching `store` under `config`'s stage fingerprints.
    /// The currently stored detector (if any) counts as already deployed
    /// — only *subsequent* changes trigger a swap.
    #[must_use]
    pub fn new(config: PipelineConfig, store: ArtifactStore) -> Self {
        let source = Self {
            config,
            store,
            last_digest: Mutex::new(None),
        };
        let current = source.current_payload().map(|p| checksum(&p));
        *source
            .last_digest
            .lock()
            .expect("detector source digest poisoned") = current;
        source
    }

    fn current_payload(&self) -> Option<Vec<u8>> {
        let fp = self.config.fingerprint(Stage::Calibrate);
        match self.store.load(Stage::Calibrate.artifact_kind(), fp) {
            Ok(StoreLoad::Hit(payload)) => Some(payload),
            _ => None,
        }
    }

    fn remember_current(&self) {
        let current = self.current_payload().map(|p| checksum(&p));
        *self
            .last_digest
            .lock()
            .expect("detector source digest poisoned") = current;
    }
}

impl DetectorSource for StoreDetectorSource {
    fn poll_swap(&self) -> Option<Detector> {
        let payload = self.current_payload()?;
        let digest = checksum(&payload);
        {
            let mut last = self
                .last_digest
                .lock()
                .expect("detector source digest poisoned");
            if *last == Some(digest) {
                return None;
            }
            // Remember the digest even if decoding fails below, so a
            // corrupt deploy is logged as one failed swap attempt rather
            // than retried every poll tick.
            *last = Some(digest);
        }
        detector_from_bytes(&payload).ok()
    }

    fn recalibrate(&self, observation: &DriftObservation) -> Option<Detector> {
        let pipeline = Pipeline::new(self.config.clone(), self.store.clone());
        let (detector, _report) = pipeline.run_calibrate_only().ok()?;
        // The rerun overwrote the stored artifact; adopt its digest so
        // the watcher does not immediately re-swap the uncompensated one.
        self.remember_current();
        Some(detector.shifted(observation.shift()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_nonsense() {
        assert!(DriftConfig::default().validate().is_ok());
        let bad = DriftConfig {
            window: 0,
            ..DriftConfig::default()
        };
        assert_eq!(bad.validate(), Err(DriftConfigError::ZeroWindow));
        let bad = DriftConfig {
            slack: -0.1,
            ..DriftConfig::default()
        };
        assert_eq!(bad.validate(), Err(DriftConfigError::BadSlack));
        let bad = DriftConfig {
            threshold: 0.0,
            ..DriftConfig::default()
        };
        assert_eq!(bad.validate(), Err(DriftConfigError::BadThreshold));
    }

    #[test]
    fn stable_stream_never_fires() {
        let mut tracker = DriftTracker::new(DriftConfig {
            window: 8,
            slack: 0.5,
            threshold: 4.0,
        });
        // Alternating ±1 around 10: zero drift, bounded CUSUM.
        for i in 0..200 {
            let nll = 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(tracker.observe(nll), None, "sample {i}");
        }
        assert!(tracker.baseline_ready());
    }

    #[test]
    fn sustained_shift_fires_and_rebaselines() {
        let config = DriftConfig {
            window: 8,
            slack: 0.5,
            threshold: 4.0,
        };
        let mut tracker = DriftTracker::new(config);
        for i in 0..8 {
            let nll = 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(tracker.observe(nll), None);
        }
        // Sustained +3σ shift: fires after ~2 samples of accumulation.
        let mut fired = None;
        for i in 0..20 {
            if let Some(obs) = tracker.observe(13.0 + if i % 2 == 0 { 1.0 } else { -1.0 }) {
                fired = Some((i, obs));
                break;
            }
        }
        let (at, obs) = fired.expect("a 3σ sustained shift must fire");
        assert!(at < 8, "fired late (sample {at})");
        assert!((obs.baseline_mean - 10.0).abs() < 1e-9);
        assert!(obs.observed_mean > 12.0, "observed {}", obs.observed_mean);
        assert!(obs.shift() > 2.0);
        // The tracker re-baselines: the very next samples build a new
        // baseline instead of firing again.
        assert!(!tracker.baseline_ready());
        assert_eq!(tracker.cusum(), 0.0);
        for i in 0..8 {
            assert_eq!(
                tracker.observe(13.0 + if i % 2 == 0 { 1.0 } else { -1.0 }),
                None
            );
        }
        assert!(tracker.baseline_ready());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut tracker = DriftTracker::new(DriftConfig {
            window: 2,
            slack: 0.0,
            threshold: 1.0,
        });
        assert_eq!(tracker.observe(f64::NAN), None);
        assert_eq!(tracker.observe(f64::INFINITY), None);
        assert!(!tracker.baseline_ready());
        assert_eq!(tracker.observe(1.0), None);
        assert_eq!(tracker.observe(1.0), None);
        assert!(tracker.baseline_ready());
    }
}
