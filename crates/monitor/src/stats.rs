//! Operational counters of the monitor service.
//!
//! All counters are lock-free atomics updated by the submission and worker
//! paths; [`MonitorStats::snapshot`] reads them into a plain
//! [`StatsSnapshot`] for reporting. Telemetry is *observational* — none of
//! it feeds back into measurement or scoring, so verdicts stay
//! deterministic while latencies and depths vary run to run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters shared between the submission side and the worker.
#[derive(Debug)]
pub(crate) struct MonitorStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_queue_depth: AtomicU64,
    queued_nanos: AtomicU64,
    measure_nanos: AtomicU64,
    score_nanos: AtomicU64,
    /// Interleaved per-class `[screened, flagged]` pairs; the final pair
    /// collects predictions outside the detector's modelled range.
    per_class: Vec<[AtomicU64; 2]>,
}

impl MonitorStats {
    pub(crate) fn new(num_classes: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            queued_nanos: AtomicU64::new(0),
            measure_nanos: AtomicU64::new(0),
            score_nanos: AtomicU64::new(0),
            per_class: (0..=num_classes)
                .map(|_| [AtomicU64::new(0), AtomicU64::new(0)])
                .collect(),
        }
    }

    pub(crate) fn record_submitted(&self, depth_after: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(depth_after as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, measure: Duration, score: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.measure_nanos
            .fetch_add(measure.as_nanos() as u64, Ordering::Relaxed);
        self.score_nanos
            .fetch_add(score.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_verdict(&self, predicted: usize, flagged: bool, queued: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queued_nanos
            .fetch_add(queued.as_nanos() as u64, Ordering::Relaxed);
        let slot = self.per_class.get(predicted).unwrap_or(
            self.per_class
                .last()
                .expect("per_class always has an overflow slot"),
        );
        slot[0].fetch_add(1, Ordering::Relaxed);
        if flagged {
            slot[1].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            queued: Duration::from_nanos(self.queued_nanos.load(Ordering::Relaxed)),
            measure: Duration::from_nanos(self.measure_nanos.load(Ordering::Relaxed)),
            score: Duration::from_nanos(self.score_nanos.load(Ordering::Relaxed)),
            per_class: self
                .per_class
                .iter()
                .map(|slot| ClassFlagStats {
                    screened: slot[0].load(Ordering::Relaxed),
                    flagged: slot[1].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Per-predicted-class screening counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassFlagStats {
    /// Verdicts produced for this predicted class.
    pub screened: u64,
    /// How many of them were flagged adversarial (by the monitor's
    /// configured fusion rule).
    pub flagged: u64,
}

impl ClassFlagStats {
    /// Fraction of screened inferences that were flagged (0 when none
    /// were screened).
    pub fn flag_rate(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.flagged as f64 / self.screened as f64
        }
    }
}

/// A point-in-time copy of the monitor's operational counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Verdicts produced.
    pub completed: u64,
    /// Submissions rejected under the shed policy.
    pub shed: u64,
    /// Micro-batches processed.
    pub batches: u64,
    /// Highest queue depth observed at any admission.
    pub max_queue_depth: u64,
    /// Total time completed requests spent queued before measurement.
    pub queued: Duration,
    /// Total wall time of the measurement stage across batches.
    pub measure: Duration,
    /// Total wall time of the scoring stage across batches.
    pub score: Duration,
    /// Per-predicted-class screening counts; the final entry collects
    /// predictions outside the detector's modelled classes.
    pub per_class: Vec<ClassFlagStats>,
}

impl StatsSnapshot {
    /// Mean queued time per completed request.
    pub fn mean_queued(&self) -> Duration {
        checked_div(self.queued, self.completed)
    }

    /// Mean measurement-stage time per micro-batch.
    pub fn mean_measure_per_batch(&self) -> Duration {
        checked_div(self.measure, self.batches)
    }

    /// Mean scoring-stage time per micro-batch.
    pub fn mean_score_per_batch(&self) -> Duration {
        checked_div(self.score, self.batches)
    }
}

fn checked_div(total: Duration, n: u64) -> Duration {
    if n == 0 {
        Duration::ZERO
    } else {
        total / n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let stats = MonitorStats::new(2);
        stats.record_submitted(1);
        stats.record_submitted(3);
        stats.record_shed();
        stats.record_batch(Duration::from_millis(4), Duration::from_millis(1));
        stats.record_verdict(0, true, Duration::from_millis(2));
        stats.record_verdict(1, false, Duration::from_millis(2));
        stats.record_verdict(9, true, Duration::from_millis(2)); // overflow slot
        let s = stats.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.completed, 3);
        assert_eq!(s.batches, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.per_class.len(), 3);
        assert_eq!(
            s.per_class[0],
            ClassFlagStats {
                screened: 1,
                flagged: 1
            }
        );
        assert_eq!(
            s.per_class[1],
            ClassFlagStats {
                screened: 1,
                flagged: 0
            }
        );
        assert_eq!(
            s.per_class[2],
            ClassFlagStats {
                screened: 1,
                flagged: 1
            }
        );
        assert!((s.per_class[0].flag_rate() - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_queued(), Duration::from_millis(2));
        assert_eq!(s.mean_measure_per_batch(), Duration::from_millis(4));
    }

    #[test]
    fn empty_snapshot_divides_safely() {
        let s = MonitorStats::new(1).snapshot();
        assert_eq!(s.mean_queued(), Duration::ZERO);
        assert_eq!(s.mean_measure_per_batch(), Duration::ZERO);
        assert_eq!(s.mean_score_per_batch(), Duration::ZERO);
        assert_eq!(
            ClassFlagStats {
                screened: 0,
                flagged: 0
            }
            .flag_rate(),
            0.0
        );
    }
}
