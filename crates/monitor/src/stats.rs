//! Operational counters of the monitor service, backed by the
//! `advhunter-telemetry` registry.
//!
//! Every counter, gauge, and latency histogram lives in a per-monitor
//! [`Registry`], so the same numbers are available two ways: as the plain
//! [`StatsSnapshot`] struct (the stable programmatic surface) and as a
//! telemetry [`Snapshot`](advhunter_telemetry::Snapshot) renderable to
//! Prometheus text or JSON via [`Monitor::metrics_snapshot`]. Telemetry is
//! *observational* — none of it feeds back into measurement or scoring, so
//! verdicts stay deterministic while latencies and depths vary run to run.
//!
//! [`Monitor::metrics_snapshot`]: crate::Monitor::metrics_snapshot

use std::sync::Arc;
use std::time::Duration;

use advhunter_fingerprint::MatchReport;
use advhunter_telemetry::{Counter, Gauge, Histogram, Registry};

/// Live counters shared between the submission side and the worker, all
/// registered in a per-monitor registry.
#[derive(Debug)]
pub(crate) struct MonitorStats {
    registry: Registry,
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    shed: Arc<Counter>,
    blocked: Arc<Counter>,
    drained: Arc<Counter>,
    batches: Arc<Counter>,
    detector_swaps: Arc<Counter>,
    drift_events: Arc<Counter>,
    config_epoch: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    queued_ns: Arc<Histogram>,
    measure_ns: Arc<Histogram>,
    score_ns: Arc<Histogram>,
    fingerprint_ns: Arc<Histogram>,
    fingerprint_matched: Arc<Counter>,
    fingerprint_shed: Arc<Counter>,
    verdict_latency_ns: Arc<Histogram>,
    /// Per-class `[screened, flagged]` counter pairs; the final pair
    /// collects predictions outside the detector's modelled range.
    per_class: Vec<[Arc<Counter>; 2]>,
}

impl MonitorStats {
    pub(crate) fn new(num_classes: usize) -> Self {
        let registry = Registry::new();
        let per_class = (0..=num_classes)
            .map(|i| {
                let label = if i < num_classes {
                    i.to_string()
                } else {
                    "other".to_string()
                };
                [
                    registry.counter(
                        &format!("advhunter_monitor_class_{label}_screened_total"),
                        "Verdicts produced for this predicted class",
                    ),
                    registry.counter(
                        &format!("advhunter_monitor_class_{label}_flagged_total"),
                        "Verdicts flagged adversarial for this predicted class",
                    ),
                ]
            })
            .collect();
        Self {
            submitted: registry.counter(
                "advhunter_monitor_submitted_total",
                "Requests admitted into the queue",
            ),
            completed: registry.counter("advhunter_monitor_completed_total", "Verdicts produced"),
            shed: registry.counter(
                "advhunter_monitor_shed_total",
                "Submissions rejected under the shed overload policy",
            ),
            blocked: registry.counter(
                "advhunter_monitor_blocked_total",
                "Submissions that parked on a full queue under the block policy",
            ),
            drained: registry.counter(
                "advhunter_monitor_drained_total",
                "Requests still queued at close time, measured and delivered during shutdown",
            ),
            batches: registry.counter("advhunter_monitor_batches_total", "Micro-batches processed"),
            detector_swaps: registry.counter(
                "advhunter_monitor_detector_swaps_total",
                "Zero-downtime detector hot-swaps performed",
            ),
            drift_events: registry.counter(
                "advhunter_monitor_drift_events_total",
                "Clean-NLL drift-test firings",
            ),
            config_epoch: registry.gauge(
                "advhunter_monitor_config_epoch",
                "Monotonic detector epoch (bumps on every hot-swap)",
            ),
            queue_depth: registry.gauge(
                "advhunter_monitor_queue_depth",
                "Queue occupancy (level at last admission/drain; _max is the high watermark)",
            ),
            batch_size: registry.histogram(
                "advhunter_monitor_batch_size",
                "Requests coalesced into one micro-batch",
            ),
            queued_ns: registry.histogram(
                "advhunter_monitor_queued_ns",
                "Time a request spent queued before its micro-batch started measuring",
            ),
            measure_ns: registry.histogram(
                "advhunter_monitor_measure_ns",
                "Wall time of the measurement stage per micro-batch",
            ),
            score_ns: registry.histogram(
                "advhunter_monitor_score_ns",
                "Wall time of the scoring stage per micro-batch",
            ),
            fingerprint_ns: registry.histogram(
                "advhunter_monitor_fingerprint_ns",
                "Wall time of the query-fingerprint stage per micro-batch",
            ),
            fingerprint_matched: registry.counter(
                "advhunter_monitor_fingerprint_matched_total",
                "Verdicts whose query correlated with the tenant's recent history",
            ),
            fingerprint_shed: registry.counter(
                "advhunter_monitor_fingerprint_shed_total",
                "Verdicts degraded to HPC-only because the store shed the tenant",
            ),
            verdict_latency_ns: registry.histogram(
                "advhunter_monitor_verdict_latency_ns",
                "End-to-end time from admission to verdict delivery per request",
            ),
            per_class,
            registry,
        }
    }

    pub(crate) fn record_submitted(&self, depth_after: usize) {
        self.submitted.inc();
        self.queue_depth.set(depth_after as u64);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.inc();
    }

    pub(crate) fn record_blocked(&self) {
        self.blocked.inc();
    }

    pub(crate) fn record_drained(&self, backlog: usize) {
        self.drained.add(backlog as u64);
    }

    pub(crate) fn record_swap(&self, epoch: u64) {
        self.detector_swaps.inc();
        self.config_epoch.set(epoch);
    }

    pub(crate) fn record_drift(&self) {
        self.drift_events.inc();
    }

    pub(crate) fn record_drain(&self, batch_size: usize, depth_after: usize) {
        self.batch_size.record(batch_size as u64);
        self.queue_depth.set(depth_after as u64);
    }

    pub(crate) fn record_batch(&self, measure: Duration, score: Duration) {
        self.batches.inc();
        self.measure_ns.record_duration(measure);
        self.score_ns.record_duration(score);
    }

    pub(crate) fn record_fingerprint_stage(&self, elapsed: Duration) {
        self.fingerprint_ns.record_duration(elapsed);
    }

    pub(crate) fn record_fingerprint_report(&self, report: &MatchReport) {
        if report.matched {
            self.fingerprint_matched.inc();
        }
        if report.shed {
            self.fingerprint_shed.inc();
        }
    }

    pub(crate) fn record_verdict(
        &self,
        predicted: usize,
        flagged: bool,
        queued: Duration,
        latency: Duration,
    ) {
        self.completed.inc();
        self.queued_ns.record_duration(queued);
        self.verdict_latency_ns.record_duration(latency);
        let slot = self.per_class.get(predicted).unwrap_or(
            self.per_class
                .last()
                .expect("per_class always has an overflow slot"),
        );
        slot[0].inc();
        if flagged {
            slot[1].inc();
        }
    }

    /// A telemetry snapshot of this monitor's private registry.
    pub(crate) fn registry_snapshot(&self) -> advhunter_telemetry::Snapshot {
        self.registry.snapshot()
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            shed: self.shed.get(),
            blocked: self.blocked.get(),
            drained: self.drained.get(),
            batches: self.batches.get(),
            detector_swaps: self.detector_swaps.get(),
            drift_events: self.drift_events.get(),
            config_epoch: self.config_epoch.get(),
            max_queue_depth: self.queue_depth.max(),
            queued: Duration::from_nanos(self.queued_ns.snapshot().sum),
            measure: Duration::from_nanos(self.measure_ns.snapshot().sum),
            score: Duration::from_nanos(self.score_ns.snapshot().sum),
            fingerprint: Duration::from_nanos(self.fingerprint_ns.snapshot().sum),
            fingerprint_matched: self.fingerprint_matched.get(),
            fingerprint_shed: self.fingerprint_shed.get(),
            per_class: self
                .per_class
                .iter()
                .map(|slot| ClassFlagStats {
                    screened: slot[0].get(),
                    flagged: slot[1].get(),
                })
                .collect(),
        }
    }
}

/// Per-predicted-class screening counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassFlagStats {
    /// Verdicts produced for this predicted class.
    pub screened: u64,
    /// How many of them were flagged adversarial (by the monitor's
    /// configured fusion rule).
    pub flagged: u64,
}

impl ClassFlagStats {
    /// Fraction of screened inferences that were flagged (0 when none
    /// were screened).
    pub fn flag_rate(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.flagged as f64 / self.screened as f64
        }
    }
}

/// A point-in-time copy of the monitor's operational counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Verdicts produced.
    pub completed: u64,
    /// Submissions rejected under the shed policy.
    pub shed: u64,
    /// Submissions that parked on a full queue under the block policy
    /// (they were eventually admitted and are also counted in
    /// `submitted`).
    pub blocked: u64,
    /// Requests that were still queued when the monitor closed and were
    /// measured and delivered during the shutdown drain (also counted in
    /// `completed`) — graceful shutdown never silently drops an admitted
    /// request.
    pub drained: u64,
    /// Micro-batches processed.
    pub batches: u64,
    /// Detector hot-swaps performed (store watcher, explicit
    /// [`swap_detector`](crate::Monitor::swap_detector), or drift
    /// recalibration).
    pub detector_swaps: u64,
    /// Clean-NLL drift-test firings.
    pub drift_events: u64,
    /// Current detector epoch (0 until the first hot-swap).
    pub config_epoch: u64,
    /// Highest queue depth observed at any admission.
    pub max_queue_depth: u64,
    /// Total time completed requests spent queued before measurement.
    pub queued: Duration,
    /// Total wall time of the measurement stage across batches.
    pub measure: Duration,
    /// Total wall time of the scoring stage across batches.
    pub score: Duration,
    /// Total wall time of the query-fingerprint stage across batches
    /// (zero while the stage is disabled).
    pub fingerprint: Duration,
    /// Verdicts whose query correlated with the tenant's recent history.
    pub fingerprint_matched: u64,
    /// Verdicts degraded to HPC-only because the store shed the tenant.
    pub fingerprint_shed: u64,
    /// Per-predicted-class screening counts; the final entry collects
    /// predictions outside the detector's modelled classes.
    pub per_class: Vec<ClassFlagStats>,
}

impl StatsSnapshot {
    /// Mean queued time per completed request.
    pub fn mean_queued(&self) -> Duration {
        checked_div(self.queued, self.completed)
    }

    /// Mean measurement-stage time per micro-batch.
    pub fn mean_measure_per_batch(&self) -> Duration {
        checked_div(self.measure, self.batches)
    }

    /// Mean scoring-stage time per micro-batch.
    pub fn mean_score_per_batch(&self) -> Duration {
        checked_div(self.score, self.batches)
    }
}

fn checked_div(total: Duration, n: u64) -> Duration {
    if n == 0 {
        Duration::ZERO
    } else {
        total / n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let stats = MonitorStats::new(2);
        stats.record_submitted(1);
        stats.record_submitted(3);
        stats.record_shed();
        stats.record_blocked();
        stats.record_drain(3, 0);
        stats.record_batch(Duration::from_millis(4), Duration::from_millis(1));
        let q = Duration::from_millis(2);
        let lat = Duration::from_millis(5);
        stats.record_verdict(0, true, q, lat);
        stats.record_verdict(1, false, q, lat);
        stats.record_verdict(9, true, q, lat); // overflow slot
        let s = stats.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.blocked, 1);
        assert_eq!(s.completed, 3);
        assert_eq!(s.batches, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.per_class.len(), 3);
        assert_eq!(
            s.per_class[0],
            ClassFlagStats {
                screened: 1,
                flagged: 1
            }
        );
        assert_eq!(
            s.per_class[1],
            ClassFlagStats {
                screened: 1,
                flagged: 0
            }
        );
        assert_eq!(
            s.per_class[2],
            ClassFlagStats {
                screened: 1,
                flagged: 1
            }
        );
        assert!((s.per_class[0].flag_rate() - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_queued(), Duration::from_millis(2));
        assert_eq!(s.mean_measure_per_batch(), Duration::from_millis(4));
    }

    #[test]
    fn registry_snapshot_mirrors_the_struct() {
        let stats = MonitorStats::new(1);
        stats.record_submitted(2);
        stats.record_shed();
        stats.record_drain(2, 0);
        stats.record_verdict(0, true, Duration::from_micros(3), Duration::from_micros(9));
        let r = stats.registry_snapshot();
        assert_eq!(r.counter("advhunter_monitor_submitted_total"), Some(1));
        assert_eq!(r.counter("advhunter_monitor_shed_total"), Some(1));
        assert_eq!(r.counter("advhunter_monitor_blocked_total"), Some(0));
        assert_eq!(r.gauge("advhunter_monitor_queue_depth"), Some((0, 2)));
        assert_eq!(
            r.counter("advhunter_monitor_class_0_screened_total"),
            Some(1)
        );
        assert_eq!(
            r.counter("advhunter_monitor_class_other_screened_total"),
            Some(0)
        );
        let lat = r.histogram("advhunter_monitor_verdict_latency_ns").unwrap();
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, 9_000);
        assert_eq!(
            r.histogram("advhunter_monitor_batch_size").unwrap().sum,
            2,
            "batch-size histogram sums coalesced requests"
        );
    }

    #[test]
    fn fingerprint_counters_accumulate() {
        let stats = MonitorStats::new(1);
        stats.record_fingerprint_stage(Duration::from_micros(7));
        let matched = MatchReport {
            score: 1.0,
            best_overlap: 8,
            probes: 8,
            window_len: 3,
            matched: true,
            shed: false,
        };
        let shed = MatchReport {
            score: 0.0,
            best_overlap: 0,
            probes: 0,
            window_len: 0,
            matched: false,
            shed: true,
        };
        stats.record_fingerprint_report(&matched);
        stats.record_fingerprint_report(&shed);
        let s = stats.snapshot();
        assert_eq!(s.fingerprint, Duration::from_micros(7));
        assert_eq!(s.fingerprint_matched, 1);
        assert_eq!(s.fingerprint_shed, 1);
        let r = stats.registry_snapshot();
        assert_eq!(
            r.counter("advhunter_monitor_fingerprint_matched_total"),
            Some(1)
        );
        assert_eq!(
            r.counter("advhunter_monitor_fingerprint_shed_total"),
            Some(1)
        );
    }

    #[test]
    fn serving_counters_accumulate() {
        let stats = MonitorStats::new(1);
        stats.record_drained(3);
        stats.record_swap(1);
        stats.record_swap(2);
        stats.record_drift();
        let s = stats.snapshot();
        assert_eq!(s.drained, 3);
        assert_eq!(s.detector_swaps, 2);
        assert_eq!(s.drift_events, 1);
        assert_eq!(s.config_epoch, 2);
        let r = stats.registry_snapshot();
        assert_eq!(r.counter("advhunter_monitor_drained_total"), Some(3));
        assert_eq!(r.counter("advhunter_monitor_detector_swaps_total"), Some(2));
        assert_eq!(r.counter("advhunter_monitor_drift_events_total"), Some(1));
        assert_eq!(r.gauge("advhunter_monitor_config_epoch"), Some((2, 2)));
    }

    #[test]
    fn empty_snapshot_divides_safely() {
        let s = MonitorStats::new(1).snapshot();
        assert_eq!(s.mean_queued(), Duration::ZERO);
        assert_eq!(s.mean_measure_per_batch(), Duration::ZERO);
        assert_eq!(s.mean_score_per_batch(), Duration::ZERO);
        assert_eq!(
            ClassFlagStats {
                screened: 0,
                flagged: 0
            }
            .flag_rate(),
            0.0
        );
    }
}
