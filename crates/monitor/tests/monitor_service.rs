//! Service-level tests: determinism of the verdict stream across thread
//! counts and submission batchings, and graceful behavior under overload.

use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate, Verdict};
use advhunter_exec::TraceEngine;
use advhunter_monitor::{
    MonitorBuildError, MonitorBuilder, MonitorConfigError, MonitorRequest, OverloadPolicy,
    SubmitError,
};
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny 2-class CNN plus a detector fitted on a toy validation split.
/// Everything is seeded, so repeated calls build bit-identical fixtures —
/// the property the cross-monitor determinism tests rely on.
fn fixture() -> (Graph, TraceEngine, Detector, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new(&[1, 6, 6]);
    let input = b.input();
    let c = b.conv2d("c", input, 4, 3, 1, 1, &mut rng);
    let r = b.relu("r", c);
    let g = b.global_avgpool("g", r);
    b.linear("fc", g, 2, &mut rng);
    let model = b.build();
    let engine = TraceEngine::new(&model);

    // An untrained model predicts mostly one class, so group validation
    // measurements by true label instead of going through the
    // prediction-filtered `collect_template` path.
    let mut images = Vec::new();
    for _ in 0..40 {
        images.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    let opts = ExecOptions::sequential(7);
    let measurements = engine.measure_batch(&model, &images, opts.seed, &opts.parallelism);
    let mut per_class = vec![Vec::new(); 2];
    for (i, m) in measurements.iter().enumerate() {
        per_class[i % 2].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1)).unwrap();

    let mut stream = Vec::new();
    for _ in 0..12 {
        stream.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    (model, engine, detector, stream)
}

/// Runs `stream` through a fresh monitor with the given thread count and
/// micro-batch size, submitting everything up front, and returns the
/// deterministic part of each outcome.
fn run_stream(stream: &[Tensor], threads: usize, micro_batch: usize) -> Vec<(u64, Verdict, bool)> {
    let (model, engine, detector, _) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(threads))
        .queue_capacity(stream.len().max(1))
        .micro_batch(micro_batch)
        .spawn(engine, model, detector)
        .unwrap();
    for image in stream {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    let mut out = Vec::new();
    while let Some(v) = monitor.recv() {
        out.push((v.request_id, v.verdict, v.flagged));
    }
    out
}

#[test]
fn verdict_stream_is_thread_count_invariant() {
    let (_, _, _, stream) = fixture();
    let baseline = run_stream(&stream, 1, 4);
    assert_eq!(baseline.len(), stream.len());
    for threads in [2, 4] {
        let par = run_stream(&stream, threads, 4);
        assert_eq!(baseline, par, "thread count {threads} changed verdicts");
    }
}

#[test]
fn verdict_stream_is_invariant_to_micro_batch_size() {
    let (_, _, _, stream) = fixture();
    let baseline = run_stream(&stream, 2, 1);
    for micro_batch in [3, 5, 64] {
        let other = run_stream(&stream, 2, micro_batch);
        assert_eq!(
            baseline, other,
            "micro-batch size {micro_batch} changed verdicts"
        );
    }
}

#[test]
fn verdict_stream_is_invariant_to_submission_batching() {
    let (model, engine, detector, stream) = fixture();
    let all_at_once = run_stream(&stream, 2, 4);

    // Same images trickled in one by one, with every verdict consumed
    // before the next submission — maximally different arrival pattern.
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(2))
        .queue_capacity(1)
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    let mut trickled = Vec::new();
    for image in &stream {
        monitor.submit(image.clone()).unwrap();
        let v = monitor.recv().unwrap();
        trickled.push((v.request_id, v.verdict, v.flagged));
    }
    monitor.close();
    assert!(monitor.recv().is_none());
    assert_eq!(all_at_once, trickled);
}

#[test]
fn env_thread_override_does_not_change_verdicts() {
    let (_, _, _, stream) = fixture();
    let baseline = run_stream(&stream, 1, 4);
    std::env::set_var("ADVHUNTER_THREADS", "3");
    // ExecOptions::seeded picks up the env-driven parallelism.
    let (model, engine, detector, _) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42))
        .queue_capacity(stream.len())
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    std::env::remove_var("ADVHUNTER_THREADS");
    for image in &stream {
        monitor.submit(image.clone()).unwrap();
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.completed, stream.len() as u64);
    let replay = run_stream(&stream, 3, 4);
    assert_eq!(baseline, replay);
}

#[test]
fn mismatched_shape_is_refused_before_admission() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(3))
        .micro_batch(2)
        .spawn(engine, model, detector)
        .unwrap();
    assert_eq!(monitor.input_dims(), &[1, 6, 6]);
    // Wrong dims, wrong rank, and a zero-sized tensor: none may reach
    // the worker (whose engine asserts the model input shape).
    for dims in [&[2usize, 6, 6][..], &[36], &[1, 6, 0]] {
        assert_eq!(
            monitor.submit(Tensor::zeros(dims)),
            Err(SubmitError::ShapeMismatch)
        );
        assert_eq!(
            monitor.submit(MonitorRequest::new(Tensor::zeros(dims)).tenant(3)),
            Err(SubmitError::ShapeMismatch)
        );
    }
    // Nothing was admitted, and the worker is still alive for valid work.
    monitor.submit(stream[0].clone()).unwrap();
    assert!(monitor.recv().is_some());
    let stats = monitor.shutdown();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn shed_policy_rejects_when_full_and_recovers() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(1))
        .queue_capacity(4)
        .micro_batch(2)
        .overload(OverloadPolicy::Shed)
        .spawn(engine, model, detector)
        .unwrap();

    // Hold the worker so the queue fills deterministically.
    monitor.pause();
    for image in stream.iter().take(4) {
        monitor.submit(image.clone()).unwrap();
    }
    assert_eq!(monitor.queue_depth(), 4);
    assert_eq!(
        monitor.submit(stream[4].clone()),
        Err(SubmitError::Overloaded)
    );
    assert_eq!(
        monitor.submit(stream[5].clone()),
        Err(SubmitError::Overloaded)
    );
    monitor.resume();

    // The shed requests are gone; the four admitted ones all complete.
    let mut ids = Vec::new();
    for _ in 0..4 {
        ids.push(monitor.recv().unwrap().request_id);
    }
    assert_eq!(ids, vec![0, 1, 2, 3]);
    let stats = monitor.shutdown();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.blocked, 0, "the shed policy never parks a submitter");
    assert_eq!(stats.max_queue_depth, 4);
}

#[test]
fn block_policy_admits_everything_without_shedding() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(1))
        .queue_capacity(2)
        .micro_batch(2)
        .overload(OverloadPolicy::Block)
        .spawn(engine, model, detector)
        .unwrap();
    // Submissions outnumber the queue capacity several times over; the
    // blocking policy parks the submitter instead of shedding.
    for image in &stream {
        monitor.submit(image.clone()).unwrap();
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.submitted, stream.len() as u64);
    assert_eq!(stats.completed, stream.len() as u64);
    assert_eq!(stats.shed, 0);
    assert!(stats.max_queue_depth <= 2);
}

#[test]
fn block_policy_counts_parked_submissions() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (model, engine, detector, stream) = fixture();
    let monitor = Arc::new(
        MonitorBuilder::new(ExecOptions::sequential(1))
            .queue_capacity(2)
            .micro_batch(2)
            .overload(OverloadPolicy::Block)
            .spawn(engine, model, detector)
            .unwrap(),
    );

    // Hold the worker and fill the queue, so the next submission must park.
    monitor.pause();
    monitor.submit(stream[0].clone()).unwrap();
    monitor.submit(stream[1].clone()).unwrap();
    assert_eq!(monitor.queue_depth(), 2);

    let started = Arc::new(AtomicBool::new(false));
    let (m2, s2, image) = (
        Arc::clone(&monitor),
        Arc::clone(&started),
        stream[2].clone(),
    );
    let submitter = std::thread::spawn(move || {
        s2.store(true, Ordering::SeqCst);
        m2.submit(image)
    });
    // Give the submitter a grace period to park on the full queue before
    // releasing the worker.
    while !started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(50));
    monitor.resume();
    assert_eq!(submitter.join().unwrap(), Ok(2));

    for _ in 0..3 {
        monitor.recv().unwrap();
    }
    let stats = Arc::into_inner(monitor).unwrap().shutdown();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.shed, 0, "the block policy never sheds");
    assert_eq!(stats.blocked, 1, "exactly one submission parked");
}

#[test]
fn metrics_snapshot_unifies_monitor_engine_and_pool_families() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(3).with_threads(2))
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    for image in &stream {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    while monitor.recv().is_some() {}

    let snapshot = monitor.metrics_snapshot();
    // Monitor-private families.
    assert_eq!(
        snapshot.counter("advhunter_monitor_completed_total"),
        Some(stream.len() as u64)
    );
    assert_eq!(snapshot.counter("advhunter_monitor_shed_total"), Some(0));
    assert_eq!(snapshot.counter("advhunter_monitor_blocked_total"), Some(0));
    let (_, max_depth) = snapshot.gauge("advhunter_monitor_queue_depth").unwrap();
    assert!(max_depth >= 1);
    let batch_sizes = snapshot.histogram("advhunter_monitor_batch_size").unwrap();
    assert_eq!(batch_sizes.sum, stream.len() as u64);
    let latency = snapshot
        .histogram("advhunter_monitor_verdict_latency_ns")
        .unwrap();
    assert_eq!(latency.count, stream.len() as u64);
    // Process-global families merged in: the engine measured this stream
    // (plus whatever other tests in this process ran) and the pool ran it.
    assert!(
        snapshot
            .counter("advhunter_exec_measurements_total")
            .unwrap()
            >= stream.len() as u64,
        "engine measurement counter missing or too small"
    );
    assert!(
        snapshot
            .counter("advhunter_exec_event_instructions_total")
            .unwrap()
            > 0
    );
    assert!(snapshot.counter("advhunter_runtime_tasks_total").unwrap() >= stream.len() as u64);

    // Both renderings carry the same families.
    let text = snapshot.render_prometheus();
    assert!(text.contains("# TYPE advhunter_monitor_completed_total counter"));
    assert!(text.contains("# TYPE advhunter_monitor_verdict_latency_ns histogram"));
    let json = snapshot.render_json();
    assert!(json.contains("\"name\": \"advhunter_monitor_completed_total\""));
    assert!(json.contains("\"name\": \"advhunter_exec_measurements_total\""));
}

#[test]
fn close_ends_the_stream_and_rejects_new_work() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(5))
        .micro_batch(3)
        .spawn(engine, model, detector)
        .unwrap();
    for image in stream.iter().take(5) {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    assert_eq!(monitor.submit(stream[5].clone()), Err(SubmitError::Closed));
    let mut count = 0;
    while let Some(v) = monitor.recv() {
        assert_eq!(v.request_id, count);
        count += 1;
    }
    assert_eq!(count, 5);
    assert!(monitor.try_recv().is_none());
}

#[test]
fn telemetry_and_stats_describe_the_run() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(9).with_threads(2))
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    for image in &stream {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    let mut flagged_total = 0u64;
    while let Some(v) = monitor.recv() {
        assert!(v.telemetry.batch_size >= 1 && v.telemetry.batch_size <= 4);
        assert!(v.telemetry.depth_at_admission >= 1);
        assert_eq!(v.flagged, v.verdict.flagged_any());
        flagged_total += u64::from(v.flagged);
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.completed, stream.len() as u64);
    assert!(stats.batches >= (stream.len() as u64).div_ceil(4));
    let screened: u64 = stats.per_class.iter().map(|c| c.screened).sum();
    let flagged: u64 = stats.per_class.iter().map(|c| c.flagged).sum();
    assert_eq!(screened, stats.completed);
    assert_eq!(flagged, flagged_total);
}

#[test]
fn spawn_rejects_invalid_configs() {
    let (model, engine, detector, _) = fixture();
    let err = MonitorBuilder::new(ExecOptions::default())
        .queue_capacity(0)
        .spawn(engine, model, detector)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(
        err,
        MonitorBuildError::Config(MonitorConfigError::ZeroQueueCapacity)
    ));
}

#[test]
fn monitor_request_carries_tenant_and_correlation() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(11))
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    monitor.submit(stream[0].clone()).unwrap();
    monitor
        .submit(
            MonitorRequest::new(stream[1].clone())
                .tenant(7)
                .request_id(0xBEEF),
        )
        .unwrap();
    monitor.close();
    let first = monitor.recv().unwrap();
    assert_eq!(first.request_id, 0);
    assert_eq!(first.correlation_id, None);
    assert_eq!(first.config_epoch, 0, "no swap happened");
    let second = monitor.recv().unwrap();
    assert_eq!(second.request_id, 1);
    assert_eq!(second.tenant, 7);
    assert_eq!(second.correlation_id, Some(0xBEEF));
    assert!(monitor.recv().is_none());
}
