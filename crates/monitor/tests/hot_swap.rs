//! Hot-swap, drift-driven recalibration, and graceful-drain guarantees:
//! detector replacement under load never drops a request, every verdict
//! is stamped with the epoch it was scored under, a firing drift test
//! pulls a recalibrated detector from the source at the exact next
//! request, and the store watcher picks up externally deployed
//! detectors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use advhunter::scenario::ScenarioId;
use advhunter::{
    ArtifactStore, Detector, DetectorConfig, ExecOptions, OfflineTemplate, Pipeline, PipelineConfig,
};
use advhunter_data::SplitSizes;
use advhunter_exec::TraceEngine;
use advhunter_monitor::{
    DetectorSource, DriftConfig, DriftObservation, MonitorBuilder, MonitorRequest,
};
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded tiny-CNN fixture (same recipe as the service tests). The
/// detector's thresholds are lifted by `threshold_lift` so tests can
/// force every verdict to be unflagged (the drift tracker only ingests
/// clean verdicts).
fn fixture(threshold_lift: f64) -> (Graph, TraceEngine, Detector, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new(&[1, 6, 6]);
    let input = b.input();
    let c = b.conv2d("c", input, 4, 3, 1, 1, &mut rng);
    let r = b.relu("r", c);
    let g = b.global_avgpool("g", r);
    b.linear("fc", g, 2, &mut rng);
    let model = b.build();
    let engine = TraceEngine::new(&model);

    let mut images = Vec::new();
    for _ in 0..40 {
        images.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    let opts = ExecOptions::sequential(7);
    let measurements = engine.measure_batch(&model, &images, opts.seed, &opts.parallelism);
    let mut per_class = vec![Vec::new(); 2];
    for (i, m) in measurements.iter().enumerate() {
        per_class[i % 2].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))
        .unwrap()
        .shifted(threshold_lift);

    let mut stream = Vec::new();
    for _ in 0..18 {
        stream.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    (model, engine, detector, stream)
}

/// An external swap lands at a micro-batch boundary, every verdict is
/// stamped with the epoch that scored it, and nothing is dropped.
#[test]
fn swap_under_load_drops_nothing_and_stamps_epochs() {
    let (model, engine, detector, stream) = fixture(0.0);
    let replacement = detector.shifted(1000.0);
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(2))
        .queue_capacity(stream.len())
        .micro_batch(3)
        .spawn(engine, model, detector)
        .unwrap();

    // First half under epoch 0.
    let half = stream.len() / 2;
    for image in &stream[..half] {
        monitor.submit(image.clone()).unwrap();
    }
    let mut first = Vec::new();
    for _ in 0..half {
        first.push(monitor.recv().unwrap());
    }
    // Swap while the queue is briefly empty, then load the second half.
    assert_eq!(monitor.swap_detector(replacement), 1);
    assert_eq!(monitor.config_epoch(), 1);
    for image in &stream[half..] {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    let mut second = Vec::new();
    while let Some(v) = monitor.recv() {
        second.push(v);
    }

    assert_eq!(
        first.len() + second.len(),
        stream.len(),
        "no request dropped"
    );
    for v in &first {
        assert_eq!(v.config_epoch, 0, "pre-swap verdict stamped wrong epoch");
    }
    for v in &second {
        assert_eq!(v.config_epoch, 1, "post-swap verdict stamped wrong epoch");
        // The replacement's thresholds sit 1000 NLL higher: nothing the
        // swapped-in detector scores can flag.
        assert!(
            !v.flagged,
            "post-swap verdict flagged despite lifted thresholds"
        );
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.completed, stream.len() as u64);
    assert_eq!(stats.detector_swaps, 1);
    assert_eq!(stats.config_epoch, 1);
    assert_eq!(stats.drift_events, 0);
    assert_eq!(stats.shed, 0);
}

/// A [`DetectorSource`] stub that counts recalibration calls and serves
/// a canned replacement.
struct StubSource {
    replacement: Mutex<Option<Detector>>,
    recalibrations: AtomicU64,
    last_shift: Mutex<Option<f64>>,
}

impl DetectorSource for StubSource {
    fn recalibrate(&self, observation: &DriftObservation) -> Option<Detector> {
        self.recalibrations.fetch_add(1, Ordering::SeqCst);
        *self.last_shift.lock().unwrap() = Some(observation.shift());
        self.replacement.lock().unwrap().take()
    }
}

/// A miscalibrated deploy gets caught and corrected by the drift test:
/// swapping in a detector fit on a degenerate template (variance at the
/// floor) makes every clean NLL jump far above the baseline, the CUSUM
/// fires, recalibration pulls a replacement from the source, and the
/// corrected detector is hot-swapped at the exact next request — all
/// mid-stream, with zero dropped requests.
#[test]
fn drift_firing_recalibrates_and_swaps() {
    // Thresholds lifted far above any NLL: every verdict stays clean, so
    // each one feeds the drift tracker.
    let (model, engine, detector, _) = fixture(1.0e18);
    // The bad deploy: a detector fit on four copies of a single sample
    // per class. Its variances sit on the EM floor, so genuine
    // measurement noise scores astronomically high NLLs.
    let opts = ExecOptions::sequential(7);
    let mut rng = StdRng::seed_from_u64(5);
    let probes: Vec<Tensor> = (0..2)
        .map(|_| init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0))
        .collect();
    let samples = engine.measure_batch(&model, &probes, opts.seed, &opts.parallelism);
    let degenerate =
        OfflineTemplate::from_samples(vec![vec![samples[0].sample; 4], vec![samples[1].sample; 4]]);
    let miscalibrated = Detector::fit(&degenerate, &DetectorConfig::default(), &opts.stage(1))
        .unwrap()
        .shifted(1.0e18);
    // What recalibration restores: the well-fit detector again.
    let replacement = detector.clone();
    let source = Arc::new(StubSource {
        replacement: Mutex::new(Some(replacement)),
        recalibrations: AtomicU64::new(0),
        last_shift: Mutex::new(None),
    });
    let drift = DriftConfig {
        window: 8,
        slack: 0.25,
        threshold: 4.0,
    };
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(2))
        .queue_capacity(64)
        .micro_batch(4)
        .drift(drift)
        .detector_source(Arc::clone(&source) as Arc<dyn DetectorSource>)
        .spawn(engine, model, detector)
        .unwrap();

    // Baseline traffic under the good detector fills the drift window.
    let mut rng = StdRng::seed_from_u64(99);
    let total = 8 + 24;
    for _ in 0..8 {
        let image: Tensor = init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0);
        monitor.submit(image).unwrap();
    }
    for v in (0..8).map(|_| monitor.recv().unwrap()) {
        assert_eq!(v.config_epoch, 0);
        assert!(!v.flagged);
    }
    // The bad deploy lands (epoch 1), then traffic continues.
    assert_eq!(monitor.swap_detector(miscalibrated), 1);
    for _ in 0..24 {
        let image: Tensor = init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0);
        monitor.submit(image).unwrap();
    }
    monitor.close();
    let mut verdicts = Vec::new();
    while let Some(v) = monitor.recv() {
        verdicts.push(v);
    }
    assert_eq!(
        verdicts.len(),
        total - 8,
        "no request dropped across the swaps"
    );

    let stats = monitor.shutdown();
    assert!(
        stats.drift_events >= 1,
        "the NLL explosion never fired the CUSUM"
    );
    assert_eq!(
        source.recalibrations.load(Ordering::SeqCst),
        stats.drift_events
    );
    assert_eq!(
        stats.detector_swaps, 2,
        "the bad deploy plus the drift correction"
    );
    assert_eq!(stats.config_epoch, 2);
    assert!(
        source.last_shift.lock().unwrap().unwrap() > 0.0,
        "the observed shift must be upward"
    );
    // Epochs are monotone along the stream: a (possibly empty) prefix
    // scored under the bad deploy, then the corrected detector from the
    // exact request after the firing (drift swaps do not wait for a
    // batch boundary).
    let flip = verdicts
        .iter()
        .position(|v| v.config_epoch == 2)
        .expect("the corrected detector scored some suffix");
    assert!(
        flip >= 1,
        "the firing sample itself is scored under the bad deploy"
    );
    for (i, v) in verdicts.iter().enumerate() {
        assert_eq!(v.config_epoch, if i >= flip { 2 } else { 1 });
    }
}

/// Graceful shutdown drains the queue: requests still queued at `close`
/// are measured, scored, delivered, and counted as `drained` — never
/// silently dropped.
#[test]
fn close_drains_queued_requests_without_drops() {
    let (model, engine, detector, stream) = fixture(0.0);
    let monitor = MonitorBuilder::new(ExecOptions::sequential(5))
        .queue_capacity(8)
        .micro_batch(3)
        .spawn(engine, model, detector)
        .unwrap();
    // Hold the worker so all six requests are still queued at close.
    monitor.pause();
    for image in stream.iter().take(6) {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    monitor.resume();
    let mut ids = Vec::new();
    while let Some(v) = monitor.recv() {
        ids.push(v.request_id);
    }
    assert_eq!(
        ids,
        vec![0, 1, 2, 3, 4, 5],
        "every queued request delivered"
    );
    let stats = monitor.shutdown();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.drained, 6, "the backlog at close is accounted for");
    assert_eq!(stats.shed, 0);
}

/// The store watcher: an externally deployed detector (same pipeline
/// fingerprint, new payload) is hot-swapped in without restarting the
/// service, and later verdicts carry the bumped epoch.
#[test]
fn store_watcher_swaps_externally_deployed_detector() {
    let root = std::env::temp_dir().join(format!(
        "advhunter-hotswap-test-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let store = ArtifactStore::open(&root).expect("open scratch store");
    let config = PipelineConfig::for_scenario(ScenarioId::CaseStudy).with_sizes(SplitSizes {
        train: 30,
        val: 40,
        test: 10,
    });
    // Warm the store and keep a copy of the calibrated detector.
    let (art, _) = Pipeline::new(config.clone(), store.clone()).run().unwrap();
    let deployed = art.detector.shifted(123.0);

    let monitor = MonitorBuilder::new(ExecOptions::seeded(7).with_threads(2))
        .queue_capacity(16)
        .micro_batch(4)
        .watch_store(Duration::from_millis(10))
        .spawn_from_store(config.clone(), store.clone())
        .unwrap();
    assert_eq!(monitor.config_epoch(), 0);

    // "advhunter deploy": rewrite the Calibrate artifact the watcher is
    // polling.
    Pipeline::new(config, store)
        .deploy_detector(&deployed)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while monitor.config_epoch() == 0 {
        assert!(
            Instant::now() < deadline,
            "watcher never picked up the deploy"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(monitor.config_epoch(), 1);

    // A request scored after the swap carries the new epoch.
    let image = art.split.test.images()[0].clone();
    monitor
        .submit(MonitorRequest::new(image).request_id(1))
        .unwrap();
    let verdict = monitor.recv().unwrap();
    assert_eq!(verdict.config_epoch, 1);
    assert_eq!(verdict.correlation_id, Some(1));
    let stats = monitor.shutdown();
    assert_eq!(stats.detector_swaps, 1);
    assert_eq!(stats.completed, 1);
    let _ = std::fs::remove_dir_all(&root);
}
