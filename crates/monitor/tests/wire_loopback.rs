//! Loopback tests over the TCP front-end: the wire path reuses
//! `Monitor::submit` verbatim, so remote verdicts must be bit-identical
//! to in-process ones at every thread count, concurrent clients
//! multiplex cleanly onto one queue, and overload/control frames behave
//! as typed protocol events.

use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate, Verdict};
use advhunter_exec::TraceEngine;
use advhunter_monitor::{ControlAccess, MonitorBuilder, OverloadPolicy, WireServer};
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::{init, Tensor};
use advhunter_wire::{
    ControlOp, MonitorClient, MonitorRequest, RejectCode, ServerReply, WireError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The same seeded fixture as the service tests: a tiny 2-class CNN, a
/// detector fitted on toy measurements, and a query stream.
fn fixture() -> (Graph, TraceEngine, Detector, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new(&[1, 6, 6]);
    let input = b.input();
    let c = b.conv2d("c", input, 4, 3, 1, 1, &mut rng);
    let r = b.relu("r", c);
    let g = b.global_avgpool("g", r);
    b.linear("fc", g, 2, &mut rng);
    let model = b.build();
    let engine = TraceEngine::new(&model);

    let mut images = Vec::new();
    for _ in 0..40 {
        images.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    let opts = ExecOptions::sequential(7);
    let measurements = engine.measure_batch(&model, &images, opts.seed, &opts.parallelism);
    let mut per_class = vec![Vec::new(); 2];
    for (i, m) in measurements.iter().enumerate() {
        per_class[i % 2].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1)).unwrap();

    let mut stream = Vec::new();
    for _ in 0..12 {
        stream.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    (model, engine, detector, stream)
}

type Outcome = (u64, Verdict, bool, u64);

/// The in-process path: submit everything, collect `(id, verdict,
/// flagged, epoch)` in admission order.
fn library_stream(stream: &[Tensor], threads: usize) -> Vec<Outcome> {
    let (model, engine, detector, _) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(threads))
        .queue_capacity(stream.len().max(1))
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    for image in stream {
        monitor.submit(image.clone()).unwrap();
    }
    monitor.close();
    let mut out = Vec::new();
    while let Some(v) = monitor.recv() {
        out.push((v.request_id, v.verdict, v.flagged, v.config_epoch));
    }
    out
}

/// The wire path: the same monitor configuration behind a TCP server,
/// driven by a pipelined client over loopback.
fn wire_stream(stream: &[Tensor], threads: usize) -> Vec<Outcome> {
    let (model, engine, detector, _) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(threads))
        .queue_capacity(stream.len().max(1))
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind(monitor, "127.0.0.1:0").unwrap();
    let mut client = MonitorClient::connect(server.local_addr()).unwrap();
    for (i, image) in stream.iter().enumerate() {
        client
            .submit(&MonitorRequest::new(image.clone()).request_id(i as u64))
            .unwrap();
    }
    let mut out = Vec::new();
    for _ in 0..stream.len() {
        match client.recv_reply().unwrap() {
            ServerReply::Verdict(v) => {
                // One pipelined client: admission order is submission
                // order, so the echoed correlation id must match.
                assert_eq!(v.correlation_id, Some(v.request_id));
                out.push((v.request_id, v.verdict, v.flagged, v.config_epoch));
            }
            ServerReply::Rejected(r) => panic!("unexpected reject: {r:?}"),
        }
    }
    server.stop();
    out
}

/// The tentpole equivalence: verdicts that crossed the wire are
/// bit-identical (per-event NLLs, thresholds, prediction, flag, epoch)
/// to the library path, at 1, 2, and 4 worker threads.
#[test]
fn wire_verdicts_are_bit_identical_to_library_path() {
    let (_, _, _, stream) = fixture();
    for threads in [1usize, 2, 4] {
        let library = library_stream(&stream, threads);
        let wire = wire_stream(&stream, threads);
        assert_eq!(library.len(), stream.len());
        assert_eq!(library, wire, "wire path diverged at {threads} threads");
    }
}

/// Several concurrent clients share one monitor; each gets exactly its
/// own verdicts back, matched by correlation id.
#[test]
fn concurrent_clients_multiplex_onto_one_monitor() {
    const CLIENTS: u64 = 3;
    const PER_CLIENT: u64 = 6;
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::seeded(42).with_threads(2))
        .queue_capacity(64)
        .micro_batch(4)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind(monitor, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let images: Vec<Tensor> = stream.iter().take(PER_CLIENT as usize).cloned().collect();
            std::thread::spawn(move || {
                let mut client = MonitorClient::connect(addr).unwrap();
                for (i, image) in images.into_iter().enumerate() {
                    let corr = c * 100 + i as u64;
                    client
                        .submit(&MonitorRequest::new(image).tenant(c).request_id(corr))
                        .unwrap();
                }
                let mut corrs = Vec::new();
                for _ in 0..PER_CLIENT {
                    match client.recv_reply().unwrap() {
                        ServerReply::Verdict(v) => {
                            assert_eq!(v.tenant, c, "verdict routed to the wrong client");
                            corrs.push(v.correlation_id.unwrap());
                        }
                        ServerReply::Rejected(r) => panic!("unexpected reject: {r:?}"),
                    }
                }
                corrs
            })
        })
        .collect();
    for (c, worker) in workers.into_iter().enumerate() {
        let expected: Vec<u64> = (0..PER_CLIENT).map(|i| c as u64 * 100 + i).collect();
        assert_eq!(worker.join().unwrap(), expected);
    }
    let stats = server.stop();
    assert_eq!(stats.submitted, CLIENTS * PER_CLIENT);
    assert_eq!(stats.completed, CLIENTS * PER_CLIENT);
    assert_eq!(stats.shed, 0);
}

/// Under the shed policy a full queue turns into typed `Overloaded`
/// reject frames echoing the caller's correlation id — the library
/// error, faithfully on the wire.
#[test]
fn shed_overload_maps_to_reject_frames() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(1))
        .queue_capacity(2)
        .micro_batch(2)
        .overload(OverloadPolicy::Shed)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind(monitor, "127.0.0.1:0").unwrap();
    // Hold the worker so admission is deterministic: 2 fit, 3 shed.
    server.monitor().pause();
    let mut client = MonitorClient::connect(server.local_addr()).unwrap();
    for (i, image) in stream.iter().take(5).enumerate() {
        client
            .submit(&MonitorRequest::new(image.clone()).request_id(i as u64))
            .unwrap();
    }
    let mut verdicts = Vec::new();
    let mut rejected = Vec::new();
    for _ in 0..5 {
        // Rejects arrive immediately; verdicts only after resume. Poke
        // the worker awake once the rejects are accounted for.
        if rejected.len() == 3 && verdicts.is_empty() {
            server.monitor().resume();
        }
        match client.recv_reply().unwrap() {
            ServerReply::Verdict(v) => verdicts.push(v.correlation_id.unwrap()),
            ServerReply::Rejected(r) => {
                assert_eq!(r.code, RejectCode::Overloaded);
                rejected.push(r.correlation_id.unwrap());
            }
        }
    }
    assert_eq!(rejected, vec![2, 3, 4], "the last three submissions shed");
    assert_eq!(verdicts, vec![0, 1]);
    let stats = server.stop();
    assert_eq!(stats.shed, 3);
    assert_eq!(stats.completed, 2);
}

/// A wire-valid request whose image shape does not match the served
/// model is answered with a typed `BadRequest` reject — the shared
/// worker never sees it, so the service keeps scoring for everyone
/// (one hostile frame must not be a remote denial of service).
#[test]
fn mismatched_shape_is_a_typed_reject_not_a_crash() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(3))
        .micro_batch(2)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind(monitor, "127.0.0.1:0").unwrap();
    let mut client = MonitorClient::connect(server.local_addr()).unwrap();

    // Wrong channel count, wrong rank, and a zero-sized dim — all
    // decode fine on the wire, none may reach the worker.
    for (i, dims) in [&[2usize, 6, 6][..], &[6, 6], &[1, 6, 0]]
        .iter()
        .enumerate()
    {
        let bad = Tensor::zeros(dims);
        client
            .submit(&MonitorRequest::new(bad).request_id(100 + i as u64))
            .unwrap();
        match client.recv_reply().unwrap() {
            ServerReply::Rejected(r) => {
                assert_eq!(r.code, RejectCode::BadRequest);
                assert_eq!(r.correlation_id, Some(100 + i as u64));
                assert!(r.message.contains("[1, 6, 6]"), "names the expected shape");
            }
            ServerReply::Verdict(v) => panic!("bad shape was scored: {v:?}"),
        }
    }
    // The worker survived: a well-formed request still gets its verdict.
    client
        .submit(&MonitorRequest::new(stream[0].clone()).request_id(7))
        .unwrap();
    match client.recv_reply().unwrap() {
        ServerReply::Verdict(v) => assert_eq!(v.correlation_id, Some(7)),
        ServerReply::Rejected(r) => panic!("valid request rejected: {r:?}"),
    }
    let stats = server.stop();
    assert_eq!(stats.submitted, 1, "rejected shapes were never admitted");
    assert_eq!(stats.completed, 1);
}

/// Under `ControlAccess::Deny` a control frame comes back as a typed
/// `Denied` reject (surfaced as `WireError::Refused` by the client) and
/// the connection stays fully usable for scoring.
#[test]
fn denied_control_ops_do_not_steer_or_kill_the_connection() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(3))
        .micro_batch(2)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind_with(monitor, "127.0.0.1:0", ControlAccess::Deny).unwrap();
    let mut client = MonitorClient::connect(server.local_addr()).unwrap();

    for op in [ControlOp::Pause, ControlOp::Shutdown] {
        match client.control(op) {
            Err(WireError::Refused(r)) => assert_eq!(r.code, RejectCode::Denied),
            other => panic!("denied control op returned {other:?}"),
        }
    }
    // The denied Pause did not pause and the denied Shutdown did not set
    // the shutdown flag: requests still score.
    client
        .submit(&MonitorRequest::new(stream[0].clone()).request_id(1))
        .unwrap();
    match client.recv_reply().unwrap() {
        ServerReply::Verdict(v) => assert_eq!(v.correlation_id, Some(1)),
        ServerReply::Rejected(r) => panic!("submission rejected after denial: {r:?}"),
    }
    let stats = server.stop();
    assert_eq!(stats.completed, 1);
}

/// Disconnected clients release their socket immediately and their
/// bookkeeping at the acceptor's next sweep — a long-running server does
/// not accumulate one fd plus dead thread handles per past client.
#[test]
fn disconnected_clients_are_reaped() {
    use std::time::{Duration, Instant};

    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(3))
        .micro_batch(2)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind(monitor, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // A burst of short-lived clients, each scoring one request.
    for i in 0..8u64 {
        let mut client = MonitorClient::connect(addr).unwrap();
        client
            .submit(&MonitorRequest::new(stream[0].clone()).request_id(i))
            .unwrap();
        assert!(matches!(
            client.recv_reply().unwrap(),
            ServerReply::Verdict(_)
        ));
    }
    // Each new accept sweeps finished connections; poll with fresh
    // probes until the burst is gone (readers exit asynchronously after
    // the client side hangs up).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        {
            let mut probe = MonitorClient::connect(addr).unwrap();
            probe.stats().unwrap();
        }
        // At most the probe itself plus one just-dropped predecessor.
        if server.connections() <= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead connections were never reaped ({} tracked)",
            server.connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stop();
    assert_eq!(stats.completed, 8);
}

/// Stats and control frames round-trip, and a client-sent shutdown wakes
/// the server owner out of `wait_for_shutdown`.
#[test]
fn stats_and_control_round_trip() {
    let (model, engine, detector, stream) = fixture();
    let monitor = MonitorBuilder::new(ExecOptions::sequential(3))
        .micro_batch(2)
        .spawn(engine, model, detector)
        .unwrap();
    let server = WireServer::bind(monitor, "127.0.0.1:0").unwrap();
    let mut client = MonitorClient::connect(server.local_addr()).unwrap();

    for image in stream.iter().take(4) {
        client.submit(&MonitorRequest::new(image.clone())).unwrap();
    }
    for _ in 0..4 {
        match client.recv_reply().unwrap() {
            ServerReply::Verdict(v) => assert_eq!(v.correlation_id, None),
            ServerReply::Rejected(r) => panic!("unexpected reject: {r:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.config_epoch, 0);

    assert_eq!(client.control(ControlOp::Pause).unwrap(), 0);
    assert_eq!(client.control(ControlOp::Resume).unwrap(), 0);
    assert_eq!(client.control(ControlOp::Shutdown).unwrap(), 0);
    // The shutdown control only sets the flag; the owner tears down.
    server.wait_for_shutdown();
    let final_stats = server.stop();
    assert_eq!(final_stats.completed, 4);
    assert_eq!(final_stats.drained, 0, "nothing was queued at shutdown");
}
