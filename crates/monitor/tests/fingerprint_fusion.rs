//! Negative-path and fusion tests for the query-fingerprint stage:
//! tenant isolation, tenant-cap shedding, zero-window degradation, and
//! the fusion policies' effect on the headline flag.

use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate};
use advhunter_exec::TraceEngine;
use advhunter_monitor::{
    FingerprintConfig, FingerprintConfigError, FusionPolicy, Monitor, MonitorBuildError,
    MonitorBuilder, MonitorConfigError, MonitorRequest, MonitorVerdict,
};
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Same seeded fixture as `monitor_service.rs`: a tiny 2-class CNN, a
/// detector fitted on toy measurements, and a stream of query images.
fn fixture() -> (Graph, TraceEngine, Detector, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new(&[1, 6, 6]);
    let input = b.input();
    let c = b.conv2d("c", input, 4, 3, 1, 1, &mut rng);
    let r = b.relu("r", c);
    let g = b.global_avgpool("g", r);
    b.linear("fc", g, 2, &mut rng);
    let model = b.build();
    let engine = TraceEngine::new(&model);

    let mut images = Vec::new();
    for _ in 0..40 {
        images.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    let opts = ExecOptions::sequential(7);
    let measurements = engine.measure_batch(&model, &images, opts.seed, &opts.parallelism);
    let mut per_class = vec![Vec::new(); 2];
    for (i, m) in measurements.iter().enumerate() {
        per_class[i % 2].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1)).unwrap();

    let mut stream = Vec::new();
    for _ in 0..12 {
        stream.push(init::uniform(&mut rng, &[1, 6, 6], 0.0, 1.0));
    }
    (model, engine, detector, stream)
}

/// A small enabled fingerprint configuration suited to 1×6×6 queries.
fn fp_config() -> FingerprintConfig {
    let mut config = FingerprintConfig::default().with_window(8);
    config.probe_window = 8;
    config.stride = 2;
    config
}

fn spawn(builder: MonitorBuilder) -> Monitor {
    let (model, engine, detector, _) = fixture();
    builder.spawn(engine, model, detector).unwrap()
}

fn drain(monitor: &Monitor) -> Vec<MonitorVerdict> {
    monitor.close();
    let mut out = Vec::new();
    while let Some(v) = monitor.recv() {
        out.push(v);
    }
    out
}

#[test]
fn repeated_queries_become_query_correlated() {
    let (_, _, _, stream) = fixture();
    let monitor = spawn(MonitorBuilder::new(ExecOptions::sequential(42)).fingerprint(fp_config()));
    for _ in 0..3 {
        monitor.submit(stream[0].clone()).unwrap();
    }
    let verdicts = drain(&monitor);
    assert_eq!(verdicts.len(), 3);
    let first = &verdicts[0];
    assert!(!first.query_correlated, "an empty window matches nothing");
    let report = first.fingerprint.expect("stage enabled: report present");
    assert_eq!(report.window_len, 0);
    for v in &verdicts[1..] {
        assert!(
            v.query_correlated,
            "request {} must correlate",
            v.request_id
        );
        let r = v.fingerprint.unwrap();
        assert_eq!(r.best_overlap, r.probes, "identical query: full overlap");
        assert!(!r.shed);
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.fingerprint_matched, 2);
    assert_eq!(stats.fingerprint_shed, 0);
}

#[test]
fn tenants_never_see_each_others_history() {
    let (_, _, _, stream) = fixture();
    let monitor = spawn(MonitorBuilder::new(ExecOptions::sequential(42)).fingerprint(fp_config()));
    monitor
        .submit(MonitorRequest::new(stream[0].clone()).tenant(1))
        .unwrap();
    monitor
        .submit(MonitorRequest::new(stream[0].clone()).tenant(2))
        .unwrap();
    monitor
        .submit(MonitorRequest::new(stream[0].clone()).tenant(1))
        .unwrap();
    let verdicts = drain(&monitor);
    assert_eq!(verdicts[0].tenant, 1);
    assert!(!verdicts[0].query_correlated);
    assert_eq!(verdicts[1].tenant, 2);
    assert!(
        !verdicts[1].query_correlated,
        "tenant 2 must not match tenant 1's identical query"
    );
    assert_eq!(verdicts[2].tenant, 1);
    assert!(
        verdicts[2].query_correlated,
        "tenant 1's own repeat must match"
    );
}

#[test]
fn tenant_cap_sheds_to_hpc_only_without_failing_requests() {
    let (_, _, _, stream) = fixture();
    let builder = MonitorBuilder::new(ExecOptions::sequential(42))
        .fingerprint(fp_config().with_max_tenants(1));
    let monitor = spawn(builder);
    monitor
        .submit(MonitorRequest::new(stream[0].clone()).tenant(1))
        .unwrap();
    // Tenant 2 arrives at a full store: requests still measure and score,
    // but the fingerprint stage sheds them — repeatedly identical queries
    // never correlate.
    monitor
        .submit(MonitorRequest::new(stream[1].clone()).tenant(2))
        .unwrap();
    monitor
        .submit(MonitorRequest::new(stream[1].clone()).tenant(2))
        .unwrap();
    let verdicts = drain(&monitor);
    assert_eq!(verdicts.len(), 3, "shed tenants still get verdicts");
    for v in &verdicts[1..] {
        assert_eq!(v.tenant, 2);
        assert!(v.fingerprint.unwrap().shed);
        assert!(!v.query_correlated);
        assert_eq!(
            v.flagged,
            v.verdict.flagged_any(),
            "shed request degrades to the HPC-only verdict"
        );
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.fingerprint_shed, 2);
    assert_eq!(stats.fingerprint_matched, 0);
    assert_eq!(stats.completed, 3);
}

#[test]
fn zero_window_config_degrades_gracefully_to_hpc_only() {
    let (_, _, _, stream) = fixture();
    // The default config carries a disabled fingerprint stage.
    let monitor = spawn(
        MonitorBuilder::new(ExecOptions::sequential(42)).fingerprint(FingerprintConfig::disabled()),
    );
    for _ in 0..3 {
        monitor.submit(stream[0].clone()).unwrap();
    }
    let verdicts = drain(&monitor);
    for v in &verdicts {
        assert!(v.fingerprint.is_none(), "disabled stage produces no report");
        assert!(!v.query_correlated);
        assert_eq!(v.flagged, v.verdict.flagged_any());
        assert_eq!(v.hpc_anomalous, v.verdict.flagged_any());
    }
    let stats = monitor.shutdown();
    assert_eq!(stats.fingerprint, std::time::Duration::ZERO);
    assert_eq!(stats.fingerprint_matched, 0);
}

#[test]
fn fusion_policies_shape_the_headline_flag() {
    let (_, _, _, stream) = fixture();
    for policy in [
        FusionPolicy::HpcOnly,
        FusionPolicy::FingerprintOnly,
        FusionPolicy::Or,
        FusionPolicy::And,
    ] {
        let builder = MonitorBuilder::new(ExecOptions::sequential(42))
            .fingerprint(fp_config())
            .fusion(policy);
        let monitor = spawn(builder);
        monitor.submit(stream[0].clone()).unwrap();
        monitor.submit(stream[0].clone()).unwrap();
        monitor.submit(stream[1].clone()).unwrap();
        for v in drain(&monitor) {
            assert_eq!(
                v.flagged,
                policy.fuse(v.hpc_anomalous, v.query_correlated),
                "{policy:?} request {}",
                v.request_id
            );
        }
    }
}

#[test]
fn spawn_rejects_invalid_fingerprint_configs() {
    let (model, engine, detector, _) = fixture();
    let mut bad = FingerprintConfig::default();
    bad.probes = 0;
    let err = MonitorBuilder::new(ExecOptions::default())
        .fingerprint(bad)
        .spawn(engine, model, detector)
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(
        err,
        MonitorBuildError::Config(MonitorConfigError::Fingerprint(
            FingerprintConfigError::ZeroProbes
        ))
    ));
}
