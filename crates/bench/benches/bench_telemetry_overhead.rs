//! Telemetry overhead on the measurement hot path: single-image `measure`
//! with telemetry enabled vs disabled.
//!
//! The zero-impact contract says instrumentation must not perturb results
//! (checked by the golden-count suites) and must cost a negligible share
//! of wall time. This harness quantifies the second half: the enabled
//! path pays two stage spans (four clock reads) plus a handful of relaxed
//! atomic adds per measurement, the disabled path skips the clock reads
//! entirely. The overhead is spliced into `BENCH_inference.json` as
//! `telemetry_*` fields next to the throughput numbers it qualifies.
//! `CRITERION_MEASURE_MS` bounds the per-section measuring time.

use std::time::{Duration, Instant};

use advhunter_exec::TraceEngine;
use advhunter_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Runs `f` repeatedly for about `budget`, returning (best µs per
/// iteration, iterations). The best — not the mean — estimates the cost of
/// the code itself: anything else that runs on the machine only ever adds
/// time.
fn time_per_iter<F: FnMut()>(budget: Duration, mut f: F) -> (f64, u64) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    while start.elapsed() < budget || iters == 0 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
        iters += 1;
    }
    (best.as_secs_f64() * 1e6, iters)
}

fn main() {
    let budget = measure_budget();
    let mut rng = StdRng::seed_from_u64(1);
    let model = advhunter::scenario::ScenarioId::CaseStudy
        .spec()
        .build_graph(&mut rng)
        .expect("checked-in spec compiles");
    let engine = TraceEngine::new(&model);
    let image = init::uniform(&mut StdRng::seed_from_u64(5), &[3, 32, 32], 0.0, 1.0);

    advhunter_bench::section("Telemetry overhead (single-image measure, case-study CNN)");

    // Same noise stream for both arms: `measure_indexed` is pure in
    // (image, seed, index), so the two arms run identical work and differ
    // only in whether the spans read the clock. The arms alternate in
    // short rounds so clock-frequency drift hits both equally.
    let arm = |budget: Duration| {
        time_per_iter(budget, || {
            std::hint::black_box(engine.measure_indexed(&model, &image, 7, 0));
        })
    };
    const ROUNDS: u32 = 8;
    let round = budget / (2 * ROUNDS);
    let (mut enabled_us, mut disabled_us) = (f64::MAX, f64::MAX);
    let (mut enabled_iters, mut disabled_iters) = (0u64, 0u64);
    for _ in 0..ROUNDS {
        advhunter_telemetry::enable();
        let (us, iters) = arm(round);
        enabled_us = enabled_us.min(us);
        enabled_iters += iters;
        advhunter_telemetry::disable();
        let (us, iters) = arm(round);
        disabled_us = disabled_us.min(us);
        disabled_iters += iters;
    }
    advhunter_telemetry::enable();
    println!(
        "measure/single_image/telemetry_on:  {enabled_us:>10.1} µs/iter  ({enabled_iters} iters)"
    );
    println!(
        "measure/single_image/telemetry_off: {disabled_us:>10.1} µs/iter  ({disabled_iters} iters)"
    );

    let overhead_pct = (enabled_us - disabled_us) / disabled_us * 100.0;
    println!(
        "telemetry overhead: {overhead_pct:+.3}% \
         ({enabled_us:.1} µs on vs {disabled_us:.1} µs off)"
    );
    if overhead_pct < 1.0 {
        println!("zero-impact contract holds: overhead under 1%");
    } else {
        println!("WARNING: overhead above the 1% contract");
    }

    // Splice the telemetry_* fields into BENCH_inference.json, preserving
    // the throughput fields the other harness wrote.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_inference.json");
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|_| "{\n}\n".to_string());
    let mut kept: Vec<&str> = doc
        .lines()
        .filter(|l| !l.contains("\"telemetry_"))
        .collect();
    while kept.last().is_some_and(|l| l.trim().is_empty()) {
        kept.pop();
    }
    let Some(last) = kept.pop().filter(|l| l.trim() == "}") else {
        eprintln!(
            "could not splice into {}: unexpected layout",
            path.display()
        );
        return;
    };
    let mut body = kept.join("\n");
    let trimmed = body.trim_end().to_string();
    if !trimmed.ends_with(['{', ',']) {
        body = format!("{trimmed},");
    }
    let json = format!(
        "{body}\n  \
         \"telemetry_enabled_single_image_us\": {enabled_us:.1},\n  \
         \"telemetry_disabled_single_image_us\": {disabled_us:.1},\n  \
         \"telemetry_overhead_pct\": {overhead_pct:.3}\n{last}\n"
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
