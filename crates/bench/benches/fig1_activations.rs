//! Figure 1: distributions of activated neurons at different activation
//! layers for clean and adversarially perturbed inputs.
//!
//! Reproduces the paper's case study: a 4-conv/2-fc CNN on CIFAR-10-like
//! data; one batch of clean 'bird' images versus one batch of images from
//! other categories perturbed with targeted FGSM (ε = 0.1) to be
//! misclassified as 'bird'. For each activation layer we compare the
//! per-neuron firing-frequency histograms of the two batches; the paper's
//! observation is that deeper layers (its "Activation Layer #3") separate
//! clearly while others overlap more.

use advhunter::scenario::ScenarioId;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_scenario, scaled, section};
use advhunter_nn::record::{activation_stats, histogram_overlap};
use advhunter_nn::Mode;
use advhunter_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::CaseStudy);
    let mut rng = StdRng::seed_from_u64(0xF161);
    let bird = 2usize; // CIFAR-10 'bird'
    let budget = scaled(400, 60);

    // Clean batch: correctly-classified test images of 'bird'.
    let mut clean_images: Vec<Tensor> = Vec::new();
    for i in 0..art.split.test.len() {
        let (img, label) = art.split.test.item(i);
        if label != bird || clean_images.len() >= budget {
            continue;
        }
        let batch = Tensor::stack(std::slice::from_ref(img));
        if art.model.predict(&batch)[0] == bird {
            clean_images.push(img.clone());
        }
    }

    // Adversarial batch: other categories pushed into 'bird' (FGSM ε=0.1,
    // targeted). The paper uses attack strength 0.1.
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.1),
        AttackGoal::Targeted(bird),
        Some(budget * 3),
        &mut rng,
    );
    let adv_images: Vec<Tensor> = report.examples.iter().map(|e| e.image.clone()).collect();
    eprintln!(
        "clean 'bird' batch: {} images; adversarial batch: {} images (attack success {:.1}%)",
        clean_images.len(),
        adv_images.len(),
        report.success_rate() * 100.0
    );

    let clean_trace = art.model.forward(&Tensor::stack(&clean_images), Mode::Eval);
    let adv_trace = art.model.forward(&Tensor::stack(&adv_images), Mode::Eval);
    let clean_stats = activation_stats(&art.model, &clean_trace);
    let adv_stats = activation_stats(&art.model, &adv_trace);

    section("Figure 1: activated-neuron frequency distributions per activation layer");
    println!(
        "{:<8} {:>9} {:>16} {:>16} {:>10}",
        "layer", "neurons", "clean act-frac", "adv act-frac", "overlap"
    );
    let bins = 20;
    for (c, a) in clean_stats.iter().zip(adv_stats.iter()) {
        let hc = c.frequency_histogram(bins);
        let ha = a.frequency_histogram(bins);
        println!(
            "{:<8} {:>9} {:>15.1}% {:>15.1}% {:>10.3}",
            c.name,
            c.neurons,
            c.mean_active_fraction * 100.0,
            a.mean_active_fraction * 100.0,
            histogram_overlap(&hc, &ha),
        );
    }

    // The paper's qualitative claim: at least one activation layer shows a
    // clear difference between the two input populations.
    let min_overlap = clean_stats
        .iter()
        .zip(adv_stats.iter())
        .map(|(c, a)| {
            histogram_overlap(&c.frequency_histogram(bins), &a.frequency_histogram(bins)) as f64
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nmost-separating layer overlap: {min_overlap:.3} \
         (paper: Activation Layer #3 separates clearly; 1.0 = identical)"
    );
}
