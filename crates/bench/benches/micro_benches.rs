//! Criterion micro-benchmarks for the substrates: cache-simulator
//! throughput, branch prediction, convolution, GMM fitting, instrumented
//! inference, and online detector scoring.

use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate};
use advhunter_exec::TraceEngine;
use advhunter_gmm::{EmConfig, Gmm1d};
use advhunter_nn::{models, Mode};
use advhunter_tensor::ops::{conv2d, Conv2dSpec};
use advhunter_tensor::{init, Tensor};
use advhunter_uarch::{AccessKind, BranchPredictor, Cache, CacheConfig, HpcEvent, HpcSample};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_cache_access(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let addrs: Vec<u64> = (0..8192).map(|_| rng.gen_range(0..4_000_000u64)).collect();
    c.bench_function("cache_8k_random_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::new(32 * 1024, 8));
            for &a in &addrs {
                cache.access(black_box(a), AccessKind::Read);
            }
            black_box(cache.stats().misses())
        })
    });
}

fn bench_branch_predictor(c: &mut Criterion) {
    c.bench_function("branch_predictor_4k_loops", |b| {
        b.iter(|| {
            let mut bp = BranchPredictor::new(12);
            for pc in 0..4096u64 {
                bp.predict_loop(black_box(pc * 4), 64);
            }
            black_box(bp.misses())
        })
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let spec = Conv2dSpec::new(16, 16, 3, 1, 1);
    let x = init::normal(&mut rng, &[1, 16, 32, 32], 0.0, 1.0);
    let w = init::normal(&mut rng, &[16, 16 * 9], 0.0, 0.1);
    let bias = Tensor::zeros(&[16]);
    c.bench_function("conv2d_16x16_32x32", |b| {
        b.iter(|| black_box(conv2d(black_box(&x), &w, &bias, &spec)))
    });
}

fn bench_gmm_fit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<f64> = (0..200)
        .map(|i| {
            if i % 2 == 0 {
                rng.gen_range(-1.0..1.0)
            } else {
                10.0 + rng.gen_range(-1.0..1.0)
            }
        })
        .collect();
    c.bench_function("gmm1d_fit_k2_200pts", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            black_box(Gmm1d::fit(black_box(&data), 2, &EmConfig::default(), &mut r).unwrap())
        })
    });
}

fn bench_instrumented_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let model = models::case_study_cnn(&[3, 32, 32], 10, &mut rng);
    let engine = TraceEngine::new(&model);
    let img = init::uniform(&mut rng, &[3, 32, 32], 0.0, 1.0);
    c.bench_function("trace_inference_case_study_cnn", |b| {
        b.iter(|| black_box(engine.true_counts(&model, black_box(&img))))
    });
    let batch = Tensor::stack(std::slice::from_ref(&img));
    c.bench_function("plain_forward_case_study_cnn", |b| {
        b.iter(|| black_box(model.forward(black_box(&batch), Mode::Eval)))
    });
}

fn bench_detector_scoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let per_class: Vec<Vec<HpcSample>> = (0..10)
        .map(|cl| {
            (0..60)
                .map(|_| {
                    let mut s = HpcSample::default();
                    s.set(
                        HpcEvent::CacheMisses,
                        10_000.0 + cl as f64 * 500.0 + rng.gen_range(-100.0..100.0),
                    );
                    s
                })
                .collect()
        })
        .collect();
    let template = OfflineTemplate::from_samples(per_class);
    let detector = Detector::fit(
        &template,
        &DetectorConfig::default(),
        &ExecOptions::seeded(6),
    )
    .unwrap();
    let mut probe = HpcSample::default();
    probe.set(HpcEvent::CacheMisses, 12_345.0);
    c.bench_function("detector_score_all_events", |b| {
        b.iter(|| black_box(detector.score_all(black_box(3), &probe)))
    });
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_branch_predictor,
    bench_conv2d,
    bench_gmm_fit,
    bench_instrumented_inference,
    bench_detector_scoring
);
criterion_main!(benches);
