//! Ablation (beyond the paper): measurement-noise robustness.
//!
//! Scales the calibrated noise model's sigma globally (0× = clean
//! simulator, 1× = calibrated, 4× = very noisy co-tenant) and measures how
//! detection via `cache-misses` degrades — the knob a defender cannot
//! control on shared infrastructure.

use advhunter::experiment::{detection_confusion, LabeledSample};
use advhunter::offline::collect_template;
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_scenario, scaled, section};
use advhunter_exec::TraceEngine;
use advhunter_uarch::{HpcEvent, MachineConfig, NoiseModel, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let mut rng = StdRng::seed_from_u64(0xAB60);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(150, 40)),
        &mut rng,
    );

    section("Ablation: measurement-noise scale (S2, targeted FGSM ε=0.5, cache-misses)");
    println!("{:<8} {:>10} {:>10}", "scale", "accuracy%", "F1");
    for scale_factor in [0.0f64, 0.5, 1.0, 2.0, 4.0] {
        let sampler = Sampler {
            noise: NoiseModel {
                sigma_scale: scale_factor,
                ..NoiseModel::default()
            },
            ..Sampler::default()
        };
        let engine = TraceEngine::with_config(&art.model, MachineConfig::default(), sampler);
        let mut r = StdRng::seed_from_u64(0xAB61);
        let opts = ExecOptions::seeded(0xAB61);
        let template = collect_template(&engine, &art.model, &art.split.val, None, &opts.stage(0));
        let cfg = DetectorConfig {
            events: vec![HpcEvent::CacheMisses],
            ..DetectorConfig::default()
        };
        let detector = Detector::fit(&template, &cfg, &opts.stage(1)).expect("detector fit");
        let clean: Vec<LabeledSample> = (0..art.split.test.len())
            .take(scaled(300, 80))
            .map(|i| {
                let (img, label) = art.split.test.item(i);
                let m = engine.measure(&art.model, img, &mut r);
                LabeledSample {
                    true_class: label,
                    predicted: m.predicted,
                    sample: m.sample,
                }
            })
            .collect();
        let adv: Vec<LabeledSample> = report
            .examples
            .iter()
            .map(|ex| {
                let m = engine.measure(&art.model, &ex.image, &mut r);
                LabeledSample {
                    true_class: ex.original_label,
                    predicted: m.predicted,
                    sample: m.sample,
                }
            })
            .collect();
        let c = detection_confusion(&detector, HpcEvent::CacheMisses, &clean, &adv);
        println!(
            "{:<8.1} {:>10.2} {:>10.4}",
            scale_factor,
            c.accuracy() * 100.0,
            c.f1()
        );
    }
    println!(
        "\nExpectation: detection is near its ceiling without noise, holds at\n\
         the calibrated level (R = 10 averaging absorbs it), and degrades\n\
         gracefully as background activity grows."
    );
}
