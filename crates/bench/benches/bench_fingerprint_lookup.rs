//! Throughput of the query-fingerprint store: the defense must keep up
//! with the inference service it guards, so `observe` (probe lookup +
//! window insert + eviction) has a hard floor of 100k queries/s.
//!
//! Three rates are measured against the default production configuration
//! (window 256, 32 probes, 1024-tenant cap):
//!
//! * `fingerprint_compute` — quantize + rolling-hash a CIFAR-sized query
//!   (3×32×32) into its probe sketch;
//! * `store_observe` — match + insert a precomputed sketch (the hot path
//!   the floor applies to);
//! * `end_to_end` — both, i.e. what one monitor request pays.
//!
//! Like the other service benches this harness does its own timing and
//! writes a machine-readable `BENCH_fingerprint.json` at the repo root.
//! `ADVHUNTER_FP_N` overrides the stream length (default 100_000);
//! `ADVHUNTER_FP_ASSERT=1` turns the 100k q/s floor into a hard assert
//! (set in CI's bench smoke).

use std::time::Instant;

use advhunter_fingerprint::{FingerprintConfig, FingerprintStore, QueryFingerprint};

/// The throughput floor (queries/s) CI enforces on `store_observe`.
const FLOOR_PER_S: f64 = 100_000.0;
/// Tenants the stream round-robins across.
const TENANTS: u64 = 64;
/// CIFAR-shaped query length for the compute-side measurements.
const QUERY_LEN: usize = 3 * 32 * 32;

fn stream_len() -> usize {
    std::env::var("ADVHUNTER_FP_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000)
}

/// splitmix64 — a cheap deterministic generator for synthetic probes.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A synthetic probe sketch drawn from a bounded universe so the
/// inverted index sees realistic bucket collisions.
fn synthetic_sketch(seed: u64, probes: usize) -> QueryFingerprint {
    let universe = 1u64 << 16;
    QueryFingerprint::from_probes(
        (0..probes as u64)
            .map(|i| mix(seed ^ (i << 40)) % universe)
            .collect(),
    )
}

/// A deterministic pseudo-random query image in `[0, 1]`.
fn query_image(seed: u64) -> Vec<f32> {
    (0..QUERY_LEN)
        .map(|i| (mix(seed.wrapping_add(i as u64)) >> 40) as f32 / (1u64 << 24) as f32)
        .collect()
}

fn main() {
    let n = stream_len();
    let config = FingerprintConfig::default();

    advhunter_bench::section("Query-fingerprint store throughput (default config)");
    println!(
        "window {}, probes {}, probe_window {}, stride {}, {} tenants over a {}-tenant cap",
        config.window,
        config.probes,
        config.probe_window,
        config.stride,
        TENANTS,
        config.max_tenants
    );

    // Fingerprint compute: quantize + rolling hash over CIFAR-sized data.
    let compute_n = n.min(4_096);
    let pool: Vec<Vec<f32>> = (0..64).map(|i| query_image(i * 7919)).collect();
    let scratch_store = FingerprintStore::new(config);
    let t0 = Instant::now();
    for i in 0..compute_n {
        std::hint::black_box(scratch_store.fingerprint(&pool[i % pool.len()]));
    }
    let compute_us = t0.elapsed().as_secs_f64() * 1e6 / compute_n as f64;
    let compute_per_s = 1e6 / compute_us;
    println!(
        "fingerprint_compute: {compute_us:>8.2} µs/query  {compute_per_s:>10.0} queries/s \
         ({compute_n} queries of {QUERY_LEN} values)"
    );

    // Store observe: the floor-bearing hot path, on precomputed sketches.
    let sketches: Vec<QueryFingerprint> = (0..n)
        .map(|i| synthetic_sketch(i as u64, config.probes))
        .collect();
    let mut store = FingerprintStore::new(config);
    let t0 = Instant::now();
    for (i, sketch) in sketches.iter().enumerate() {
        std::hint::black_box(store.observe(i as u64 % TENANTS, sketch));
    }
    let observe_elapsed = t0.elapsed();
    let observe_ns = observe_elapsed.as_secs_f64() * 1e9 / n as f64;
    let observe_per_s = n as f64 / observe_elapsed.as_secs_f64();
    let stats = store.stats();
    println!(
        "store_observe:       {:>8.2} µs/query  {observe_per_s:>10.0} queries/s \
         ({n} queries, {} matched, {} evictions, floor {FLOOR_PER_S:.0}/s)",
        observe_ns / 1e3,
        stats.matched,
        stats.evictions,
    );

    // End to end: what one monitor request pays for the defense stage.
    let e2e_n = n.min(4_096);
    let mut e2e_store = FingerprintStore::new(config);
    let t0 = Instant::now();
    for i in 0..e2e_n {
        let data = &pool[i % pool.len()];
        std::hint::black_box(e2e_store.observe_query(i as u64 % TENANTS, data));
    }
    let e2e_us = t0.elapsed().as_secs_f64() * 1e6 / e2e_n as f64;
    let e2e_per_s = 1e6 / e2e_us;
    println!("end_to_end:          {e2e_us:>8.2} µs/query  {e2e_per_s:>10.0} queries/s");

    let pass = observe_per_s >= FLOOR_PER_S;
    println!(
        "floor: store_observe {} {FLOOR_PER_S:.0}/s ({})",
        if pass { ">=" } else { "<" },
        if pass { "pass" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"benchmark\": \"fingerprint_lookup\",\n  \"stream_len\": {n},\n  \
         \"tenants\": {TENANTS},\n  \"window\": {},\n  \"probes\": {},\n  \
         \"compute_us\": {compute_us:.2},\n  \"compute_per_s\": {compute_per_s:.0},\n  \
         \"observe_ns\": {observe_ns:.0},\n  \"observe_per_s\": {observe_per_s:.0},\n  \
         \"end_to_end_us\": {e2e_us:.2},\n  \"end_to_end_per_s\": {e2e_per_s:.0},\n  \
         \"floor_per_s\": {FLOOR_PER_S:.0},\n  \"pass\": {pass}\n}}\n",
        config.window, config.probes
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fingerprint.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    if std::env::var("ADVHUNTER_FP_ASSERT").is_ok_and(|v| v == "1") {
        assert!(
            pass,
            "fingerprint store below the {FLOOR_PER_S:.0} queries/s floor: {observe_per_s:.0}/s"
        );
    }
}
