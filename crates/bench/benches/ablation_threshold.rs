//! Ablation (beyond the paper): the three-sigma rule versus other threshold
//! multipliers.
//!
//! The paper fixes Δ = μ + 3σ over the validation NLLs (§5.3). This harness
//! sweeps the multiplier to expose the precision/recall trade-off behind
//! that choice, on S2 / targeted FGSM ε = 0.5 / cache-misses.

use advhunter::experiment::{detection_confusion, measure_examples};
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0xAB20);
    let mut rng = StdRng::seed_from_u64(0xAB21);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(200, 40)),
        &mut rng,
    );
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xAB22));

    section("Ablation: threshold multiplier k in Δ = μ + k·σ (S2, targeted FGSM ε=0.5)");
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>10}",
        "k", "accuracy%", "F1", "precision", "recall"
    );
    for k in [1.0f64, 2.0, 3.0, 4.0, 5.0] {
        let cfg = DetectorConfig {
            events: vec![HpcEvent::CacheMisses],
            sigma_factor: k,
            ..DetectorConfig::default()
        };
        let detector = Detector::fit(&prep.template, &cfg, &ExecOptions::seeded(0xAB23))
            .expect("detector fit");
        let c = detection_confusion(&detector, HpcEvent::CacheMisses, &prep.clean_test, &adv);
        println!(
            "{:<6.1} {:>10.2} {:>10.4} {:>12.4} {:>10.4}",
            k,
            c.accuracy() * 100.0,
            c.f1(),
            c.precision(),
            c.recall()
        );
    }
    println!(
        "\nExpectation: small k floods the defender with false positives\n\
         (precision drops); large k lets AEs through (recall drops); the\n\
         paper's k = 3 sits near the F1 optimum."
    );
}
