//! Figure 6: detection F1 (cache-misses) versus validation-set size `M`,
//! mean ± standard deviation over repeated random validation resamples.
//!
//! The paper reports saturation at roughly M ≈ 30 (S1), M ≈ 40 (S2), and
//! M ≈ 60 (S3, more classes). Measurements are collected once per scenario;
//! each trial re-fits the GMM bank on a random size-`M` subsample of the
//! measured validation pool, exactly like the paper's resampling protocol.

use advhunter::experiment::{detection_confusion, measure_examples};
use advhunter::mean_std;
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = scaled(30, 5);
    let sizes = [5usize, 10, 20, 30, 40, 60, 80];
    section(&format!(
        "Figure 6: F1 (cache-misses) vs validation size M, {trials} resamples"
    ));
    println!("{:<4} {:>4} {:>10} {:>10}", "scn", "M", "mean F1", "std");

    // S3 included as well (the paper omits its plot but reports M ≈ 60).
    for id in [ScenarioId::S1, ScenarioId::S2, ScenarioId::S3] {
        let art = prepare_scenario(id);
        // Full validation pool measured once.
        let prep = prepare_detector(&art, None, Some(scaled(30, 10)), 0xF600);
        let mut rng = StdRng::seed_from_u64(0xF601);
        // The paper uses a weak untargeted FGSM here; on this substrate that
        // setting sits near the detection floor regardless of M (see
        // Table 3), which would mask the M-dependence the figure is about.
        // The Table 2 attack setting (targeted FGSM ε = 0.5) is used
        // instead; the reproduction target is the saturation shape.
        let report = attack_dataset(
            &art.model,
            &art.split.test,
            &Attack::fgsm(0.5),
            AttackGoal::Targeted(art.target_class()),
            Some(scaled(200, 40)),
            &mut rng,
        );
        let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xF603));
        let max_m = prep.template.min_samples_per_class();

        let cfg = DetectorConfig {
            events: vec![HpcEvent::CacheMisses],
            ..DetectorConfig::default()
        };
        for &m in &sizes {
            if m > max_m {
                continue;
            }
            let mut f1s = Vec::with_capacity(trials);
            for trial in 0..trials {
                let mut trial_rng = StdRng::seed_from_u64(0xF602 + trial as u64);
                let sub = prep.template.subsample(m, &mut trial_rng);
                let fit_opts = ExecOptions::seeded(0xF602 + trial as u64);
                let Ok(detector) = Detector::fit(&sub, &cfg, &fit_opts) else {
                    continue;
                };
                let c =
                    detection_confusion(&detector, HpcEvent::CacheMisses, &prep.clean_test, &adv);
                f1s.push(c.f1());
            }
            let (mean, std) = mean_std(&f1s);
            println!("{:<4} {:>4} {:>10.4} {:>10.4}", id.label(), m, mean, std);
        }
        println!();
    }
    println!(
        "Paper shape: F1 saturates around M≈30 (S1), M≈40 (S2), M≈60 (S3);\n\
         spread (std) shrinks as M grows."
    );
}
