//! Table 2: per-category detection performance for the five core HPC
//! events in scenario S2 under targeted FGSM (ε = 0.5, target 'frog').
//!
//! Each row compares clean 'frog' test images against adversarial examples
//! originally from one source category but misclassified as 'frog'; the
//! detector scores both under the 'frog' GMMs per event. The paper's
//! reference (overall row): instructions 50.14 % / F1 0.0515, branches
//! 49.97 / 0.0446, branch-misses 50.29 / 0.0572, cache-references 55.02 /
//! 0.1947, cache-misses 98.98 / 0.9892.

use advhunter::experiment::{by_true_class, detection_confusion, measure_examples, LabeledSample};
use advhunter::scenario::ScenarioId;
use advhunter::{BinaryConfusion, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, None, 0x7AB2);
    let mut rng = StdRng::seed_from_u64(0x7AB3);
    let target = art.target_class();
    let names = art.class_names();

    // Targeted FGSM over the whole test split: sources are all categories
    // except the target.
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        None,
        &mut rng,
    );
    eprintln!(
        "targeted adversarial accuracy: {:.2}% (paper: 94.04%), {} successful AEs",
        report.targeted_accuracy * 100.0,
        report.examples.len()
    );
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0x7AB4));
    let clean_target: Vec<LabeledSample> = prep
        .clean_test
        .iter()
        .filter(|s| s.true_class == target)
        .cloned()
        .collect();

    section(&format!(
        "Table 2: per-category accuracy / F1 per event (S2, targeted FGSM ε=0.5, target '{}')",
        names[target]
    ));
    let events = HpcEvent::CORE;
    print!("{:<12}", "category");
    for e in &events {
        print!(" | {:^20}", e.perf_name());
    }
    println!();
    print!("{:-<12}", "");
    for _ in &events {
        print!("-+-{:-<20}", "");
    }
    println!();

    let mut overall: Vec<BinaryConfusion> = vec![BinaryConfusion::default(); events.len()];
    for category in 0..art.num_classes() {
        if category == target {
            continue;
        }
        let adv_cat = by_true_class(&adv, category);
        if adv_cat.is_empty() {
            println!("{:<12} | (no successful AEs)", names[category]);
            continue;
        }
        print!("{:<12}", names[category]);
        for (i, event) in events.iter().enumerate() {
            let c = detection_confusion(&prep.detector, *event, &clean_target, &adv_cat);
            overall[i].merge(&c);
            print!(" | {:>7.2}%  F1 {:.4}", c.accuracy() * 100.0, c.f1());
        }
        println!();
    }

    print!("{:<12}", "overall");
    for (i, _) in events.iter().enumerate() {
        print!(
            " | {:>7.2}%  F1 {:.4}",
            overall[i].accuracy() * 100.0,
            overall[i].f1()
        );
    }
    println!();
    println!(
        "{:<12} | {:>7}%  F1 {:<6} | {:>7}%  F1 {:<6} | {:>7}%  F1 {:<6} | {:>7}%  F1 {:<6} | {:>7}%  F1 {:<6}",
        "paper", 50.14, 0.0515, 49.97, 0.0446, 50.29, 0.0572, 55.02, 0.1947, 98.98, 0.9892
    );
    println!(
        "\nShape check: cache-misses must dominate; control-flow events must be\n\
         near chance; cache-references sits slightly above chance."
    );
}
