//! Thread-scaling benchmark for the parallel runtime: offline-phase
//! template collection, GMM-bank fitting, and batched online scoring at
//! 1/2/4/8 worker threads.
//!
//! Every stage is seed-deterministic and thread-count invariant, so the
//! different thread counts here compute *identical* results — the only
//! thing that changes is wall-clock time. On a single-core container the
//! curves are flat (or slightly worse with threads); on real multi-core
//! hardware the offline stages scale near-linearly because each item owns
//! its trace simulator or EM fit outright.

use advhunter::offline::collect_template;
use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate, Parallelism};
use advhunter_data::Dataset;
use advhunter_exec::TraceEngine;
use advhunter_nn::{Graph, GraphBuilder};
use advhunter_tensor::init;
use advhunter_uarch::{HpcEvent, HpcSample};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn toy_setup() -> (Graph, TraceEngine, Dataset) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut b = GraphBuilder::new(&[1, 8, 8]);
    let input = b.input();
    let c1 = b.conv2d("c1", input, 8, 3, 1, 1, &mut rng);
    let r1 = b.relu("r1", c1);
    let c2 = b.conv2d("c2", r1, 8, 3, 1, 1, &mut rng);
    let r2 = b.relu("r2", c2);
    let g = b.global_avgpool("g", r2);
    b.linear("fc", g, 2, &mut rng);
    let model = b.build();
    let engine = TraceEngine::new(&model);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..32 {
        images.push(init::uniform(&mut rng, &[1, 8, 8], 0.0, 1.0));
        labels.push(i % 2);
    }
    (model, engine, Dataset::new("scaling", images, labels, 2))
}

fn synthetic_template(classes: usize, samples_per_class: usize) -> OfflineTemplate {
    let mut rng = StdRng::seed_from_u64(1);
    let per_class = (0..classes)
        .map(|c| {
            (0..samples_per_class)
                .map(|_| {
                    let mut s = HpcSample::default();
                    s.set(
                        HpcEvent::CacheMisses,
                        10_000.0 + c as f64 * 1_000.0 + rng.gen_range(-250.0..250.0),
                    );
                    s.set(
                        HpcEvent::Instructions,
                        1e6 + c as f64 * 1e4 + rng.gen_range(-4e3..4e3),
                    );
                    s.set(HpcEvent::Branches, 2e5 + rng.gen_range(-1e3..1e3));
                    s
                })
                .collect()
        })
        .collect();
    OfflineTemplate::from_samples(per_class)
}

/// Offline stage 1: per-image instrumented traces over the worker pool.
fn bench_collect_template(c: &mut Criterion) {
    let (model, engine, ds) = toy_setup();
    for threads in THREAD_COUNTS {
        let opts = ExecOptions::seeded(7).with_threads(threads);
        c.bench_function(&format!("offline/collect_template/{threads}t"), |b| {
            b.iter(|| {
                black_box(collect_template(
                    &engine,
                    &model,
                    black_box(&ds),
                    None,
                    &opts,
                ))
            })
        });
    }
}

/// Offline stage 2: the per-(class, event) GMM bank fit.
fn bench_fit_gmm_bank(c: &mut Criterion) {
    let template = synthetic_template(10, 60);
    let config = DetectorConfig::default();
    for threads in THREAD_COUNTS {
        let opts = ExecOptions::seeded(7).with_threads(threads);
        c.bench_function(&format!("offline/fit_gmm_bank/{threads}t"), |b| {
            b.iter(|| black_box(Detector::fit(black_box(&template), &config, &opts).unwrap()))
        });
    }
}

/// Online phase: batched NLL scoring of many queries.
fn bench_score_batch(c: &mut Criterion) {
    let template = synthetic_template(10, 60);
    let detector = Detector::fit(
        &template,
        &DetectorConfig::default(),
        &ExecOptions::sequential(7),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let queries: Vec<(usize, HpcSample)> = (0..8_192)
        .map(|i| {
            let mut s = HpcSample::default();
            s.set(
                HpcEvent::CacheMisses,
                9_000.0 + rng.gen_range(0.0..12_000.0),
            );
            (i % 10, s)
        })
        .collect();
    for threads in THREAD_COUNTS {
        let parallelism = Parallelism::new(threads);
        c.bench_function(&format!("online/score_batch_8k/{threads}t"), |b| {
            b.iter(|| {
                black_box(detector.score_batch(
                    black_box(&queries),
                    HpcEvent::CacheMisses,
                    &parallelism,
                ))
            })
        });
    }
}

/// Raw batched measurement throughput (trace simulation dominated).
fn bench_measure_batch(c: &mut Criterion) {
    let (model, engine, ds) = toy_setup();
    let images = &ds.images()[..16];
    for threads in THREAD_COUNTS {
        let parallelism = Parallelism::new(threads);
        c.bench_function(&format!("exec/measure_batch_16/{threads}t"), |b| {
            b.iter(|| black_box(engine.measure_batch(&model, black_box(images), 7, &parallelism)))
        });
    }
}

criterion_group!(
    benches,
    bench_collect_template,
    bench_fit_gmm_bank,
    bench_score_batch,
    bench_measure_batch
);
criterion_main!(benches);
