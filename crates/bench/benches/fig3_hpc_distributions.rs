//! Figure 3: distributions of HPC events for clean inputs and their
//! adversarial counterparts in scenario S2 under targeted FGSM (ε = 0.5).
//!
//! The paper's observation: `branches` and `branch-misses` overlap almost
//! completely, `cache-references` overlaps a little less, and
//! `cache-misses` separates clearly — and every event's per-class values
//! look like a mixture of Gaussians (motivating the GMM).

use advhunter::experiment::measure_examples;
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{
    distribution_overlap, prepare_detector, prepare_scenario, render_two_histograms, scaled,
    section,
};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(60, 20)), 0xF163);
    let mut rng = StdRng::seed_from_u64(0xF164);
    let target = art.target_class();

    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(200, 40)),
        &mut rng,
    );
    eprintln!(
        "targeted FGSM eps=0.5: targeted accuracy {:.2}% (paper: 94.04%)",
        report.targeted_accuracy * 100.0
    );
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xF165));
    let clean: Vec<_> = prep
        .clean_test
        .iter()
        .filter(|s| s.true_class == target && s.predicted == target)
        .cloned()
        .collect();

    section("Figure 3: HPC event distributions, clean vs adversarial (S2, targeted FGSM ε=0.5)");
    // The paper plots branches, branch-misses, cache-references,
    // cache-misses (instructions behaves like branches).
    let events = [
        HpcEvent::Branches,
        HpcEvent::BranchMisses,
        HpcEvent::CacheReferences,
        HpcEvent::CacheMisses,
    ];
    let paper_note = [
        "paper: substantial overlap",
        "paper: substantial overlap",
        "paper: marginally reduced overlap",
        "paper: significant distinction",
    ];
    for (event, note) in events.iter().zip(paper_note) {
        let c: Vec<f64> = clean.iter().map(|s| s.sample.get(*event)).collect();
        let a: Vec<f64> = adv.iter().map(|s| s.sample.get(*event)).collect();
        println!(
            "\n--- {} (overlap {:.2}; {note}) ---",
            event.perf_name(),
            distribution_overlap(&c, &a, 16)
        );
        print!(
            "{}",
            render_two_histograms("clean", &c, "adversarial", &a, 12)
        );
    }
}
