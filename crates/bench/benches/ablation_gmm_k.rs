//! Ablation (beyond the paper): BIC-selected GMM component count versus a
//! fixed K.
//!
//! The paper motivates BIC selection (§5.3) but never quantifies it; this
//! harness compares detection quality with K fixed at 1, 2, and 4 against
//! the BIC-selected default, using S2 / targeted FGSM ε = 0.5 /
//! cache-misses.

use advhunter::experiment::{detection_confusion, measure_examples};
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0xAB10);
    let mut rng = StdRng::seed_from_u64(0xAB11);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(200, 40)),
        &mut rng,
    );
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xAB12));

    section("Ablation: GMM component count (S2, targeted FGSM ε=0.5, cache-misses)");
    println!("{:<12} {:>10} {:>10}", "components", "accuracy%", "F1");
    let mut configs: Vec<(String, DetectorConfig)> = vec![(
        "BIC (1..=4)".to_string(),
        DetectorConfig {
            events: vec![HpcEvent::CacheMisses],
            ..DetectorConfig::default()
        },
    )];
    for k in [1usize, 2, 4] {
        configs.push((
            format!("fixed K={k}"),
            DetectorConfig {
                events: vec![HpcEvent::CacheMisses],
                k_range: k..=k,
                ..DetectorConfig::default()
            },
        ));
    }
    for (name, cfg) in configs {
        let detector = Detector::fit(&prep.template, &cfg, &ExecOptions::seeded(0xAB13))
            .expect("detector fit");
        let c = detection_confusion(&detector, HpcEvent::CacheMisses, &prep.clean_test, &adv);
        println!(
            "{:<12} {:>10.2} {:>10.4}",
            name,
            c.accuracy() * 100.0,
            c.f1()
        );
    }
    println!(
        "\nExpectation: BIC matches or beats any fixed K, because per-class\n\
         modality varies (each class mixes several prototypes)."
    );
}
