//! Ablation (beyond the paper): hardware prefetching on vs. off.
//!
//! With the next-line prefetcher enabled, streaming weight fetches pull
//! extra lines into the LLC; `cache-references` inflates and the miss
//! pattern changes. This harness measures how much the detector cares,
//! using S2 / targeted FGSM ε = 0.5.

use advhunter::experiment::{detection_confusion, LabeledSample};
use advhunter::offline::collect_template;
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_scenario, scaled, section};
use advhunter_exec::TraceEngine;
use advhunter_uarch::{HpcEvent, MachineConfig, PrefetchConfig, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let mut rng = StdRng::seed_from_u64(0xAB50);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(150, 40)),
        &mut rng,
    );

    section("Ablation: hardware prefetcher (S2, targeted FGSM ε=0.5)");
    println!(
        "{:<16} {:>22} {:>10} {:>8}",
        "prefetcher", "event", "accuracy%", "F1"
    );
    for (name, prefetch) in [
        ("off (default)", PrefetchConfig::default()),
        ("aggressive", PrefetchConfig::aggressive()),
    ] {
        let machine = MachineConfig {
            prefetch,
            ..MachineConfig::default()
        };
        let engine = TraceEngine::with_config(&art.model, machine, Sampler::default());
        let mut r = StdRng::seed_from_u64(0xAB51);
        let opts = ExecOptions::seeded(0xAB51);
        let template = collect_template(&engine, &art.model, &art.split.val, None, &opts.stage(0));
        let detector = Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))
            .expect("detector fit");
        let measure =
            |img: &advhunter_tensor::Tensor, label: usize, r: &mut StdRng| -> LabeledSample {
                let m = engine.measure(&art.model, img, r);
                LabeledSample {
                    true_class: label,
                    predicted: m.predicted,
                    sample: m.sample,
                }
            };
        let clean: Vec<LabeledSample> = (0..art.split.test.len())
            .take(scaled(300, 80))
            .map(|i| {
                let (img, label) = art.split.test.item(i);
                measure(img, label, &mut r)
            })
            .collect();
        let adv: Vec<LabeledSample> = report
            .examples
            .iter()
            .map(|ex| measure(&ex.image, ex.original_label, &mut r))
            .collect();
        for event in [HpcEvent::CacheMisses, HpcEvent::CacheReferences] {
            let c = detection_confusion(&detector, event, &clean, &adv);
            println!(
                "{:<16} {:>22} {:>10.2} {:>8.4}",
                name,
                event.perf_name(),
                c.accuracy() * 100.0,
                c.f1()
            );
        }
    }
    println!(
        "\nExpectation: detection via cache-misses survives prefetching\n\
         (compulsory weight misses still dominate); cache-references gains\n\
         extra prefetch traffic."
    );
}
