//! Sustained throughput of the online monitor service at 1/2/4 worker
//! threads, against the single-image `measure` rate as the scaling
//! baseline.
//!
//! Like `bench_inference_throughput` this harness does its own timing and
//! writes a machine-readable `BENCH_monitor.json` at the repo root. The
//! target on a machine with enough cores is sustained monitor throughput
//! ≥ single-image rate × 0.9 × threads: micro-batch coalescing plus the
//! per-worker scratch pool should make service overhead (queue, channel,
//! telemetry) disappear next to the trace simulation itself.
//!
//! `ADVHUNTER_MONITOR_N` overrides the stream length (default 256).

use std::time::Instant;

use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate};
use advhunter_exec::TraceEngine;
use advhunter_monitor::{Monitor, MonitorConfig, OverloadPolicy};
use advhunter_nn::models;
use advhunter_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLASSES: usize = 10;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn stream_len() -> usize {
    std::env::var("ADVHUNTER_MONITOR_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// A fitted detector for the benchmark model, built from measured traces
/// of random images binned round-robin into categories. (The detector's
/// quality is irrelevant here — only the work per request matters.)
fn fitted_detector(engine: &TraceEngine, model: &advhunter_nn::Graph) -> Detector {
    let mut rng = StdRng::seed_from_u64(2);
    let images: Vec<Tensor> = (0..CLASSES * 12)
        .map(|_| init::uniform(&mut rng, &[3, 32, 32], 0.0, 1.0))
        .collect();
    let opts = ExecOptions::seeded(3);
    let measurements = engine.measure_batch(model, &images, opts.seed, &opts.parallelism);
    let mut per_class = vec![Vec::new(); CLASSES];
    for (i, m) in measurements.iter().enumerate() {
        per_class[i % CLASSES].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))
        .expect("detector fit on synthetic template")
}

fn main() {
    let n = stream_len();
    let mut rng = StdRng::seed_from_u64(1);
    let model = models::case_study_cnn(&[3, 32, 32], CLASSES, &mut rng);
    let images: Vec<Tensor> = (0..n)
        .map(|_| init::uniform(&mut rng, &[3, 32, 32], 0.0, 1.0))
        .collect();

    advhunter_bench::section("Online monitor throughput (case-study CNN, 3x32x32)");

    // Baseline: raw single-image measurement rate, no service in the way.
    let engine = TraceEngine::new(&model);
    let warmup = engine.measure_indexed(&model, &images[0], 7, 0);
    std::hint::black_box(&warmup);
    let t0 = Instant::now();
    let single_probe = 32.min(n);
    for (i, image) in images.iter().take(single_probe).enumerate() {
        std::hint::black_box(engine.measure_indexed(&model, image, 7, i as u64));
    }
    let single_us = t0.elapsed().as_secs_f64() * 1e6 / single_probe as f64;
    let single_per_s = 1e6 / single_us;
    println!("measure/single_image: {single_us:>10.1} µs  {single_per_s:>8.1} images/s");

    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let engine = TraceEngine::new(&model);
        let detector = fitted_detector(&engine, &model);
        let config = MonitorConfig::new(ExecOptions::seeded(7).with_threads(threads))
            .with_queue_capacity(n.max(1))
            .with_micro_batch(16)
            .with_overload(OverloadPolicy::Block);
        let monitor =
            Monitor::spawn(engine, model.clone(), detector, config).expect("spawn monitor");

        let t0 = Instant::now();
        for image in &images {
            monitor.submit(image.clone()).expect("submit");
        }
        monitor.close();
        let mut received = 0usize;
        while let Some(v) = monitor.recv() {
            std::hint::black_box(&v.verdict);
            received += 1;
        }
        let elapsed = t0.elapsed();
        assert_eq!(received, n, "monitor must deliver one verdict per request");
        let stats = monitor.shutdown();
        let per_s = n as f64 / elapsed.as_secs_f64();
        let target = single_per_s * 0.9 * threads as f64;
        println!(
            "monitor/{threads}t: {per_s:>8.1} images/s over {n} requests \
             ({} micro-batches, target {target:.1}/s, {:.2}x of target)",
            stats.batches,
            per_s / target,
        );
        rows.push((threads, per_s, target, elapsed));
    }

    let mut json = String::from("{\n  \"benchmark\": \"monitor_throughput\",\n");
    json.push_str(&format!("  \"stream_len\": {n},\n"));
    json.push_str(&format!("  \"single_image_us\": {single_us:.1},\n"));
    json.push_str(&format!("  \"single_image_per_s\": {single_per_s:.1},\n"));
    for (threads, per_s, target, elapsed) in &rows {
        json.push_str(&format!(
            "  \"monitor_{threads}t_per_s\": {per_s:.1},\n  \
             \"monitor_{threads}t_target_per_s\": {target:.1},\n  \
             \"monitor_{threads}t_elapsed_ms\": {},\n",
            elapsed.as_millis()
        ));
    }
    json.push_str(&format!(
        "  \"available_parallelism\": {}\n}}\n",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_monitor.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
