//! Sustained throughput of the online monitor service at 1/2/4 worker
//! threads, against the single-image `measure` rate as the scaling
//! baseline — plus a *simulated-multicore* mode that proves the worker
//! loop's measurement stage shares no `&mut` engine state across
//! workers.
//!
//! Like `bench_inference_throughput` this harness does its own timing and
//! writes a machine-readable `BENCH_monitor.json` at the repo root. The
//! target on a machine with enough cores is sustained monitor throughput
//! ≥ single-image rate × 0.9 × threads: micro-batch coalescing plus the
//! per-worker scratch pool should make service overhead (queue, channel,
//! telemetry) disappear next to the trace simulation itself.
//!
//! # Simulated multicore
//!
//! CI boxes rarely have 4 idle cores, so real-thread scaling numbers are
//! noisy there. The sim mode replays the worker loop's exact per-batch
//! structure on one thread: requests are dealt round-robin onto W virtual
//! cores, each virtual core measures its share sequentially with its own
//! pooled scratch (`worker_scratch` + `measure_indexed_with` — the same
//! calls the service's measurement fan-out makes), and the simulated
//! batch wall-time is the *max* over the cores' sequential times plus the
//! sequential scoring stage. Because measurement takes no `&mut` shared
//! state, the only serial parts are scoring and queue bookkeeping — so
//! simulated speedup at 4 workers must approach 4×.
//!
//! `ADVHUNTER_MONITOR_N` overrides the stream length (default 256);
//! `ADVHUNTER_MONITOR_ASSERT=1` makes the run fail unless the simulated
//! 4-worker speedup over 1 worker is ≥ 1.8×.

use std::time::Instant;

use advhunter::{Detector, DetectorConfig, ExecOptions, OfflineTemplate};
use advhunter_exec::TraceEngine;
use advhunter_monitor::{MonitorBuilder, OverloadPolicy};
use advhunter_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLASSES: usize = 10;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SIM_WORKERS: [usize; 3] = [1, 2, 4];
const MICRO_BATCH: usize = 16;

fn stream_len() -> usize {
    std::env::var("ADVHUNTER_MONITOR_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// A fitted detector for the benchmark model, built from measured traces
/// of random images binned round-robin into categories. (The detector's
/// quality is irrelevant here — only the work per request matters.)
fn fitted_detector(engine: &TraceEngine, model: &advhunter_nn::Graph) -> Detector {
    let mut rng = StdRng::seed_from_u64(2);
    let images: Vec<Tensor> = (0..CLASSES * 12)
        .map(|_| init::uniform(&mut rng, &[3, 32, 32], 0.0, 1.0))
        .collect();
    let opts = ExecOptions::seeded(3);
    let measurements = engine.measure_batch(model, &images, opts.seed, &opts.parallelism);
    let mut per_class = vec![Vec::new(); CLASSES];
    for (i, m) in measurements.iter().enumerate() {
        per_class[i % CLASSES].push(m.sample);
    }
    let template = OfflineTemplate::from_samples(per_class);
    Detector::fit(&template, &DetectorConfig::default(), &opts.stage(1))
        .expect("detector fit on synthetic template")
}

/// Replays the worker loop's batch structure on W virtual cores and
/// returns the simulated wall-clock seconds for the whole stream.
fn simulate_workers(
    engine: &TraceEngine,
    model: &advhunter_nn::Graph,
    detector: &Detector,
    images: &[Tensor],
    workers: usize,
) -> f64 {
    let mut scratches: Vec<_> = (0..workers).map(|_| engine.worker_scratch(model)).collect();
    // Warm every virtual core's scratch so pool setup is off the clock.
    for scratch in &mut scratches {
        std::hint::black_box(engine.measure_indexed_with(model, &images[0], 7, 0, scratch));
    }
    let mut sim_wall = 0.0f64;
    let mut index = 0u64;
    let mut measurements = Vec::with_capacity(MICRO_BATCH);
    for batch in images.chunks(MICRO_BATCH) {
        // Measurement: round-robin deal onto virtual cores; each core's
        // share runs sequentially on its own scratch, so the simulated
        // parallel wall-time is the slowest core's total.
        let mut core_time = vec![0.0f64; workers];
        for (j, image) in batch.iter().enumerate() {
            let core = j % workers;
            let t = Instant::now();
            let m = engine.measure_indexed_with(model, image, 7, index, &mut scratches[core]);
            core_time[core] += t.elapsed().as_secs_f64();
            measurements.push(m);
            index += 1;
        }
        // Scoring stays sequential in the service (drift determinism),
        // so it counts fully against every worker count.
        let t = Instant::now();
        for m in &measurements {
            std::hint::black_box(detector.evaluate(m.predicted, &m.sample));
        }
        let score = t.elapsed().as_secs_f64();
        sim_wall += core_time.iter().copied().fold(0.0, f64::max) + score;
        measurements.clear();
    }
    sim_wall
}

fn main() {
    let n = stream_len();
    let mut rng = StdRng::seed_from_u64(1);
    let model = advhunter::scenario::ScenarioId::CaseStudy
        .spec()
        .build_graph(&mut rng)
        .expect("checked-in spec compiles");
    let images: Vec<Tensor> = (0..n)
        .map(|_| init::uniform(&mut rng, &[3, 32, 32], 0.0, 1.0))
        .collect();

    advhunter_bench::section("Online monitor throughput (case-study CNN, 3x32x32)");

    // Baseline: raw single-image measurement rate, no service in the way.
    let engine = TraceEngine::new(&model);
    let warmup = engine.measure_indexed(&model, &images[0], 7, 0);
    std::hint::black_box(&warmup);
    let t0 = Instant::now();
    let single_probe = 32.min(n);
    for (i, image) in images.iter().take(single_probe).enumerate() {
        std::hint::black_box(engine.measure_indexed(&model, image, 7, i as u64));
    }
    let single_us = t0.elapsed().as_secs_f64() * 1e6 / single_probe as f64;
    let single_per_s = 1e6 / single_us;
    println!("measure/single_image: {single_us:>10.1} µs  {single_per_s:>8.1} images/s");

    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let engine = TraceEngine::new(&model);
        let detector = fitted_detector(&engine, &model);
        let monitor = MonitorBuilder::new(ExecOptions::seeded(7).with_threads(threads))
            .queue_capacity(n.max(1))
            .micro_batch(MICRO_BATCH)
            .overload(OverloadPolicy::Block)
            .spawn(engine, model.clone(), detector)
            .expect("spawn monitor");

        let t0 = Instant::now();
        for image in &images {
            monitor.submit(image.clone()).expect("submit");
        }
        monitor.close();
        let mut received = 0usize;
        while let Some(v) = monitor.recv() {
            std::hint::black_box(&v.verdict);
            received += 1;
        }
        let elapsed = t0.elapsed();
        assert_eq!(received, n, "monitor must deliver one verdict per request");
        let stats = monitor.shutdown();
        let per_s = n as f64 / elapsed.as_secs_f64();
        let target = single_per_s * 0.9 * threads as f64;
        println!(
            "monitor/{threads}t: {per_s:>8.1} images/s over {n} requests \
             ({} micro-batches, target {target:.1}/s, {:.2}x of target)",
            stats.batches,
            per_s / target,
        );
        rows.push((threads, per_s, target, elapsed));
    }

    // Simulated multicore: the same per-batch structure, virtual cores.
    let engine = TraceEngine::new(&model);
    let detector = fitted_detector(&engine, &model);
    let mut sim_rows = Vec::new();
    for workers in SIM_WORKERS {
        let sim_wall = simulate_workers(&engine, &model, &detector, &images, workers);
        let per_s = n as f64 / sim_wall;
        println!("monitor/sim_{workers}w: {per_s:>8.1} images/s (simulated wall {sim_wall:.3}s)");
        sim_rows.push((workers, per_s, sim_wall));
    }
    let sim_1w = sim_rows
        .iter()
        .find(|(w, _, _)| *w == 1)
        .map_or(0.0, |(_, per_s, _)| *per_s);
    let sim_4w = sim_rows
        .iter()
        .find(|(w, _, _)| *w == 4)
        .map_or(0.0, |(_, per_s, _)| *per_s);
    let sim_speedup = if sim_1w > 0.0 { sim_4w / sim_1w } else { 0.0 };
    println!("monitor/sim_speedup_4w_over_1w: {sim_speedup:.2}x");
    if std::env::var("ADVHUNTER_MONITOR_ASSERT").as_deref() == Ok("1") {
        assert!(
            sim_speedup >= 1.8,
            "simulated 4-worker speedup {sim_speedup:.2}x below the 1.8x floor: \
             the measurement stage is sharing mutable engine state"
        );
        println!("sim scaling assertion passed (>= 1.8x)");
    }

    let mut json = String::from("{\n  \"benchmark\": \"monitor_throughput\",\n");
    json.push_str(&format!("  \"stream_len\": {n},\n"));
    json.push_str(&format!("  \"single_image_us\": {single_us:.1},\n"));
    json.push_str(&format!("  \"single_image_per_s\": {single_per_s:.1},\n"));
    for (threads, per_s, target, elapsed) in &rows {
        json.push_str(&format!(
            "  \"monitor_{threads}t_per_s\": {per_s:.1},\n  \
             \"monitor_{threads}t_target_per_s\": {target:.1},\n  \
             \"monitor_{threads}t_elapsed_ms\": {},\n",
            elapsed.as_millis()
        ));
    }
    for (workers, per_s, sim_wall) in &sim_rows {
        json.push_str(&format!(
            "  \"sim_monitor_{workers}w_per_s\": {per_s:.1},\n  \
             \"sim_monitor_{workers}w_wall_ms\": {:.1},\n",
            sim_wall * 1e3
        ));
    }
    json.push_str(&format!(
        "  \"sim_speedup_4w_over_1w\": {sim_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"available_parallelism\": {}\n}}\n",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_monitor.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
