//! Table 3: detection F1 for the four cache-related HPC events across
//! untargeted FGSM strengths in scenario S2.
//!
//! Paper reference (ε = 0.01 / 0.05 / 0.1 on real CIFAR-10):
//! L1-dcache-load-misses 0.7696 / 0.7258 / 0.6748, L1-icache-load-misses
//! 0.0547 / 0.0622 / 0.0564, LLC-load-misses 0.9394 / 0.7938 / 0.3595,
//! LLC-store-misses 0.3214 / 0.3347 / 0.2113. The synthetic substrate maps
//! the sweep to ε = 0.05 / 0.10 / 0.20 (see EXPERIMENTS.md); the shape to
//! check is the events' ordering: data-cache events carry signal, the
//! instruction cache does not.

use advhunter::experiment::run_attack_detection;
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0x7AB3_0003);
    let mut rng = StdRng::seed_from_u64(0x7AB3_0004);

    let epsilons = [0.05f32, 0.10, 0.20];
    let events = HpcEvent::CACHE_ABLATION;
    let mut table = vec![vec![0.0f64; epsilons.len()]; events.len()];
    let mut adv_acc = vec![0.0f32; epsilons.len()];

    for (j, &eps) in epsilons.iter().enumerate() {
        let run = run_attack_detection(
            &art,
            &prep.detector,
            &Attack::fgsm(eps),
            AttackGoal::Untargeted,
            &events,
            Some(scaled(250, 50)),
            &prep.clean_test,
            &mut rng,
            &ExecOptions::seeded(0x7AB3_0005),
        );
        adv_acc[j] = run.adversarial_accuracy;
        for (i, ev) in run.per_event.iter().enumerate() {
            table[i][j] = ev.f1();
        }
    }

    section("Table 3: F1 per cache-related event vs untargeted FGSM strength (S2)");
    print!("{:<24}", "event \\ eps");
    for &eps in &epsilons {
        print!(" {:>10.2}", eps);
    }
    println!("     paper (ε=.01/.05/.1)");
    let paper = [
        [0.7696, 0.7258, 0.6748],
        [0.0547, 0.0622, 0.0564],
        [0.9394, 0.7938, 0.3595],
        [0.3214, 0.3347, 0.2113],
    ];
    for (i, event) in events.iter().enumerate() {
        print!("{:<24}", event.perf_name());
        for j in 0..epsilons.len() {
            print!(" {:>10.4}", table[i][j]);
        }
        println!(
            "     {:.4} / {:.4} / {:.4}",
            paper[i][0], paper[i][1], paper[i][2]
        );
    }
    print!("{:<24}", "(model adv-accuracy %)");
    for &a in &adv_acc {
        print!(" {:>10.1}", a * 100.0);
    }
    println!();
}
