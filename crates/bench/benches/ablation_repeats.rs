//! Ablation (beyond the paper): measurement repetitions `R`.
//!
//! The paper fixes R = 10 (§6 setup) to average out background noise. This
//! harness sweeps R to show how much repetition the detector actually
//! needs on this substrate (S2, targeted FGSM ε = 0.5, cache-misses).

use advhunter::experiment::{detection_confusion, LabeledSample};
use advhunter::offline::collect_template;
use advhunter::scenario::ScenarioId;
use advhunter::{Detector, DetectorConfig, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_scenario, scaled, section};
use advhunter_exec::TraceEngine;
use advhunter_uarch::{HpcEvent, MachineConfig, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let mut rng = StdRng::seed_from_u64(0xAB30);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(150, 40)),
        &mut rng,
    );

    section("Ablation: measurement repetitions R (S2, targeted FGSM ε=0.5, cache-misses)");
    println!("{:<4} {:>10} {:>10}", "R", "accuracy%", "F1");
    for repeats in [1usize, 3, 5, 10, 20] {
        let engine = TraceEngine::with_config(
            &art.model,
            MachineConfig::default(),
            Sampler {
                repeats,
                ..Sampler::default()
            },
        );
        let mut r = StdRng::seed_from_u64(0xAB31 + repeats as u64);
        let opts = ExecOptions::seeded(0xAB31 + repeats as u64);
        let template = collect_template(&engine, &art.model, &art.split.val, None, &opts.stage(0));
        let cfg = DetectorConfig {
            events: vec![HpcEvent::CacheMisses],
            ..DetectorConfig::default()
        };
        let detector = Detector::fit(&template, &cfg, &opts.stage(1)).expect("detector fit");

        let clean: Vec<LabeledSample> = (0..art.split.test.len())
            .take(scaled(400, 100))
            .map(|i| {
                let (img, label) = art.split.test.item(i);
                let m = engine.measure(&art.model, img, &mut r);
                LabeledSample {
                    true_class: label,
                    predicted: m.predicted,
                    sample: m.sample,
                }
            })
            .collect();
        let adv: Vec<LabeledSample> = report
            .examples
            .iter()
            .map(|ex| {
                let m = engine.measure(&art.model, &ex.image, &mut r);
                LabeledSample {
                    true_class: ex.original_label,
                    predicted: m.predicted,
                    sample: m.sample,
                }
            })
            .collect();
        let c = detection_confusion(&detector, HpcEvent::CacheMisses, &clean, &adv);
        println!(
            "{:<4} {:>10.2} {:>10.4}",
            repeats,
            c.accuracy() * 100.0,
            c.f1()
        );
    }
    println!(
        "\nExpectation: F1 improves with R and saturates near the paper's\n\
         R = 10; single-shot measurement (R = 1) pays a noise penalty."
    );
}
