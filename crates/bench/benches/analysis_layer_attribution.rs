//! Analysis (beyond the paper): which layer carries the cache-miss signal,
//! and why minimally-perturbed attacks can hide from it.
//!
//! For clean 'frog' images, FGSM ε=0.5 AEs, and PGD ε=0.2 AEs (all
//! predicted 'frog'), this harness attributes the cache-miss count to each
//! node and prints the mean per-layer deltas relative to clean. FGSM's
//! saturating perturbations shift *every* layer; PGD converges into the
//! target basin, so its late-layer footprint matches clean target images —
//! explaining its low detectability on this substrate (EXPERIMENTS.md).

use advhunter::scenario::ScenarioId;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_scenario, scaled, section};
use advhunter_tensor::Tensor;
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_per_node(art: &advhunter::scenario::ScenarioArtifacts, images: &[Tensor]) -> Vec<f64> {
    let n_nodes = art.model.nodes().len();
    let mut sums = vec![0.0f64; n_nodes];
    for img in images {
        let attribution = art.engine.attribute(&art.model, img);
        for (i, node) in attribution.nodes.iter().enumerate() {
            sums[i] += node.counts.get(HpcEvent::CacheMisses) as f64;
        }
    }
    for s in &mut sums {
        *s /= images.len().max(1) as f64;
    }
    sums
}

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let mut rng = StdRng::seed_from_u64(0xA77B);
    let target = art.target_class();
    let budget = scaled(40, 10);

    let clean: Vec<Tensor> = (0..art.split.test.len())
        .filter_map(|i| {
            let (img, label) = art.split.test.item(i);
            (label == target).then(|| img.clone())
        })
        .take(budget)
        .collect();
    let fgsm = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(budget * 2),
        &mut rng,
    );
    let pgd = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::pgd(0.2),
        AttackGoal::Targeted(target),
        Some(budget),
        &mut rng,
    );
    let fgsm_imgs: Vec<Tensor> = fgsm.examples.iter().map(|e| e.image.clone()).collect();
    let pgd_imgs: Vec<Tensor> = pgd.examples.iter().map(|e| e.image.clone()).collect();

    let clean_mean = mean_per_node(&art, &clean);
    let fgsm_mean = mean_per_node(&art, &fgsm_imgs);
    let pgd_mean = mean_per_node(&art, &pgd_imgs);

    section("Analysis: per-layer cache-miss attribution (S2, clean vs FGSM ε=0.5 vs PGD ε=0.2)");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "node", "clean", "FGSM", "Δ FGSM", "PGD", "Δ PGD"
    );
    for (i, node) in art.model.nodes().iter().enumerate() {
        if clean_mean[i] < 1.0 {
            continue; // skip nodes with no memory traffic
        }
        println!(
            "{:<18} {:>10.0} {:>12.0} {:>+12.0} {:>12.0} {:>+12.0}",
            node.name,
            clean_mean[i],
            fgsm_mean[i],
            fgsm_mean[i] - clean_mean[i],
            pgd_mean[i],
            pgd_mean[i] - clean_mean[i],
        );
    }
    let total = |v: &[f64]| v.iter().sum::<f64>();
    println!(
        "{:<18} {:>10.0} {:>12.0} {:>+12.0} {:>12.0} {:>+12.0}",
        "TOTAL",
        total(&clean_mean),
        total(&fgsm_mean),
        total(&fgsm_mean) - total(&clean_mean),
        total(&pgd_mean),
        total(&pgd_mean) - total(&clean_mean),
    );
    println!(
        "\nReading: FGSM shifts the totals far outside the clean distribution;\n\
         PGD's per-layer profile hugs the clean one (late layers converge to\n\
         target-typical activations), which is why count-based single-event\n\
         detection struggles against it here."
    );
}
