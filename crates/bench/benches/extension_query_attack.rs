//! Extension: an iterative query-based adversary vs. the fused defense.
//!
//! The paper's HPC detector scores each inference in isolation; a
//! query-based black-box attack (NES, Ilyas et al. 2018) additionally
//! leaks a *temporal* signal — every gradient estimate is a burst of
//! near-duplicate queries. This harness replays full NES attack traces
//! plus a clean query stream through the online monitor with the
//! fingerprint defense enabled, and reports the per-query flag rates of
//! each signal alone and fused (the EXPERIMENTS.md table): HPC-only sees
//! individual perturbed inferences, fingerprint-only sees query
//! correlation, and OR-fusion dominates both by construction.

use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{nes_perturb_recorded, AttackGoal, NesParams};
use advhunter_bench::{prepare_detector, prepare_scenario_sized, scaled, section};
use advhunter_data::SplitSizes;
use advhunter_monitor::{FingerprintConfig, FusionPolicy, MonitorBuilder, MonitorRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-query flag counts of one traffic class (clean or attack).
#[derive(Default)]
struct Tally {
    seen: u64,
    hpc: u64,
    fp: u64,
    or: u64,
    and: u64,
}

impl Tally {
    fn rate(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 * 100.0 / den as f64
        }
    }
}

fn main() {
    let art = prepare_scenario_sized(
        ScenarioId::CaseStudy,
        Some(SplitSizes {
            train: 30,
            val: 40,
            test: 10,
        }),
    );
    let prep = prepare_detector(&art, None, None, 0xF1D0);
    let mut rng = StdRng::seed_from_u64(0xF1D1);

    // A low-σ NES attacker: search perturbations well under the defender's
    // quantization step, i.e. an adversary already trying to fly below a
    // pixel-similarity radar.
    let params = NesParams {
        epsilon: 0.05,
        sigma: 0.002,
        learning_rate: 0.01,
        samples: 6,
        steps: 12,
    };
    let n_traces = scaled(3, 2);
    let mut traces = Vec::new();
    for (i, image) in art.split.test.images().iter().take(n_traces).enumerate() {
        let label = art.split.test.labels()[i];
        traces.push(nes_perturb_recorded(
            &art.model,
            image,
            label,
            AttackGoal::Untargeted,
            &params,
            &mut rng,
        ));
    }
    let attack_queries: usize = traces
        .iter()
        .map(advhunter_attacks::NesTrace::queries_issued)
        .sum();
    let n_clean = scaled(24, 12).min(art.split.test.images().len());

    // The defense: quantization coarse enough to collapse σ-scale noise,
    // a window long enough to hold a whole gradient burst, and a
    // correlation threshold tuned to the min-hash Jaccard of antithetic
    // probe pairs.
    let mut fp = FingerprintConfig::default();
    fp.quant_step = 0.1;
    fp.probe_window = 8;
    fp.stride = 2;
    fp.window = 2048;
    fp.match_threshold = 0.25;
    let monitor = MonitorBuilder::new(ExecOptions::seeded(0xF1D2))
        .queue_capacity((n_clean + attack_queries).max(1))
        .micro_batch(16)
        .fingerprint(fp)
        .fusion(FusionPolicy::Or)
        .spawn(art.engine.clone(), art.model.clone(), prep.detector)
        .expect("spawn monitor");

    // Tenant 0 is a benign high-volume user; each attack trace replays
    // under its own tenant, exactly as the service would see it.
    let mut is_attack = Vec::new();
    for image in art.split.test.images().iter().take(n_clean) {
        monitor
            .submit(MonitorRequest::new(image.clone()).tenant(0))
            .expect("submit clean");
        is_attack.push(false);
    }
    for (t, trace) in traces.iter().enumerate() {
        for query in &trace.queries {
            monitor
                .submit(MonitorRequest::new(query.clone()).tenant(1 + t as u64))
                .expect("submit attack query");
            is_attack.push(true);
        }
    }
    monitor.close();

    let mut clean = Tally::default();
    let mut attack = Tally::default();
    while let Some(v) = monitor.recv() {
        let tally = if is_attack[usize::try_from(v.request_id).expect("id fits usize")] {
            &mut attack
        } else {
            &mut clean
        };
        tally.seen += 1;
        tally.hpc += u64::from(v.hpc_anomalous);
        tally.fp += u64::from(v.query_correlated);
        tally.or += u64::from(v.hpc_anomalous || v.query_correlated);
        tally.and += u64::from(v.hpc_anomalous && v.query_correlated);
    }
    let stats = monitor.shutdown();

    section("Extension: NES query attack vs fused HPC + fingerprint defense (CaseStudy)");
    println!(
        "{} clean queries (1 tenant) + {} NES queries ({} traces, {} successful, \
         sigma {}, eps {})",
        clean.seen,
        attack.seen,
        traces.len(),
        traces.iter().filter(|t| t.success).count(),
        params.sigma,
        params.epsilon
    );
    println!(
        "fingerprint: quant {}, probe_window {}, threshold {}, window {}; \
         {} matched, {} shed",
        fp.quant_step,
        fp.probe_window,
        fp.match_threshold,
        fp.window,
        stats.fingerprint_matched,
        stats.fingerprint_shed
    );
    println!(
        "\n{:<18} {:>14} {:>16}",
        "signal", "clean flag %", "attack flag %"
    );
    for (name, c, a) in [
        ("hpc-only", clean.hpc, attack.hpc),
        ("fingerprint-only", clean.fp, attack.fp),
        ("fused (OR)", clean.or, attack.or),
        ("fused (AND)", clean.and, attack.and),
    ] {
        println!(
            "{:<18} {:>14.1} {:>16.1}",
            name,
            Tally::rate(c, clean.seen),
            Tally::rate(a, attack.seen)
        );
    }
    println!(
        "\nReading: the HPC signal fires on perturbed inferences one at a\n\
         time and misses probes whose footprint stays inside the clean\n\
         distribution; the fingerprint signal is blind to any single query\n\
         but lights up the near-duplicate bursts every gradient estimate\n\
         must issue. OR-fusion therefore dominates both components on the\n\
         attack stream while its false-positive rate stays that of the HPC\n\
         signal alone (distinct clean queries never correlate)."
    );
}
