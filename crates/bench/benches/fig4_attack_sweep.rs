//! Figure 4: effectiveness of every attack configuration (model accuracy /
//! targeted accuracy) and AdvHunter's F1 using `cache-misses`, across
//! scenarios S1-S3, attacks FGSM/PGD/DeepFool, untargeted and targeted
//! variants, at three increasing strengths.
//!
//! Strength mapping: the paper's ε values were chosen for real datasets;
//! the synthetic stand-ins need larger ε for comparable attack success, so
//! each variant sweeps three increasing strengths calibrated to span weak →
//! strong on this substrate (see EXPERIMENTS.md). The reproduction targets
//! are the paper's trends: rising strength ⇒ lower model accuracy
//! (untargeted) / higher targeted accuracy (targeted), while AdvHunter's F1
//! stays high for every attack type.

use advhunter::experiment::run_attack_detection;
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    section("Figure 4: attack effectiveness and AdvHunter F1 (cache-misses)");
    println!(
        "{:<4} {:<9} {:<11} {:>7} | {:>10} {:>10} | {:>8} {:>6}",
        "scn", "attack", "variant", "eps", "adv-acc%", "tgt-acc%", "#AEs", "F1"
    );

    let untargeted_eps = [0.05f32, 0.10, 0.20];
    let targeted_eps = [0.20f32, 0.35, 0.50];
    let budget = scaled(120, 30);
    let df_budget = scaled(40, 12);

    for id in ScenarioId::TABLE1 {
        let art = prepare_scenario(id);
        let prep = prepare_detector(&art, None, Some(scaled(30, 10)), 0xF400);
        let mut rng = StdRng::seed_from_u64(0xF401);
        let target = id.target_class();

        let mut configs: Vec<(Attack, AttackGoal, usize)> = Vec::new();
        for &eps in &untargeted_eps {
            configs.push((Attack::fgsm(eps), AttackGoal::Untargeted, budget));
            configs.push((Attack::pgd(eps), AttackGoal::Untargeted, budget));
        }
        for &eps in &targeted_eps {
            configs.push((Attack::fgsm(eps), AttackGoal::Targeted(target), budget));
            configs.push((Attack::pgd(eps), AttackGoal::Targeted(target), budget));
        }
        // The paper's "PGD" citation (Dong et al.) is the momentum attack;
        // include it alongside the conventional PGD reading.
        configs.push((Attack::mi_fgsm(0.5), AttackGoal::Targeted(target), budget));
        configs.push((Attack::mi_fgsm(0.2), AttackGoal::Untargeted, budget));
        configs.push((Attack::deepfool(), AttackGoal::Untargeted, df_budget));
        configs.push((Attack::deepfool(), AttackGoal::Targeted(target), df_budget));

        for (attack, goal, max) in configs {
            let run = run_attack_detection(
                &art,
                &prep.detector,
                &attack,
                goal,
                &[HpcEvent::CacheMisses],
                Some(max),
                &prep.clean_test,
                &mut rng,
                &ExecOptions::seeded(0xF402),
            );
            let variant = match goal {
                AttackGoal::Untargeted => "untargeted",
                AttackGoal::Targeted(_) => "targeted",
            };
            let f1 = run.per_event[0].f1();
            println!(
                "{:<4} {:<9} {:<11} {:>7.2} | {:>10.1} {:>10.1} | {:>8} {:>6.3}",
                id.label(),
                run.attack_name,
                variant,
                run.strength,
                run.adversarial_accuracy * 100.0,
                run.targeted_accuracy * 100.0,
                run.num_adversarial,
                f1,
            );
        }
    }
    println!(
        "\nPaper trends to check: untargeted adv-acc falls and targeted tgt-acc\n\
         rises with strength; F1 (cache-misses) stays high for every attack."
    );
}
