//! Extension: a hard-label black-box adversary vs. the hard-label black-box
//! defender.
//!
//! The paper's adversary is white-box; this harness adds the symmetric
//! setting — a decision-based square attack that, like the defender, sees
//! only the model's predicted labels. Its perturbations start large (easy to
//! detect) and shrink through refinement (harder), probing where AdvHunter's
//! count-based signal fades.

use advhunter::experiment::{detection_confusion, measure_examples};
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal, SquareParams};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0xB1AC);
    let mut rng = StdRng::seed_from_u64(0xB1AD);

    section("Extension: decision-based (hard-label) square attack vs AdvHunter (S2)");
    println!(
        "{:<22} {:>8} {:>10} | {:>10} {:>8}",
        "refinement", "#AEs", "success%", "accuracy%", "F1"
    );
    for (name, refine_iters) in [
        ("none (raw ±ε init)", 0usize),
        ("200 square reversions", 200),
    ] {
        let attack = Attack::Square(SquareParams {
            epsilon: 0.4,
            init_tries: 30,
            refine_iters,
        });
        let report = attack_dataset(
            &art.model,
            &art.split.test,
            &attack,
            AttackGoal::Untargeted,
            Some(scaled(80, 25)),
            &mut rng,
        );
        let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xB1AE));
        let c = detection_confusion(
            &prep.detector,
            HpcEvent::CacheMisses,
            &prep.clean_test,
            &adv,
        );
        println!(
            "{:<22} {:>8} {:>10.1} | {:>10.2} {:>8.4}",
            name,
            adv.len(),
            report.success_rate() * 100.0,
            c.accuracy() * 100.0,
            c.f1()
        );
    }
    println!(
        "\nReading: unlike gradient-aligned perturbations, random-sign noise\n\
         resembles the datasets' own pixel noise, so its HPC footprint sits\n\
         largely inside the clean distribution, and refinement shrinks it\n\
         further — count-based single-event detection is weakest against\n\
         attacks that never leave the data's noise envelope (EXPERIMENTS.md)."
    );
}
