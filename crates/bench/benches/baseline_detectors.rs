//! Extension: the paper's GMM + three-sigma detector versus simpler
//! anomaly-detection baselines (single-Gaussian z-score and k-NN distance)
//! on the same HPC readings, plus the MI-FGSM attack the paper's PGD
//! citation actually describes.

use advhunter::baseline::{KnnDetector, ZScoreDetector};
use advhunter::experiment::{detection_confusion, measure_examples, LabeledSample};
use advhunter::scenario::ScenarioId;
use advhunter::{BinaryConfusion, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn confusion_with(
    verdict: impl Fn(&LabeledSample) -> Option<bool>,
    clean: &[LabeledSample],
    adv: &[LabeledSample],
) -> BinaryConfusion {
    let mut c = BinaryConfusion::default();
    for s in clean {
        if s.predicted != s.true_class {
            continue;
        }
        if let Some(flagged) = verdict(s) {
            c.record(false, flagged);
        }
    }
    for s in adv {
        if let Some(flagged) = verdict(s) {
            c.record(true, flagged);
        }
    }
    c
}

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0xBA5E);
    let mut rng = StdRng::seed_from_u64(0xBA5F);
    let target = art.target_class();

    let knn = KnnDetector::fit(&prep.template, 5, 3.0);
    let zscore = ZScoreDetector::fit(&prep.template, 3.0);
    let event = HpcEvent::CacheMisses;

    section("Extension: detector baselines on cache-misses (S2)");
    println!(
        "{:<10} {:>8} | {:<18} {:>10} {:>8}",
        "attack", "eps", "detector", "accuracy%", "F1"
    );
    for (attack, goal) in [
        (Attack::fgsm(0.5), AttackGoal::Targeted(target)),
        (Attack::mi_fgsm(0.35), AttackGoal::Targeted(target)),
        (Attack::fgsm(0.1), AttackGoal::Untargeted),
    ] {
        let report = attack_dataset(
            &art.model,
            &art.split.test,
            &attack,
            goal,
            Some(scaled(150, 40)),
            &mut rng,
        );
        let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xBA60));
        let rows: Vec<(&str, BinaryConfusion)> = vec![
            (
                "GMM + 3σ (paper)",
                detection_confusion(&prep.detector, event, &prep.clean_test, &adv),
            ),
            (
                "z-score (K=1)",
                confusion_with(
                    |s| zscore.is_adversarial(s.predicted, event, &s.sample),
                    &prep.clean_test,
                    &adv,
                ),
            ),
            (
                "k-NN (k=5)",
                confusion_with(
                    |s| knn.is_adversarial(s.predicted, event, &s.sample),
                    &prep.clean_test,
                    &adv,
                ),
            ),
        ];
        for (name, c) in rows {
            println!(
                "{:<10} {:>8.2} | {:<18} {:>10.2} {:>8.4}",
                attack.name(),
                attack.strength(),
                name,
                c.accuracy() * 100.0,
                c.f1()
            );
        }
    }
    println!(
        "\nReading: all three separate strong attacks; the GMM's advantage\n\
         appears on multimodal classes (several prototypes) where a single\n\
         Gaussian over-covers the clean support."
    );
}
