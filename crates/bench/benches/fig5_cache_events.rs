//! Figure 5: distributions of the four cache-related HPC events for clean
//! and adversarial inputs in scenario S2 under untargeted FGSM.
//!
//! The paper uses ε = 0.01 on real CIFAR-10; the synthetic stand-in needs a
//! larger ε for a comparable (weak) attack, so the lowest rung of the
//! Table 3 sweep (ε = 0.05) is used. The paper's shape:
//! `L1-icache-load-misses` overlaps heavily, `LLC-store-misses` is somewhat
//! distinctive, and `LLC-load-misses` / `L1-dcache-load-misses` separate
//! significantly.

use advhunter::experiment::measure_examples;
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{
    distribution_overlap, prepare_detector, prepare_scenario, render_two_histograms, scaled,
    section,
};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0xF500);
    let mut rng = StdRng::seed_from_u64(0xF501);

    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.05),
        AttackGoal::Untargeted,
        Some(scaled(250, 50)),
        &mut rng,
    );
    eprintln!(
        "untargeted FGSM eps=0.05: model accuracy under attack {:.1}%, {} AEs",
        report.adversarial_accuracy * 100.0,
        report.examples.len()
    );
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xF502));
    let clean: Vec<_> = prep
        .clean_test
        .iter()
        .filter(|s| s.predicted == s.true_class)
        .cloned()
        .collect();

    section("Figure 5: cache-event distributions, clean vs adversarial (S2, untargeted FGSM)");
    let events_notes = [
        (HpcEvent::L1dLoadMisses, "paper: significant difference"),
        (HpcEvent::L1iLoadMisses, "paper: substantial overlap"),
        (HpcEvent::LlcLoadMisses, "paper: significant difference"),
        (HpcEvent::LlcStoreMisses, "paper: somewhat distinctive"),
    ];
    for (event, note) in events_notes {
        let c: Vec<f64> = clean.iter().map(|s| s.sample.get(event)).collect();
        let a: Vec<f64> = adv.iter().map(|s| s.sample.get(event)).collect();
        println!(
            "\n--- {} (overlap {:.2}; {note}) ---",
            event.perf_name(),
            distribution_overlap(&c, &a, 16)
        );
        print!(
            "{}",
            render_two_histograms("clean", &c, "adversarial", &a, 12)
        );
    }
}
