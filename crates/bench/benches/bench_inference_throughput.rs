//! Inference hot-path throughput: single-image `measure` (packed kernels
//! vs the reference loops), per-layer GEMM breakdown, plan-time autotuner
//! cold/warm cost, batched measurement at 1/4 workers, and the offline
//! template+fit pipeline end-to-end.
//!
//! Unlike the criterion micro-benchmarks this harness does its own timing
//! and writes a machine-readable `BENCH_inference.json` at the repo root,
//! including the speedup over the pre-plan engine (which re-traced every
//! node's geometry and reallocated every activation buffer per
//! measurement). `CRITERION_MEASURE_MS` bounds the per-section measuring
//! time (default 300 ms). `ADVHUNTER_KERNEL_ASSERT=1` turns the
//! packed-kernel speedup and tune-cache floors into hard asserts (for CI).

use std::time::{Duration, Instant};

use advhunter::offline::collect_template;
use advhunter::{Detector, DetectorConfig, ExecOptions, Parallelism};
use advhunter_data::{scenarios, SplitSizes};
use advhunter_exec::TraceEngine;
use advhunter_nn::{gemm_geometries, models};
use advhunter_tensor::init;
use advhunter_tensor::ops::{
    gemm_packed_bias_into, linear_into, linear_packed_bias_into, matmul_into, GemmOpKind,
    PackedWeights,
};
use advhunter_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Single-image `measure` latency of the pre-plan engine on the reference
/// machine (µs, release build, best-of-iterations over a 1 s budget — the
/// same methodology `time_per_iter` uses) — the baseline the speedup is
/// reported against.
const PRE_PR_SINGLE_IMAGE_US: f64 = 2297.7;

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Runs `f` repeatedly for about `budget`, returning (best µs per
/// iteration, iterations). The best — not the mean — estimates the cost of
/// the code itself: anything else that runs on the machine only ever adds
/// time.
fn time_per_iter<F: FnMut()>(budget: Duration, mut f: F) -> (f64, u64) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    while start.elapsed() < budget || iters == 0 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
        iters += 1;
    }
    (best.as_secs_f64() * 1e6, iters)
}

fn main() {
    if std::env::var("PROFILE_COMPONENTS").is_ok() {
        profile_components();
        return;
    }
    let budget = measure_budget();
    let mut rng = StdRng::seed_from_u64(1);
    let model = models::case_study_cnn(&[3, 32, 32], 10, &mut rng);

    advhunter_bench::section("Inference throughput (case-study CNN, 3x32x32)");

    // Plan-time autotuner cost. The process-global memo makes only the very
    // first call cold (it micro-benchmarks every distinct geometry), so this
    // must run before any engine is built; the second call prices a fully
    // warm plan build (memo hits + weight packing only).
    let t0 = Instant::now();
    let kernels = advhunter_exec::tuned_kernels(&model, None);
    let tune_cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    std::hint::black_box(advhunter_exec::tuned_kernels(&model, None));
    let tune_warm_us = t0.elapsed().as_secs_f64() * 1e6;
    println!(
        "tune/plan_build: cold {tune_cold_us:>10.1} µs  warm {tune_warm_us:>10.1} µs  \
         ({} packed floats)",
        kernels.packed_floats()
    );

    // Reference engine (ADVHUNTER_TUNE=reference leaves the kernel table
    // empty, so every matrix node runs the reference loops) vs the tuned
    // packed-kernel engine — the A/B this PR is about.
    std::env::set_var("ADVHUNTER_TUNE", "reference");
    let reference_engine = TraceEngine::new(&model);
    std::env::remove_var("ADVHUNTER_TUNE");
    let engine = TraceEngine::new(&model);
    let image = init::uniform(&mut StdRng::seed_from_u64(5), &[3, 32, 32], 0.0, 1.0);

    // Single-image measure: the unit of both the offline and online phases.
    let mut rng = StdRng::seed_from_u64(2);
    let (single_us, iters) = time_per_iter(budget, || {
        std::hint::black_box(engine.measure(&model, &image, &mut rng));
    });
    let single_per_s = 1e6 / single_us;
    let speedup = PRE_PR_SINGLE_IMAGE_US / single_us;
    println!(
        "measure/single_image: {single_us:>10.1} µs/iter  {single_per_s:>8.1}/s  \
         ({iters} iters, {speedup:.2}x vs pre-plan {PRE_PR_SINGLE_IMAGE_US} µs)"
    );

    let mut rng = StdRng::seed_from_u64(2);
    let (reference_us, _) = time_per_iter(budget, || {
        std::hint::black_box(reference_engine.measure(&model, &image, &mut rng));
    });
    let packed_speedup = reference_us / single_us;
    println!(
        "measure/single_image/reference_loops: {reference_us:>10.1} µs/iter  \
         (packed kernels {packed_speedup:.2}x faster)"
    );

    // Per-layer GEMM breakdown: each matrix node's reference loops vs its
    // tuned packed kernel, on synthetic operands of the node's geometry.
    let mut layer_rows = Vec::new();
    for (i, (node, geometry)) in model
        .nodes()
        .iter()
        .zip(gemm_geometries(&model))
        .enumerate()
    {
        let Some(geo) = geometry else { continue };
        let kernel = kernels.node(i).expect("matrix node has a kernel");
        let (m, k, n) = (geo.m, geo.k, geo.n);
        let wt = init::uniform(
            &mut StdRng::seed_from_u64(40 + i as u64),
            &[m, k],
            -0.1,
            0.1,
        );
        let data = init::uniform(
            &mut StdRng::seed_from_u64(80 + i as u64),
            &[k, n],
            -1.0,
            1.0,
        );
        let bias = init::uniform(&mut StdRng::seed_from_u64(120 + i as u64), &[m], -0.1, 0.1);
        let packed = PackedWeights::pack_tensor(&wt, kernel.variant);

        let (ref_us, packed_us) = match geo.op {
            GemmOpKind::Conv => {
                let mut out = Tensor::zeros(&[m, n]);
                let (r, _) = time_per_iter(budget / 4, || {
                    matmul_into(&wt, &data, &mut out);
                    for (j, v) in out.data_mut().iter_mut().enumerate() {
                        *v += bias.data()[j / n];
                    }
                    std::hint::black_box(&out);
                });
                let mut pout = vec![0.0f32; m * n];
                let (p, _) = time_per_iter(budget / 4, || {
                    gemm_packed_bias_into(&packed, data.data(), n, bias.data(), &mut pout);
                    std::hint::black_box(&pout);
                });
                (r, p)
            }
            GemmOpKind::Linear => {
                let x = init::uniform(
                    &mut StdRng::seed_from_u64(160 + i as u64),
                    &[1, k],
                    -1.0,
                    1.0,
                );
                let mut out = Tensor::zeros(&[1, m]);
                let (r, _) = time_per_iter(budget / 4, || {
                    linear_into(&x, &wt, &bias, &mut out);
                    std::hint::black_box(&out);
                });
                let mut pout = vec![0.0f32; m];
                let (p, _) = time_per_iter(budget / 4, || {
                    linear_packed_bias_into(&packed, x.data(), 1, bias.data(), &mut pout);
                    std::hint::black_box(&pout);
                });
                (r, p)
            }
        };
        println!(
            "gemm/{:<8} {:>3}x{:>4}x{:>4} [{}]: ref {ref_us:>8.1} µs  packed {packed_us:>8.1} µs  \
             ({:.2}x)",
            node.name,
            m,
            k,
            n,
            kernel.variant.label(),
            ref_us / packed_us
        );
        layer_rows.push((node.name.clone(), kernel.variant.label(), ref_us, packed_us));
    }

    // Batched measurement at 1 and 4 workers (per-worker scratch reuse).
    // The pool never oversubscribes, so on a host with fewer than 4 cores
    // the 4-worker row actually runs with `available_parallelism` workers
    // — say so, or the row reads like a scaling regression.
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    if cores > 0 && cores < 4 {
        println!("note: only {cores} core(s) available — worker requests are capped there");
    }
    let mut img_rng = StdRng::seed_from_u64(3);
    let images: Vec<_> = (0..32)
        .map(|_| init::uniform(&mut img_rng, &[3, 32, 32], 0.0, 1.0))
        .collect();
    let mut batch_us = Vec::new();
    for threads in [1usize, 4] {
        let parallelism = Parallelism::new(threads);
        let (us, iters) = time_per_iter(budget, || {
            std::hint::black_box(engine.measure_batch(&model, &images, 7, &parallelism));
        });
        println!(
            "measure_batch/32_images/{threads}t: {us:>10.1} µs/iter  \
             {:>8.1} images/s  ({iters} iters)",
            32.0 * 1e6 / us
        );
        batch_us.push((threads, us));
    }

    // Offline phase end-to-end: template collection + GMM-bank fit.
    let split = scenarios::cifar10_like(
        9,
        &SplitSizes {
            train: 4,
            val: 6,
            test: 4,
        },
    );
    let opts = ExecOptions::seeded(21).with_threads(4);
    let (fit_us, iters) = time_per_iter(budget, || {
        let template = collect_template(&engine, &model, &split.val, None, &opts.stage(0));
        std::hint::black_box(Detector::fit(
            &template,
            &DetectorConfig::default(),
            &opts.stage(1),
        ))
        .ok();
    });
    println!("offline/collect+fit/6_images/4t: {fit_us:>10.1} µs/iter  ({iters} iters)");

    let mut layer_json = String::new();
    for (name, label, ref_us, packed_us) in &layer_rows {
        layer_json.push_str(&format!(
            "  \"gemm_{name}_variant\": \"{label}\",\n  \
             \"gemm_{name}_reference_us\": {ref_us:.1},\n  \
             \"gemm_{name}_packed_us\": {packed_us:.1},\n"
        ));
    }
    let gemm_geomean = (layer_rows
        .iter()
        .map(|(_, _, reference, packed)| (reference / packed).ln())
        .sum::<f64>()
        / layer_rows.len() as f64)
        .exp();
    layer_json.push_str(&format!("  \"gemm_speedup_geomean\": {gemm_geomean:.2},\n"));
    let json = format!(
        "{{\n  \"benchmark\": \"inference_throughput\",\n  \
         \"budget_ms\": {},\n  \
         \"pre_pr_single_image_us\": {PRE_PR_SINGLE_IMAGE_US},\n  \
         \"single_image_us\": {single_us:.1},\n  \
         \"single_image_per_s\": {single_per_s:.1},\n  \
         \"speedup_vs_pre_pr\": {speedup:.2},\n  \
         \"reference_single_image_us\": {reference_us:.1},\n  \
         \"packed_speedup_vs_reference\": {packed_speedup:.2},\n  \
         \"tune_cold_us\": {tune_cold_us:.1},\n  \
         \"tune_warm_us\": {tune_warm_us:.1},\n\
         {layer_json}  \
         \"measure_batch_32_1t_us\": {:.1},\n  \
         \"measure_batch_32_4t_us\": {:.1},\n  \
         \"offline_collect_fit_us\": {fit_us:.1}\n}}\n",
        budget.as_millis(),
        batch_us[0].1,
        batch_us[1].1,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_inference.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    // CI perf floor (pattern of ADVHUNTER_FP_ASSERT): relative floors only —
    // the packed kernels must actually beat the reference loops, and the
    // warm tuner must not re-benchmark. Absolute-µs floors would be noise.
    // The kernel floor is the geometric mean of per-layer GEMM speedups:
    // the full measure path is dominated by the (unchanged) trace
    // simulation, which would dilute the signal below the noise floor.
    if std::env::var("ADVHUNTER_KERNEL_ASSERT").is_ok_and(|v| v == "1") {
        assert!(
            gemm_geomean >= 1.2,
            "packed GEMM kernels only {gemm_geomean:.2}x (geomean) over reference loops \
             (floor 1.2x)"
        );
        assert!(
            packed_speedup >= 1.0,
            "packed kernels made the full measure path slower \
             ({packed_speedup:.2}x vs reference loops)"
        );
        assert!(
            tune_warm_us * 2.0 < tune_cold_us,
            "warm plan build ({tune_warm_us:.1} µs) not clearly cheaper than cold \
             ({tune_cold_us:.1} µs) — tune memo miss?"
        );
        println!("ADVHUNTER_KERNEL_ASSERT: packed-kernel floors hold");
    }
}

#[allow(dead_code)]
fn profile_components() {
    let budget = measure_budget();
    let mut rng = StdRng::seed_from_u64(1);
    let model = models::case_study_cnn(&[3, 32, 32], 10, &mut rng);
    let engine = TraceEngine::new(&model);
    let image = init::uniform(&mut StdRng::seed_from_u64(5), &[3, 32, 32], 0.0, 1.0);

    let mut ws = model.workspace(1);
    let (fwd_us, _) = time_per_iter(budget, || {
        model.forward_with(&image, advhunter_nn::Mode::Eval, &mut ws);
        std::hint::black_box(&ws);
    });
    println!("forward_with (reference loops): {fwd_us:>10.1} µs/iter");

    let kernels = advhunter_exec::tuned_kernels(&model, None);
    let (pfwd_us, _) = time_per_iter(budget, || {
        model.forward_with_kernels(&image, advhunter_nn::Mode::Eval, &mut ws, &kernels);
        std::hint::black_box(&ws);
    });
    println!("forward_with_kernels (packed): {pfwd_us:>10.1} µs/iter");

    let (tc_us, _) = time_per_iter(budget, || {
        std::hint::black_box(engine.true_counts(&model, &image));
    });
    println!("true_counts (fwd + trace): {tc_us:>10.1} µs/iter");

    let mut rng = StdRng::seed_from_u64(2);
    let (m_us, _) = time_per_iter(budget, || {
        std::hint::black_box(engine.measure(&model, &image, &mut rng));
    });
    println!("measure (fwd + trace + noise): {m_us:>10.1} µs/iter");

    // Raw access volume of one trace.
    let counts = engine.true_counts(&model, &image);
    for e in advhunter_uarch::HpcEvent::ALL {
        println!("  {e:?}: {}", counts.get(e));
    }

    // Conv gemm in isolation (conv2 geometry: 16ch 32x32 -> 16ch).
    use advhunter_tensor::ops::{conv2d_into, Conv2dScratch, Conv2dSpec};
    let spec = Conv2dSpec::new(16, 16, 3, 1, 1);
    let x = init::uniform(&mut StdRng::seed_from_u64(8), &[1, 16, 32, 32], -1.0, 1.0);
    let w = init::uniform(&mut StdRng::seed_from_u64(9), &[16, 16 * 9], -0.1, 0.1);
    let b = init::uniform(&mut StdRng::seed_from_u64(10), &[16], -0.1, 0.1);
    let mut out = advhunter_tensor::Tensor::zeros(&[1, 16, 32, 32]);
    let mut cs = Conv2dScratch::new(16, 32, 32, &spec);
    let (conv_us, _) = time_per_iter(budget, || {
        conv2d_into(&x, &w, &b, &spec, &mut cs, &mut out);
        std::hint::black_box(&out);
    });
    println!("conv2d_into conv2-sized: {conv_us:>10.1} µs/iter");

    // Bare gemm of the conv2 lowering: [16,144] x [144,1024].
    use advhunter_tensor::ops::matmul_into;
    let ga = init::uniform(&mut StdRng::seed_from_u64(11), &[16, 144], -0.1, 0.1);
    let gb = init::uniform(&mut StdRng::seed_from_u64(12), &[144, 1024], -1.0, 1.0);
    let mut gout = advhunter_tensor::Tensor::zeros(&[16, 1024]);
    let (gemm_us, _) = time_per_iter(budget, || {
        matmul_into(&ga, &gb, &mut gout);
        std::hint::black_box(&gout);
    });
    println!("matmul_into 16x144x1024: {gemm_us:>10.1} µs/iter");

    // CounterGroup construction cost.
    let (cg_us, _) = time_per_iter(budget, || {
        std::hint::black_box(advhunter_uarch::CounterGroup::new(
            advhunter_uarch::MachineConfig::default(),
        ));
    });
    println!("CounterGroup::new: {cg_us:>10.1} µs/iter");

    // Trace-side cost decomposition on a raw CounterGroup.
    use advhunter_uarch::{CounterGroup, MachineConfig};
    let mut g = CounterGroup::new(MachineConfig::default());
    let (reset_us, _) = time_per_iter(budget, || {
        g.reset_machine();
        std::hint::black_box(&g);
    });
    println!("reset_machine: {reset_us:>10.1} µs/iter");

    // fc1-like weight stream: 16384 cold lines (1 MiB) through L1d + LLC.
    let (stream_us, _) = time_per_iter(budget, || {
        g.reset_machine();
        g.enable();
        g.stream_read(0x100000, 16384);
        g.disable();
        std::hint::black_box(&g);
    });
    println!("stream_read 16384 cold lines (incl reset): {stream_us:>10.1} µs/iter");

    // conv-like warm re-stream: same 1024 lines looped 16x (mostly hits).
    let (warm_us, _) = time_per_iter(budget, || {
        g.reset_machine();
        g.enable();
        for _ in 0..16 {
            g.stream_read(0x100000, 1024);
        }
        g.disable();
        std::hint::black_box(&g);
    });
    println!("stream_read 16x1024 warm lines (incl reset): {warm_us:>10.1} µs/iter");

    // Tile-loop shape: scattered single loads like the activation probes.
    let (tile_us, _) = time_per_iter(budget, || {
        g.reset_machine();
        g.enable();
        for i in 0..2048u64 {
            g.load(0x100000 + i * 64);
        }
        g.disable();
        std::hint::black_box(&g);
    });
    println!("2048 single loads (incl reset): {tile_us:>10.1} µs/iter");
}
