//! Table 1: evaluation scenarios and clean accuracies.
//!
//! Builds (or loads) all three scenario models and prints the measured
//! clean accuracy next to the paper's reference value.

use advhunter::scenario::ScenarioId;
use advhunter_bench::{prepare_scenario, section};

fn main() {
    section("Table 1: Evaluation Scenarios along with Clean Accuracies");
    println!(
        "{:<10} {:<18} {:<20} {:>14} {:>14}",
        "Scenario", "Dataset", "CNN Architecture", "Clean Acc", "Paper"
    );
    let paper = [92.34, 88.59, 96.67];
    for (id, paper_acc) in ScenarioId::TABLE1.iter().zip(paper) {
        let art = prepare_scenario(*id);
        println!(
            "{:<10} {:<18} {:<20} {:>13.2}% {:>13.2}%",
            id.label(),
            id.dataset_name(),
            id.model_name(),
            art.clean_accuracy * 100.0,
            paper_acc,
        );
    }
    println!(
        "\nNote: datasets are procedural stand-ins (see DESIGN.md); the paper's\n\
         ordering (GTSRB easiest, CIFAR-10 hardest) is the reproduction target."
    );
}
