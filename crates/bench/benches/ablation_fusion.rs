//! Ablation (beyond the paper): fusing verdicts from several HPC events.
//!
//! The paper's rule is single-event (`l_n^u > Δ_c^n` for one chosen n).
//! This harness compares single events against OR-fusion (flag if any
//! event flags) and AND-fusion (flag only if all flag) over the three
//! strong data-side events, on S2 / targeted FGSM ε = 0.5.

use advhunter::experiment::{measure_examples, LabeledSample};
use advhunter::scenario::ScenarioId;
use advhunter::BinaryConfusion;
use advhunter::{Detector, ExecOptions};
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario, scaled, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fused_confusion(
    detector: &Detector,
    events: &[HpcEvent],
    any: bool,
    clean: &[LabeledSample],
    adv: &[LabeledSample],
) -> BinaryConfusion {
    let mut c = BinaryConfusion::default();
    let verdict = |s: &LabeledSample| {
        if any {
            detector.is_adversarial_any(s.predicted, events, &s.sample)
        } else {
            detector.is_adversarial_all(s.predicted, events, &s.sample)
        }
    };
    for s in clean {
        if s.predicted == s.true_class {
            c.record(false, verdict(s));
        }
    }
    for s in adv {
        c.record(true, verdict(s));
    }
    c
}

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let prep = prepare_detector(&art, None, Some(scaled(40, 15)), 0xAB40);
    let mut rng = StdRng::seed_from_u64(0xAB41);
    let target = art.target_class();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(scaled(200, 40)),
        &mut rng,
    );
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xAB42));

    let strong = [
        HpcEvent::CacheMisses,
        HpcEvent::LlcLoadMisses,
        HpcEvent::L1dLoadMisses,
    ];

    section("Ablation: event fusion (S2, targeted FGSM ε=0.5)");
    println!(
        "{:<40} {:>10} {:>10} {:>10} {:>10}",
        "rule", "accuracy%", "F1", "precision", "recall"
    );
    for event in strong {
        let c = fused_confusion(&prep.detector, &[event], true, &prep.clean_test, &adv);
        println!(
            "{:<40} {:>10.2} {:>10.4} {:>10.4} {:>10.4}",
            format!("single: {}", event.perf_name()),
            c.accuracy() * 100.0,
            c.f1(),
            c.precision(),
            c.recall()
        );
    }
    for (name, any) in [
        ("OR over strong events", true),
        ("AND over strong events", false),
    ] {
        let c = fused_confusion(&prep.detector, &strong, any, &prep.clean_test, &adv);
        println!(
            "{:<40} {:>10.2} {:>10.4} {:>10.4} {:>10.4}",
            name,
            c.accuracy() * 100.0,
            c.f1(),
            c.precision(),
            c.recall()
        );
    }
    println!(
        "\nExpectation: OR-fusion trades precision for recall; AND-fusion the\n\
         reverse; a well-chosen single event (cache-misses) is already close\n\
         to the F1 frontier — supporting the paper's single-event design."
    );
}
