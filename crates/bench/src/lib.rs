//! Shared plumbing for the experiment harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each table/figure has a dedicated `harness = false` bench target (see
//! `benches/`); `cargo bench --workspace` therefore reproduces the whole
//! evaluation. The helpers here handle scenario construction, detector
//! fitting, histogram rendering, and consistent report formatting.

use advhunter::experiment::{measure_dataset, LabeledSample};
use advhunter::offline::OfflineTemplate;
use advhunter::scenario::{build_scenario, ScenarioArtifacts, ScenarioId};
use advhunter::{ArtifactStore, Detector, ExecOptions, Pipeline, PipelineConfig};
use advhunter_data::SplitSizes;

/// Scale factor for experiment sizes, settable via `ADVHUNTER_SCALE`
/// (default 1.0). Values below 1 shrink sample counts for quick runs;
/// values above 1 increase fidelity.
pub fn scale() -> f64 {
    std::env::var("ADVHUNTER_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the global scale to a nominal count, with a floor.
pub fn scaled(nominal: usize, floor: usize) -> usize {
    ((nominal as f64 * scale()) as usize).max(floor)
}

/// Builds a scenario with its default sizes and a fixed seed, printing a
/// one-line summary.
pub fn prepare_scenario(id: ScenarioId) -> ScenarioArtifacts {
    prepare_scenario_sized(id, None)
}

/// Builds a scenario with explicit split sizes.
pub fn prepare_scenario_sized(id: ScenarioId, sizes: Option<SplitSizes>) -> ScenarioArtifacts {
    let t0 = std::time::Instant::now();
    let art = build_scenario(id, sizes);
    eprintln!(
        "[{}] {} on {}: clean accuracy {:.2}% ({}, {:.1}s)",
        id.label(),
        art.model_name(),
        art.dataset_name(),
        art.clean_accuracy * 100.0,
        if art.from_cache { "cached" } else { "trained" },
        t0.elapsed().as_secs_f64(),
    );
    art
}

/// A fitted detector plus the measurements it was built from — one offline
/// phase, reusable across attack settings.
pub struct PreparedDetector {
    /// The offline template (all measured validation samples).
    pub template: OfflineTemplate,
    /// The fitted detector.
    pub detector: Detector,
    /// Measured clean test samples (for the clean side of evaluations).
    pub clean_test: Vec<LabeledSample>,
}

/// Runs the offline phase for a scenario through the staged pipeline:
/// measure the validation split, fit the GMM bank (both cached in the
/// shared artifact store), and pre-measure the clean test split.
pub fn prepare_detector(
    art: &ScenarioArtifacts,
    val_per_class: Option<usize>,
    test_per_class: Option<usize>,
    seed: u64,
) -> PreparedDetector {
    let config = PipelineConfig::for_spec(std::sync::Arc::clone(&art.spec))
        .with_sizes(art.split.sizes_per_class())
        .with_seed(seed)
        .with_per_class_cap(val_per_class);
    let store = ArtifactStore::shared().expect("artifact store I/O");
    let (out, _report) = Pipeline::new(config, store)
        .run()
        .expect("offline pipeline for prepared detector");
    let opts = ExecOptions::seeded(seed);
    let clean_test = measure_dataset(art, &art.split.test, test_per_class, &opts.stage(2));
    PreparedDetector {
        template: out.template,
        detector: out.detector,
        clean_test,
    }
}

/// Renders an ASCII histogram of two distributions over a common range —
/// the textual analogue of the paper's distribution figures (Fig. 3/5).
pub fn render_two_histograms(
    label_a: &str,
    a: &[f64],
    label_b: &str,
    b: &[f64],
    bins: usize,
) -> String {
    if a.is_empty() && b.is_empty() {
        return "  (no data)\n".to_string();
    }
    let lo = a
        .iter()
        .chain(b.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = a
        .iter()
        .chain(b.iter())
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let width = (hi - lo).max(1e-9);
    let hist = |xs: &[f64]| {
        let mut h = vec![0usize; bins];
        for &x in xs {
            let i = (((x - lo) / width) * bins as f64) as usize;
            h[i.min(bins - 1)] += 1;
        }
        h
    };
    let ha = hist(a);
    let hb = hist(b);
    let max = ha
        .iter()
        .chain(hb.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "  range [{lo:.0}, {hi:.0}]  {label_a}: '#' ({} pts)  {label_b}: 'o' ({} pts)\n",
        a.len(),
        b.len()
    ));
    for i in 0..bins {
        let bar_a = "#".repeat(ha[i] * 40 / max);
        let bar_b = "o".repeat(hb[i] * 40 / max);
        out.push_str(&format!(
            "  {:>10.0} |{bar_a}\n             |{bar_b}\n",
            lo + (i as f64 + 0.5) / bins as f64 * width
        ));
    }
    out
}

/// Jaccard-style overlap coefficient of two sample sets' histograms in
/// `[0, 1]` — a scalar summary of how separable two distributions are.
pub fn distribution_overlap(a: &[f64], b: &[f64], bins: usize) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let lo = a
        .iter()
        .chain(b.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = a
        .iter()
        .chain(b.iter())
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let width = (hi - lo).max(1e-9);
    let hist = |xs: &[f64]| {
        let mut h = vec![0f64; bins];
        for &x in xs {
            let i = (((x - lo) / width) * bins as f64) as usize;
            h[i.min(bins - 1)] += 1.0 / xs.len() as f64;
        }
        h
    };
    let ha = hist(a);
    let hb = hist(b);
    ha.iter().zip(hb.iter()).map(|(x, y)| x.min(*y)).sum()
}

/// Prints a horizontal rule with a title, for separating report sections.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_applies_floor() {
        std::env::remove_var("ADVHUNTER_SCALE");
        assert_eq!(scaled(100, 10), 100);
        assert_eq!(scaled(5, 10), 10);
    }

    #[test]
    fn overlap_extremes() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        assert!(distribution_overlap(&a, &a, 10) > 0.99);
        let b: Vec<f64> = (0..100).map(|i| 10.0 + i as f64 / 100.0).collect();
        assert!(distribution_overlap(&a, &b, 10) < 0.01);
        assert_eq!(distribution_overlap(&a, &[], 10), 0.0);
    }

    #[test]
    fn histogram_renders_nonempty() {
        let s = render_two_histograms("clean", &[1.0, 2.0, 2.1], "adv", &[5.0, 5.1], 4);
        assert!(s.contains("clean"));
        assert!(s.contains('#'));
        assert!(s.contains('o'));
    }
}
