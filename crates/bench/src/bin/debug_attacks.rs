//! Development tool: attack effectiveness sweep to calibrate data/model
//! difficulty against the paper's attack success rates.

use advhunter::scenario::ScenarioId;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::prepare_scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let art = prepare_scenario(ScenarioId::S2);
    let target = art.target_class();
    let mut rng = StdRng::seed_from_u64(1);
    for (name, attack) in [
        ("fgsm", Attack::fgsm(0.05)),
        ("fgsm", Attack::fgsm(0.1)),
        ("fgsm", Attack::fgsm(0.3)),
        ("fgsm", Attack::fgsm(0.5)),
        ("pgd", Attack::pgd(0.05)),
        ("pgd", Attack::pgd(0.1)),
        ("pgd", Attack::pgd(0.3)),
        ("deepfool", Attack::deepfool()),
    ] {
        let unt = attack_dataset(
            &art.model,
            &art.split.test,
            &attack,
            AttackGoal::Untargeted,
            Some(60),
            &mut rng,
        );
        let tgt = attack_dataset(
            &art.model,
            &art.split.test,
            &attack,
            AttackGoal::Targeted(target),
            Some(60),
            &mut rng,
        );
        println!(
            "{name:>8} eps={:.2}: untargeted adv-acc {:>5.1}% (succ {:>5.1}%) | targeted acc {:>5.1}% (succ {:>5.1}%)",
            attack.strength(),
            unt.adversarial_accuracy * 100.0,
            unt.success_rate() * 100.0,
            tgt.targeted_accuracy * 100.0,
            tgt.success_rate() * 100.0,
        );
    }
}
