//! Development tool: spot-check Figure 4's hard cells (PGD/DeepFool
//! targeted + weak untargeted) after data/simulator calibration changes.

use advhunter::experiment::run_attack_detection;
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{Attack, AttackGoal};
use advhunter_bench::{prepare_detector, prepare_scenario};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    for id in ScenarioId::TABLE1 {
        let art = prepare_scenario(id);
        let prep = prepare_detector(&art, None, Some(30), 0xDB64);
        let mut rng = StdRng::seed_from_u64(0xDB65);
        let target = art.target_class();
        for (attack, goal, n) in [
            (Attack::fgsm(0.5), AttackGoal::Targeted(target), 100),
            (Attack::mi_fgsm(0.5), AttackGoal::Targeted(target), 60),
            (Attack::mi_fgsm(0.35), AttackGoal::Targeted(target), 60),
            (Attack::mi_fgsm(0.2), AttackGoal::Targeted(target), 60),
            (Attack::mi_fgsm(0.2), AttackGoal::Untargeted, 60),
            (Attack::mi_fgsm(0.1), AttackGoal::Untargeted, 60),
        ] {
            let run = run_attack_detection(
                &art,
                &prep.detector,
                &attack,
                goal,
                &[HpcEvent::CacheMisses],
                Some(n),
                &prep.clean_test,
                &mut rng,
                &ExecOptions::seeded(0xDB66),
            );
            println!(
                "{} {:>8} {:?} eps={:.2}: adv-acc {:>5.1}% tgt {:>5.1}% #AE {:>3}  F1 {:.3}",
                id.label(),
                run.attack_name,
                matches!(goal, AttackGoal::Targeted(_)),
                run.strength,
                run.adversarial_accuracy * 100.0,
                run.targeted_accuracy * 100.0,
                run.num_adversarial,
                run.per_event[0].f1()
            );
        }
    }
}
