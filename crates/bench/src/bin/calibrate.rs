//! Pipeline calibration: quick end-to-end sanity check of the reproduction.
//!
//! Trains (or loads) the S2 scenario, runs the offline phase, mounts a
//! targeted FGSM attack, and prints per-event separability + detection
//! quality so the simulator and noise model can be tuned against the
//! paper's shapes (Table 2). Not part of the recorded experiments; a
//! development tool.

use advhunter::experiment::{detection_confusion, measure_examples};
use advhunter::scenario::ScenarioId;
use advhunter::ExecOptions;
use advhunter_attacks::{attack_dataset, Attack, AttackGoal};
use advhunter_bench::{distribution_overlap, prepare_detector, prepare_scenario, section};
use advhunter_uarch::HpcEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let t0 = std::time::Instant::now();
    let art = prepare_scenario(ScenarioId::S2);
    eprintln!("scenario ready in {:.1}s", t0.elapsed().as_secs_f64());

    let t1 = std::time::Instant::now();
    let prep = prepare_detector(&art, Some(80), Some(60), 0xBEEF);
    eprintln!(
        "offline phase: {} min samples/class, {:.1}s",
        prep.template.min_samples_per_class(),
        t1.elapsed().as_secs_f64()
    );

    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let target = art.target_class();
    let t2 = std::time::Instant::now();
    let report = attack_dataset(
        &art.model,
        &art.split.test,
        &Attack::fgsm(0.5),
        AttackGoal::Targeted(target),
        Some(150),
        &mut rng,
    );
    eprintln!(
        "targeted FGSM eps=0.5: attacked {}, success {:.1}%, targeted acc {:.1}%, {:.1}s",
        report.attacked,
        report.success_rate() * 100.0,
        report.targeted_accuracy * 100.0,
        t2.elapsed().as_secs_f64()
    );

    let t3 = std::time::Instant::now();
    let adv = measure_examples(&art, &report.examples, &ExecOptions::seeded(0xCAFF));
    eprintln!(
        "measured {} AEs in {:.1}s",
        adv.len(),
        t3.elapsed().as_secs_f64()
    );

    // Clean side: test images of the target class only (Table 2 protocol).
    let clean_target: Vec<_> = prep
        .clean_test
        .iter()
        .filter(|s| s.true_class == target)
        .cloned()
        .collect();

    section("per-event separability (clean target class vs AEs)");
    for event in HpcEvent::ALL {
        let c: Vec<f64> = clean_target.iter().map(|s| s.sample.get(event)).collect();
        let a: Vec<f64> = adv.iter().map(|s| s.sample.get(event)).collect();
        let overlap = distribution_overlap(&c, &a, 20);
        let conf = detection_confusion(&prep.detector, event, &clean_target, &adv);
        println!(
            "{:>22}: overlap {:.2}  acc {:>5.1}%  F1 {:.4}   (clean mean {:.0}, adv mean {:.0})",
            event.perf_name(),
            overlap,
            conf.accuracy() * 100.0,
            conf.f1(),
            mean(&c),
            mean(&a),
        );
    }
    eprintln!("total {:.1}s", t0.elapsed().as_secs_f64());
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
