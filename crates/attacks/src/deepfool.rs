//! DeepFool (Moosavi-Dezfooli et al., CVPR 2016): minimal L2 perturbation
//! toward the nearest decision boundary, iterated on the linearized model.

use advhunter_nn::Graph;
use advhunter_tensor::Tensor;

use crate::gradient::logit_input_gradient;
use crate::AttackGoal;

/// DeepFool parameters (defaults follow the original paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepFoolParams {
    /// Maximum linearization iterations.
    pub max_iter: usize,
    /// Overshoot η applied to the accumulated perturbation (0.02 in the
    /// original paper) so the point crosses the boundary.
    pub overshoot: f32,
    /// Number of highest-logit candidate classes considered per iteration
    /// (the original paper uses 10).
    pub candidates: usize,
}

impl Default for DeepFoolParams {
    fn default() -> Self {
        Self {
            max_iter: 30,
            overshoot: 0.02,
            candidates: 10,
        }
    }
}

/// Runs DeepFool on one image.
///
/// Untargeted: steps toward the nearest boundary among the top candidate
/// classes. Targeted: steps toward the boundary with the requested class
/// only.
pub(crate) fn perturb(
    model: &Graph,
    image: &Tensor,
    true_label: usize,
    goal: AttackGoal,
    params: &DeepFoolParams,
) -> Tensor {
    let mut x = image.clone();
    let mut total_r = Tensor::zeros(image.shape().dims());

    for _ in 0..params.max_iter {
        let (grad_cur, logits) = logit_input_gradient(model, &x, current_class(model, &x));
        let cur = argmax(&logits);
        match goal {
            AttackGoal::Untargeted => {
                if cur != true_label {
                    break; // already fooled
                }
            }
            AttackGoal::Targeted(t) => {
                if cur == t {
                    break; // reached the target
                }
            }
        }

        // Candidate classes to linearize against.
        let candidates: Vec<usize> = match goal {
            AttackGoal::Targeted(t) => vec![t],
            AttackGoal::Untargeted => {
                let mut order: Vec<usize> = (0..logits.len()).collect();
                order.sort_by(|&a, &b| logits.data()[b].total_cmp(&logits.data()[a]));
                order
                    .into_iter()
                    .filter(|&k| k != cur)
                    .take(params.candidates.saturating_sub(1).max(1))
                    .collect()
            }
        };

        // Find the closest linearized boundary.
        let mut best: Option<(f32, Tensor)> = None;
        for k in candidates {
            let (grad_k, _) = logit_input_gradient(model, &x, k);
            let w = &grad_k - &grad_cur;
            let f = logits.data()[k] - logits.data()[cur];
            let wnorm = w.l2_norm().max(1e-12);
            let dist = f.abs() / wnorm;
            // Minimal step to the boundary: r = |f| / ||w||² · w.
            let r = &w * (f.abs() / (wnorm * wnorm));
            if best.as_ref().is_none_or(|(d, _)| dist < *d) {
                best = Some((dist, r));
            }
        }
        let Some((_, r)) = best else { break };

        total_r.add_scaled(&r, 1.0 + params.overshoot);
        x = image.clone();
        x.add_scaled(&total_r, 1.0);
        x.clamp_inplace(0.0, 1.0);
    }
    x
}

fn current_class(model: &Graph, x: &Tensor) -> usize {
    let batch = Tensor::stack(std::slice::from_ref(x));
    model.predict(&batch)[0]
}

fn argmax(t: &Tensor) -> usize {
    t.data()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_toy_model;

    #[test]
    fn untargeted_deepfool_fools_with_small_l2() {
        let (model, probes) = trained_toy_model();
        let mut fooled = 0;
        let mut fgsm_norm_total = 0.0;
        let mut df_norm_total = 0.0;
        for (label, x) in probes.iter().enumerate() {
            let adv = perturb(
                &model,
                x,
                label,
                AttackGoal::Untargeted,
                &DeepFoolParams::default(),
            );
            let batch = Tensor::stack(std::slice::from_ref(&adv));
            if model.predict(&batch)[0] != label {
                fooled += 1;
                df_norm_total += (&adv - x).l2_norm();
                let f = crate::fgsm::perturb(&model, x, label, AttackGoal::Untargeted, 0.3);
                fgsm_norm_total += (&f - x).l2_norm();
            }
        }
        assert!(fooled >= 2, "DeepFool fooled only {fooled}/3");
        assert!(
            df_norm_total < fgsm_norm_total,
            "DeepFool perturbation {df_norm_total} should be smaller than FGSM {fgsm_norm_total}"
        );
    }

    #[test]
    fn targeted_deepfool_reaches_the_target() {
        let (model, probes) = trained_toy_model();
        let x = &probes[0];
        let target = 2usize;
        let params = DeepFoolParams {
            max_iter: 60,
            overshoot: 0.05,
            candidates: 3,
        };
        let adv = perturb(&model, x, 0, AttackGoal::Targeted(target), &params);
        let batch = Tensor::stack(std::slice::from_ref(&adv));
        assert_eq!(model.predict(&batch)[0], target);
    }

    #[test]
    fn already_misclassified_input_is_left_alone() {
        let (model, probes) = trained_toy_model();
        // Claim the wrong label: the input is "already fooled".
        let x = &probes[0];
        let batch = Tensor::stack(std::slice::from_ref(x));
        let pred = model.predict(&batch)[0];
        let wrong_label = (pred + 1) % 3;
        let adv = perturb(
            &model,
            x,
            wrong_label,
            AttackGoal::Untargeted,
            &DeepFoolParams::default(),
        );
        assert_eq!(&adv, x);
    }

    #[test]
    fn outputs_stay_in_pixel_range() {
        let (model, probes) = trained_toy_model();
        for (label, x) in probes.iter().enumerate() {
            let adv = perturb(
                &model,
                x,
                label,
                AttackGoal::Untargeted,
                &DeepFoolParams::default(),
            );
            assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
