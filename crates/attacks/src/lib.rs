//! Gradient-based adversarial example attacks against [`advhunter_nn`]
//! models: FGSM, PGD (both L∞) and DeepFool (L2), each in untargeted and
//! targeted variants — the attack matrix of the paper's evaluation (§6).
//!
//! All attacks assume the paper's threat model: a white-box adversary with
//! full gradient access to the victim model. Perturbed images are always
//! clamped back to the valid pixel range `[0, 1]`.
//!
//! # Example
//!
//! ```
//! use advhunter_attacks::{Attack, AttackGoal};
//! use advhunter_nn::{GraphBuilder};
//! use advhunter_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new(&[1, 4, 4]);
//! let input = b.input();
//! let f = b.flatten("f", input);
//! b.linear("fc", f, 2, &mut rng);
//! let model = b.build();
//!
//! let x = Tensor::full(&[1, 4, 4], 0.5);
//! let attack = Attack::fgsm(0.1);
//! let adv = attack.perturb(&model, &x, 0, AttackGoal::Untargeted, &mut rng);
//! // L∞ budget respected and pixels stay valid.
//! assert!((&adv - &x).linf_norm() <= 0.1 + 1e-6);
//! assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
//! ```

mod deepfool;
mod eval;
mod fgsm;
mod gradient;
mod mifgsm;
mod nes;
mod pgd;
mod square;

pub use deepfool::DeepFoolParams;
pub use eval::{
    attack_dataset, transfer_attack_dataset, AdversarialExample, AttackOutcome, AttackReport,
};
pub use gradient::{logit_input_gradient, loss_input_gradient};
pub use nes::{perturb_recorded as nes_perturb_recorded, NesParams, NesTrace};
pub use square::SquareParams;

use advhunter_nn::Graph;
use advhunter_tensor::Tensor;
use rand::Rng;

/// What the adversary wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackGoal {
    /// Any misclassification.
    Untargeted,
    /// Misclassification as a specific class.
    Targeted(usize),
}

/// A configured attack.
///
/// Construct via [`Attack::fgsm`], [`Attack::pgd`], or [`Attack::deepfool`],
/// then apply with [`Attack::perturb`].
#[derive(Debug, Clone, PartialEq)]
pub enum Attack {
    /// Fast Gradient Sign Method (single L∞ step).
    Fgsm {
        /// Attack strength ε.
        epsilon: f32,
    },
    /// Projected Gradient Descent (iterated L∞ steps with projection).
    Pgd {
        /// L∞ budget ε.
        epsilon: f32,
        /// Per-step size α.
        alpha: f32,
        /// Number of steps.
        steps: usize,
        /// Start from a random point in the ε-ball.
        random_start: bool,
    },
    /// DeepFool (minimal L2 perturbation toward the nearest boundary).
    DeepFool(DeepFoolParams),
    /// Decision-based (hard-label black-box) square attack.
    Square(SquareParams),
    /// Score-based black-box NES attack (Ilyas et al., ICML 2018): the
    /// iterative query-based adversary the fingerprint defense targets.
    Nes(NesParams),
    /// Momentum Iterative FGSM (Dong et al., CVPR 2018).
    MiFgsm {
        /// L∞ budget ε.
        epsilon: f32,
        /// Per-step size α.
        alpha: f32,
        /// Number of steps.
        steps: usize,
        /// Momentum decay μ.
        decay: f32,
    },
}

impl Attack {
    /// FGSM with strength `epsilon`.
    pub fn fgsm(epsilon: f32) -> Self {
        Attack::Fgsm { epsilon }
    }

    /// PGD with budget `epsilon`, the conventional step size `epsilon / 4`,
    /// 10 steps, and random start.
    pub fn pgd(epsilon: f32) -> Self {
        Attack::Pgd {
            epsilon,
            alpha: epsilon / 4.0,
            steps: 10,
            random_start: true,
        }
    }

    /// DeepFool with its original default parameters.
    pub fn deepfool() -> Self {
        Attack::DeepFool(DeepFoolParams::default())
    }

    /// Decision-based square attack with initial magnitude `epsilon` and
    /// default search budgets — notable for needing only hard-label access,
    /// the same access level the defender has.
    pub fn square(epsilon: f32) -> Self {
        Attack::Square(SquareParams {
            epsilon,
            ..SquareParams::default()
        })
    }

    /// NES black-box attack with budget `epsilon` and default search
    /// parameters. Use [`nes_perturb_recorded`] directly to also capture
    /// the full query stream.
    pub fn nes(epsilon: f32) -> Self {
        Attack::Nes(NesParams {
            epsilon,
            ..NesParams::default()
        })
    }

    /// Momentum Iterative FGSM with budget `epsilon`, step `epsilon / 10`,
    /// 10 steps, and the original decay μ = 1.0.
    pub fn mi_fgsm(epsilon: f32) -> Self {
        Attack::MiFgsm {
            epsilon,
            alpha: epsilon / 10.0,
            steps: 10,
            decay: 1.0,
        }
    }

    /// Short name for reports ("FGSM", "PGD", "DeepFool").
    pub fn name(&self) -> &'static str {
        match self {
            Attack::Fgsm { .. } => "FGSM",
            Attack::Pgd { .. } => "PGD",
            Attack::DeepFool(_) => "DeepFool",
            Attack::Square(_) => "Square",
            Attack::Nes(_) => "NES",
            Attack::MiFgsm { .. } => "MI-FGSM",
        }
    }

    /// The attack strength (ε for FGSM/PGD, overshoot for DeepFool) —
    /// used to label sweep plots.
    pub fn strength(&self) -> f32 {
        match self {
            Attack::Fgsm { epsilon } => *epsilon,
            Attack::Pgd { epsilon, .. } => *epsilon,
            Attack::DeepFool(p) => p.overshoot,
            Attack::Square(p) => p.epsilon,
            Attack::Nes(p) => p.epsilon,
            Attack::MiFgsm { epsilon, .. } => *epsilon,
        }
    }

    /// Perturbs one CHW image with the given true label.
    ///
    /// Returns the adversarial image (same shape, clamped to `[0, 1]`). The
    /// attack does not guarantee success; use [`attack_dataset`] to filter
    /// for successful examples the way the paper's evaluation does.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not a single CHW tensor matching the model's
    /// input shape, or a targeted goal names an out-of-range class.
    pub fn perturb(
        &self,
        model: &Graph,
        image: &Tensor,
        true_label: usize,
        goal: AttackGoal,
        rng: &mut impl Rng,
    ) -> Tensor {
        assert_eq!(
            image.shape().dims(),
            model.input_dims(),
            "image shape must match model input"
        );
        match self {
            Attack::Fgsm { epsilon } => fgsm::perturb(model, image, true_label, goal, *epsilon),
            Attack::Pgd {
                epsilon,
                alpha,
                steps,
                random_start,
            } => pgd::perturb(
                model,
                image,
                true_label,
                goal,
                *epsilon,
                *alpha,
                *steps,
                *random_start,
                rng,
            ),
            Attack::DeepFool(params) => deepfool::perturb(model, image, true_label, goal, params),
            Attack::Square(params) => square::perturb(model, image, true_label, goal, params, rng),
            Attack::Nes(params) => nes::perturb(model, image, true_label, goal, params, rng),
            Attack::MiFgsm {
                epsilon,
                alpha,
                steps,
                decay,
            } => mifgsm::perturb(
                model, image, true_label, goal, *epsilon, *alpha, *steps, *decay,
            ),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use advhunter_nn::train::{fit, TrainConfig};
    use advhunter_nn::{Graph, GraphBuilder};
    use advhunter_tensor::{init, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small trained 3-class model over 1x8x8 images where class k has a
    /// bright k-th quadrant. Returns (model, one test image per class).
    pub fn trained_toy_model() -> (Graph, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let class = i % 3;
            let mut img = init::normal(&mut rng, &[1, 8, 8], 0.25, 0.05);
            // Brighten one quadrant per class.
            let (y0, x0) = [(0, 0), (0, 4), (4, 0)][class];
            for y in y0..y0 + 4 {
                for x in x0..x0 + 4 {
                    let v = img.at(&[0, y, x]);
                    img.set(&[0, y, x], (v + 0.55).min(1.0));
                }
            }
            img.clamp_inplace(0.0, 1.0);
            images.push(img);
            labels.push(class);
        }
        let mut b = GraphBuilder::new(&[1, 8, 8]);
        let input = b.input();
        let c = b.conv2d("c", input, 6, 3, 1, 1, &mut rng);
        let r = b.relu("r", c);
        let p = b.maxpool("p", r, 2, 2);
        let f = b.flatten("f", p);
        b.linear("fc", f, 3, &mut rng);
        let mut model = b.build();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            learning_rate: 3e-3,
            lr_decay: 0.8,
        };
        fit(&mut model, &images, &labels, &cfg, &mut rng);
        let probes = (0..3).map(|c| images[c].clone()).collect();
        (model, probes)
    }
}
