//! Dataset-level attack evaluation: generate adversarial examples the way
//! the paper's experiments consume them.

use advhunter_data::Dataset;
use advhunter_nn::Graph;
use advhunter_tensor::Tensor;
use rand::Rng;

use crate::{Attack, AttackGoal};

/// A successful adversarial example.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialExample {
    /// The perturbed image.
    pub image: Tensor,
    /// The class the clean image belongs to.
    pub original_label: usize,
    /// The (wrong) class the model assigns to the perturbed image.
    pub predicted: usize,
}

/// Per-attempt outcome, kept for bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack achieved its goal.
    Success,
    /// The model's prediction did not change as required.
    Failure,
    /// The clean image was already misclassified (not attacked).
    SkippedMisclassified,
    /// The image already carries the target label (targeted goal only).
    SkippedIsTarget,
}

/// Result of attacking a whole dataset.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Successful adversarial examples, in dataset order.
    pub examples: Vec<AdversarialExample>,
    /// Outcome of every attempt, parallel to the dataset.
    pub outcomes: Vec<AttackOutcome>,
    /// Images actually attacked (correctly-classified, non-target).
    pub attacked: usize,
    /// Model accuracy on the perturbed versions of the attacked images
    /// (the "accuracy under attack" axis of the paper's Figure 4).
    pub adversarial_accuracy: f32,
    /// For targeted goals: fraction of attacked images now classified as
    /// the target (the "targeted accuracy" axis of Figure 4). 0 otherwise.
    pub targeted_accuracy: f32,
}

impl AttackReport {
    /// Fraction of attacked images where the attack met its goal.
    pub fn success_rate(&self) -> f32 {
        if self.attacked == 0 {
            return 0.0;
        }
        self.examples.len() as f32 / self.attacked as f32
    }
}

/// Attacks up to `limit` images of `dataset` (in order) and returns the
/// successful adversarial examples plus summary statistics.
///
/// Following the paper's evaluation protocol, only images the model
/// classifies correctly when clean are attacked, and for targeted goals
/// images already belonging to the target class are skipped. A success is a
/// changed prediction (untargeted) or a prediction equal to the target
/// (targeted).
pub fn attack_dataset(
    model: &Graph,
    dataset: &Dataset,
    attack: &Attack,
    goal: AttackGoal,
    limit: Option<usize>,
    rng: &mut impl Rng,
) -> AttackReport {
    let mut examples = Vec::new();
    let mut outcomes = Vec::new();
    let mut attacked = 0usize;
    let mut adv_correct = 0usize;
    let mut hit_target = 0usize;
    let budget = limit.unwrap_or(dataset.len());

    for i in 0..dataset.len() {
        if attacked >= budget {
            break;
        }
        let (image, label) = dataset.item(i);
        if let AttackGoal::Targeted(t) = goal {
            if label == t {
                outcomes.push(AttackOutcome::SkippedIsTarget);
                continue;
            }
        }
        let clean_pred = predict_one(model, image);
        if clean_pred != label {
            outcomes.push(AttackOutcome::SkippedMisclassified);
            continue;
        }
        attacked += 1;
        let adv = attack.perturb(model, image, label, goal, rng);
        let adv_pred = predict_one(model, &adv);
        if adv_pred == label {
            adv_correct += 1;
        }
        let success = match goal {
            AttackGoal::Untargeted => adv_pred != label,
            AttackGoal::Targeted(t) => {
                if adv_pred == t {
                    hit_target += 1;
                    true
                } else {
                    false
                }
            }
        };
        if success {
            examples.push(AdversarialExample {
                image: adv,
                original_label: label,
                predicted: adv_pred,
            });
            outcomes.push(AttackOutcome::Success);
        } else {
            outcomes.push(AttackOutcome::Failure);
        }
    }

    AttackReport {
        examples,
        outcomes,
        attacked,
        adversarial_accuracy: ratio(adv_correct, attacked),
        targeted_accuracy: ratio(hit_target, attacked),
    }
}

/// Transferability evaluation: craft adversarial examples against
/// `surrogate` (white-box) and score them against `victim` (the deployed
/// model) — the classic transfer-attack setting, where the adversary lacks
/// even query access to the real target.
///
/// The returned report's success/accuracy numbers are measured on `victim`;
/// only images both models classify correctly when clean are attacked.
pub fn transfer_attack_dataset(
    surrogate: &Graph,
    victim: &Graph,
    dataset: &Dataset,
    attack: &Attack,
    goal: AttackGoal,
    limit: Option<usize>,
    rng: &mut impl Rng,
) -> AttackReport {
    let mut examples = Vec::new();
    let mut outcomes = Vec::new();
    let mut attacked = 0usize;
    let mut adv_correct = 0usize;
    let mut hit_target = 0usize;
    let budget = limit.unwrap_or(dataset.len());

    for i in 0..dataset.len() {
        if attacked >= budget {
            break;
        }
        let (image, label) = dataset.item(i);
        if let AttackGoal::Targeted(t) = goal {
            if label == t {
                outcomes.push(AttackOutcome::SkippedIsTarget);
                continue;
            }
        }
        if predict_one(surrogate, image) != label || predict_one(victim, image) != label {
            outcomes.push(AttackOutcome::SkippedMisclassified);
            continue;
        }
        attacked += 1;
        let adv = attack.perturb(surrogate, image, label, goal, rng);
        let adv_pred = predict_one(victim, &adv);
        if adv_pred == label {
            adv_correct += 1;
        }
        let success = match goal {
            AttackGoal::Untargeted => adv_pred != label,
            AttackGoal::Targeted(t) => {
                if adv_pred == t {
                    hit_target += 1;
                    true
                } else {
                    false
                }
            }
        };
        if success {
            examples.push(AdversarialExample {
                image: adv,
                original_label: label,
                predicted: adv_pred,
            });
            outcomes.push(AttackOutcome::Success);
        } else {
            outcomes.push(AttackOutcome::Failure);
        }
    }

    AttackReport {
        examples,
        outcomes,
        attacked,
        adversarial_accuracy: ratio(adv_correct, attacked),
        targeted_accuracy: ratio(hit_target, attacked),
    }
}

fn ratio(num: usize, den: usize) -> f32 {
    if den == 0 {
        0.0
    } else {
        num as f32 / den as f32
    }
}

fn predict_one(model: &Graph, image: &Tensor) -> usize {
    let batch = Tensor::stack(std::slice::from_ref(image));
    model.predict(&batch)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_toy_model;
    use advhunter_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(rng: &mut StdRng) -> Dataset {
        // Rebuild images with the same recipe as testutil's training set.
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            let mut img = init::normal(rng, &[1, 8, 8], 0.25, 0.05);
            let (y0, x0) = [(0, 0), (0, 4), (4, 0)][class];
            for y in y0..y0 + 4 {
                for x in x0..x0 + 4 {
                    let v = img.at(&[0, y, x]);
                    img.set(&[0, y, x], (v + 0.55).min(1.0));
                }
            }
            img.clamp_inplace(0.0, 1.0);
            images.push(img);
            labels.push(class);
        }
        Dataset::new("toy", images, labels, 3)
    }

    #[test]
    fn untargeted_attack_degrades_accuracy() {
        let (model, _) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(10);
        let ds = toy_dataset(&mut rng);
        let report = attack_dataset(
            &model,
            &ds,
            &Attack::fgsm(0.4),
            AttackGoal::Untargeted,
            None,
            &mut rng,
        );
        assert!(
            report.attacked > 10,
            "most clean images classified correctly"
        );
        assert!(
            report.adversarial_accuracy < 0.5,
            "strong attack should tank accuracy, got {}",
            report.adversarial_accuracy
        );
        assert_eq!(
            report.examples.len()
                + (report.adversarial_accuracy * report.attacked as f32).round() as usize,
            report.attacked
        );
    }

    #[test]
    fn targeted_attack_skips_target_class_images() {
        let (model, _) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(11);
        let ds = toy_dataset(&mut rng);
        let report = attack_dataset(
            &model,
            &ds,
            &Attack::pgd(0.3),
            AttackGoal::Targeted(1),
            None,
            &mut rng,
        );
        assert!(
            report
                .outcomes
                .iter()
                .filter(|o| matches!(o, AttackOutcome::SkippedIsTarget))
                .count()
                > 0
        );
        for ex in &report.examples {
            assert_eq!(ex.predicted, 1);
            assert_ne!(ex.original_label, 1);
        }
    }

    #[test]
    fn limit_caps_attempts() {
        let (model, _) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(12);
        let ds = toy_dataset(&mut rng);
        let report = attack_dataset(
            &model,
            &ds,
            &Attack::fgsm(0.2),
            AttackGoal::Untargeted,
            Some(5),
            &mut rng,
        );
        assert!(report.attacked <= 5);
    }

    #[test]
    fn self_transfer_equals_direct_attack_success() {
        let (model, _) = trained_toy_model();
        let mut rng_a = StdRng::seed_from_u64(20);
        let mut rng_b = StdRng::seed_from_u64(20);
        let ds = toy_dataset(&mut StdRng::seed_from_u64(21));
        let direct = attack_dataset(
            &model,
            &ds,
            &Attack::fgsm(0.3),
            AttackGoal::Untargeted,
            None,
            &mut rng_a,
        );
        let transfer = transfer_attack_dataset(
            &model,
            &model,
            &ds,
            &Attack::fgsm(0.3),
            AttackGoal::Untargeted,
            None,
            &mut rng_b,
        );
        assert_eq!(direct.examples.len(), transfer.examples.len());
        assert_eq!(direct.adversarial_accuracy, transfer.adversarial_accuracy);
    }

    #[test]
    fn transferred_examples_fool_the_victim() {
        // Surrogate and victim share the training recipe here, so transfer
        // succeeds often; the invariant under test is that every reported
        // example fools the *victim*, not the surrogate.
        let (surrogate, _) = trained_toy_model();
        let (victim, _) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(30);
        let ds = toy_dataset(&mut StdRng::seed_from_u64(31));
        let report = transfer_attack_dataset(
            &surrogate,
            &victim,
            &ds,
            &Attack::fgsm(0.4),
            AttackGoal::Untargeted,
            None,
            &mut rng,
        );
        assert!(report.attacked > 0);
        // Sanity only: success rate is a valid ratio.
        assert!((0.0..=1.0).contains(&report.success_rate()));
        for ex in &report.examples {
            let batch = Tensor::stack(std::slice::from_ref(&ex.image));
            assert_ne!(victim.predict(&batch)[0], ex.original_label);
        }
    }

    #[test]
    fn weak_attack_has_lower_success_than_strong() {
        let (model, _) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(13);
        let ds = toy_dataset(&mut rng);
        let weak = attack_dataset(
            &model,
            &ds,
            &Attack::fgsm(0.01),
            AttackGoal::Untargeted,
            None,
            &mut rng,
        );
        let strong = attack_dataset(
            &model,
            &ds,
            &Attack::fgsm(0.5),
            AttackGoal::Untargeted,
            None,
            &mut rng,
        );
        assert!(weak.success_rate() <= strong.success_rate());
    }
}
