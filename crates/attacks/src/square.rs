//! A decision-based (hard-label) black-box attack, in the spirit of the
//! Boundary/Square attack family: no gradients, only the victim's predicted
//! label.
//!
//! Notably, this is the *same* access level AdvHunter's defender has — an
//! adversary without model internals can still attack, and the detector
//! must catch it. The attack:
//!
//! 1. **Init**: sample random ±ε sign perturbations until one changes the
//!    prediction as required (or give up).
//! 2. **Refine**: repeatedly pick a random square window and revert it to
//!    the clean image; keep the reversion when the input stays adversarial.
//!    This shrinks the perturbation while holding the decision.

use advhunter_nn::Graph;
use advhunter_tensor::Tensor;
use rand::Rng;

use crate::AttackGoal;

/// Parameters for the decision-based square attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareParams {
    /// L∞ magnitude of the initial random perturbation.
    pub epsilon: f32,
    /// Random restarts for the initialization phase.
    pub init_tries: usize,
    /// Refinement iterations (square reversion attempts).
    pub refine_iters: usize,
}

impl Default for SquareParams {
    fn default() -> Self {
        Self {
            epsilon: 0.3,
            init_tries: 30,
            refine_iters: 200,
        }
    }
}

/// Runs the attack on one image. Returns the adversarial image, or the
/// clean image unchanged if initialization never succeeded (callers detect
/// failure through the unchanged prediction).
pub(crate) fn perturb(
    model: &Graph,
    image: &Tensor,
    true_label: usize,
    goal: AttackGoal,
    params: &SquareParams,
    rng: &mut impl Rng,
) -> Tensor {
    let satisfied = |pred: usize| match goal {
        AttackGoal::Untargeted => pred != true_label,
        AttackGoal::Targeted(t) => pred == t,
    };

    // Phase 1: random-sign initialization.
    let mut adv: Option<Tensor> = None;
    for _ in 0..params.init_tries {
        let mut candidate = image.clone();
        for v in candidate.data_mut() {
            *v += if rng.gen_bool(0.5) {
                params.epsilon
            } else {
                -params.epsilon
            };
        }
        candidate.clamp_inplace(0.0, 1.0);
        if satisfied(predict(model, &candidate)) {
            adv = Some(candidate);
            break;
        }
    }
    let Some(mut adv) = adv else {
        return image.clone();
    };

    // Phase 2: decision-based square reversion.
    let (c, h, w) = image.shape().as_chw();
    for i in 0..params.refine_iters {
        // Window shrinks over time, as in the Square attack's schedule.
        let frac = 0.5 * (1.0 - i as f32 / params.refine_iters as f32) + 0.05;
        let side = ((h.min(w) as f32 * frac) as usize).max(1);
        let y0 = rng.gen_range(0..=(h - side));
        let x0 = rng.gen_range(0..=(w - side));
        let mut candidate = adv.clone();
        for ch in 0..c {
            for y in y0..y0 + side {
                for x in x0..x0 + side {
                    candidate.set(&[ch, y, x], image.at(&[ch, y, x]));
                }
            }
        }
        if satisfied(predict(model, &candidate)) {
            adv = candidate;
        }
    }
    adv
}

fn predict(model: &Graph, image: &Tensor) -> usize {
    let batch = Tensor::stack(std::slice::from_ref(image));
    model.predict(&batch)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_toy_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attack_changes_prediction_or_returns_clean() {
        let (model, probes) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(0);
        let params = SquareParams {
            epsilon: 0.5,
            init_tries: 40,
            refine_iters: 60,
        };
        let mut succeeded = 0;
        for (label, x) in probes.iter().enumerate() {
            let adv = perturb(&model, x, label, AttackGoal::Untargeted, &params, &mut rng);
            let pred = predict(&model, &adv);
            if &adv == x {
                assert_eq!(pred, label, "unchanged image means attack failed");
            } else if pred != label {
                succeeded += 1;
            }
        }
        assert!(succeeded >= 1, "hard-label attack should succeed somewhere");
    }

    #[test]
    fn refinement_shrinks_the_perturbation() {
        let (model, probes) = trained_toy_model();
        let x = &probes[0];
        let coarse = SquareParams {
            epsilon: 0.5,
            init_tries: 40,
            refine_iters: 0,
        };
        let fine = SquareParams {
            refine_iters: 150,
            ..coarse
        };
        // Same init RNG so both start from the same adversarial point.
        let a = perturb(
            &model,
            x,
            0,
            AttackGoal::Untargeted,
            &coarse,
            &mut StdRng::seed_from_u64(3),
        );
        let b = perturb(
            &model,
            x,
            0,
            AttackGoal::Untargeted,
            &fine,
            &mut StdRng::seed_from_u64(3),
        );
        if &a != x && &b != x {
            assert!(
                (&b - x).l2_norm() <= (&a - x).l2_norm() + 1e-6,
                "refinement must not grow the perturbation"
            );
        }
    }

    #[test]
    fn refined_examples_remain_adversarial() {
        let (model, probes) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(7);
        for (label, x) in probes.iter().enumerate() {
            let adv = perturb(
                &model,
                x,
                label,
                AttackGoal::Untargeted,
                &SquareParams::default(),
                &mut rng,
            );
            if &adv != x {
                assert_ne!(predict(&model, &adv), label);
            }
        }
    }

    #[test]
    fn perturbation_respects_epsilon_and_range() {
        let (model, probes) = trained_toy_model();
        let mut rng = StdRng::seed_from_u64(9);
        let params = SquareParams {
            epsilon: 0.25,
            ..SquareParams::default()
        };
        let adv = perturb(
            &model,
            &probes[1],
            1,
            AttackGoal::Untargeted,
            &params,
            &mut rng,
        );
        assert!((&adv - &probes[1]).linf_norm() <= 0.25 + 1e-6);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
