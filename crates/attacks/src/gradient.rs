//! Input-gradient helpers shared by the attacks.

use advhunter_nn::{Graph, Mode};
use advhunter_tensor::ops::cross_entropy_with_logits;
use advhunter_tensor::Tensor;

/// Gradient of the cross-entropy loss `CE(f(x), label)` with respect to a
/// single CHW input image. Also returns the logits.
///
/// # Panics
///
/// Panics if `label` is out of range for the model's output.
pub fn loss_input_gradient(model: &Graph, image: &Tensor, label: usize) -> (Tensor, Tensor) {
    let batch = Tensor::stack(std::slice::from_ref(image));
    let trace = model.forward(&batch, Mode::Eval);
    let logits = trace.output().clone();
    let (_, dlogits) = cross_entropy_with_logits(&logits, &[label]);
    let grads = model.backward(&trace, &dlogits);
    (grads.input.image(0), logits.reshape(&[logits.len()]))
}

/// Gradient of a single logit `f_k(x)` with respect to the input image.
/// Also returns the logits. Used by DeepFool's boundary linearization.
///
/// # Panics
///
/// Panics if `k` is out of range for the model's output.
pub fn logit_input_gradient(model: &Graph, image: &Tensor, k: usize) -> (Tensor, Tensor) {
    let batch = Tensor::stack(std::slice::from_ref(image));
    let trace = model.forward(&batch, Mode::Eval);
    let logits = trace.output().clone();
    let classes = logits.shape().dim(1);
    assert!(
        k < classes,
        "logit index {k} out of range for {classes} classes"
    );
    let mut seed = Tensor::zeros(&[1, classes]);
    seed.data_mut()[k] = 1.0;
    let grads = model.backward(&trace, &seed);
    (grads.input.image(0), logits.reshape(&[logits.len()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_toy_model;

    #[test]
    fn loss_gradient_points_uphill() {
        let (model, probes) = trained_toy_model();
        let x = &probes[0];
        let (grad, logits) = loss_input_gradient(&model, x, 0);
        assert_eq!(grad.shape().dims(), x.shape().dims());
        assert!(grad.data().iter().any(|&v| v != 0.0));
        assert_eq!(logits.len(), 3);

        // Stepping along the gradient must increase the loss.
        let loss_of = |img: &Tensor| {
            let batch = Tensor::stack(std::slice::from_ref(img));
            let t = model.forward(&batch, advhunter_nn::Mode::Eval);
            advhunter_tensor::ops::cross_entropy_with_logits(t.output(), &[0]).0
        };
        let mut stepped = x.clone();
        stepped.add_scaled(&grad, 1e-2 / grad.l2_norm().max(1e-9));
        assert!(loss_of(&stepped) > loss_of(x));
    }

    #[test]
    fn logit_gradient_raises_that_logit() {
        let (model, probes) = trained_toy_model();
        let x = &probes[1];
        let (grad, logits_before) = logit_input_gradient(&model, x, 2);
        let mut stepped = x.clone();
        stepped.add_scaled(&grad, 1e-2 / grad.l2_norm().max(1e-9));
        let batch = Tensor::stack(std::slice::from_ref(&stepped));
        let logits_after = model.logits(&batch);
        assert!(
            logits_after.data()[2] > logits_before.data()[2],
            "logit 2 should increase"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn logit_gradient_rejects_bad_class() {
        let (model, probes) = trained_toy_model();
        logit_input_gradient(&model, &probes[0], 99);
    }
}
